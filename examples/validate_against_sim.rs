//! Cross-validate the three models the repository implements: the MVA
//! equations, the discrete-event simulator, and the GTPN engine — the
//! paper's methodology in one program, driven entirely through the
//! unified evaluation [`Engine`].
//!
//! One scenario description feeds every backend; each returns the common
//! [`Evaluation`] currency, so the comparison is a table of like against
//! like with provenance (replications, reachable states) attached.
//!
//! ```text
//! cargo run --release --example validate_against_sim
//! ```

use snoop::engine::{BackendId, Engine, GtpnBackend, MvaBackend, Scenario, SimBackend};
use snoop::protocol::ModSet;
use snoop::workload::params::SharingLevel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sharing = SharingLevel::Five;
    let engine = Engine::new()
        .with_backend(MvaBackend)
        .with_backend(SimBackend::default());
    // The GTPN's state space explodes quickly — the paper's point — so it
    // gets its own engine and is only attempted for small systems.
    let gtpn_engine = Engine::new().with_backend(GtpnBackend::default());
    const GTPN_MAX_N: usize = 2;

    println!("Cross-model validation, Write-Once, 5% sharing");
    println!(
        "{:>4} {:>10} {:>16} {:>10} {:>12}",
        "N", "MVA", "DES (95% CI)", "GTPN", "GTPN states"
    );

    let mut scenarios = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let mut s = Scenario::appendix_a(ModSet::new(), sharing, n);
        s.sim.replications = 5;
        scenarios.push(s);
    }
    let small: Vec<Scenario> =
        scenarios.iter().filter(|s| s.n <= GTPN_MAX_N).copied().collect();

    let results = engine.evaluate_batch(&scenarios);
    let mut gtpn_results = gtpn_engine.evaluate_batch(&small).into_iter();
    for chunk in results.chunks(2) {
        let mva = chunk[0].result.as_ref().expect("MVA solves every N");
        let sim = chunk[1].result.as_ref().expect("DES simulates every N");
        let (gtpn_speedup, gtpn_states) = if mva.n <= GTPN_MAX_N {
            let r = gtpn_results.next().expect("one GTPN job per small N");
            assert_eq!(r.backend, BackendId::Gtpn);
            let g = r.result?;
            (format!("{:.3}", g.speedup), g.provenance.states.to_string())
        } else {
            ("-".into(), "too many".into())
        };
        println!(
            "{:>4} {:>10.3} {:>9.3} ±{:<5.3} {:>10} {:>12}",
            mva.n,
            mva.speedup,
            sim.speedup,
            sim.speedup_half_width.unwrap_or(f64::NAN),
            gtpn_speedup,
            gtpn_states
        );
    }

    println!();
    println!("All three models agree to within a few percent at small N; only the");
    println!("MVA solves instantly at every N — the paper's central result.");
    Ok(())
}
