//! Cross-validate the three models the repository implements: the MVA
//! equations, the GTPN engine, and the discrete-event simulator — the
//! paper's methodology in one program.
//!
//! ```text
//! cargo run --release --example validate_against_sim
//! ```

use snoop::gtpn::models::coherence::CoherenceNet;
use snoop::gtpn::reachability::ReachabilityOptions;
use snoop::mva::{MvaModel, SolverOptions};
use snoop::protocol::ModSet;
use snoop::sim::runner::replicate;
use snoop::sim::SimConfig;
use snoop::workload::params::{SharingLevel, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sharing = SharingLevel::Five;
    let params = WorkloadParams::appendix_a(sharing);

    println!("Cross-model validation, Write-Once, 5% sharing");
    println!(
        "{:>4} {:>10} {:>16} {:>10} {:>12}",
        "N", "MVA", "DES (95% CI)", "GTPN", "GTPN states"
    );

    for n in [1usize, 2, 4, 8] {
        let mva = MvaModel::for_protocol(&params, ModSet::new())?
            .solve(n, &SolverOptions::default())?;

        let sim_config = SimConfig::for_protocol(n, params, ModSet::new());
        let sim = replicate(&sim_config, 5, 0.95)?;

        // The GTPN's state space explodes quickly — the paper's point — so
        // only small systems are attempted.
        let gtpn = if n <= 2 {
            let model = MvaModel::for_protocol(&params, ModSet::new())?;
            let net = CoherenceNet::build(model.inputs(), n)?;
            Some(net.solve(&ReachabilityOptions::default())?)
        } else {
            None
        };

        let (gtpn_speedup, gtpn_states) = match &gtpn {
            Some(g) => (format!("{:.3}", g.speedup), format!("{}", g.states)),
            None => ("-".into(), "too many".into()),
        };
        println!(
            "{:>4} {:>10.3} {:>9.3} ±{:<5.3} {:>10} {:>12}",
            n, mva.speedup, sim.speedup.mean, sim.speedup.half_width, gtpn_speedup, gtpn_states
        );
    }

    println!();
    println!("All three models agree to within a few percent at small N; only the");
    println!("MVA solves instantly at every N — the paper's central result.");
    Ok(())
}
