//! Capacity planning with the asymptotic analysis: how many processors is
//! this bus worth, and which protocol stretches it furthest?
//!
//! Uses the closed-form N → ∞ speedup (Section 4.1's extension of Table
//! 4.1 to arbitrary sizes) and a bracketed root find for the "knee": the
//! smallest N whose speedup reaches 90% of the asymptote.
//!
//! ```text
//! cargo run --example capacity_planning
//! ```

use snoop::mva::asymptote::asymptotic;
use snoop::mva::{MvaModel, SolverOptions};
use snoop::numeric::roots::bisect;
use snoop::protocol::ModSet;
use snoop::workload::params::{SharingLevel, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("bus capacity planning (Appendix-A workloads)");
    println!(
        "{:<10} {:<9} {:>10} {:>12} {:>14}",
        "protocol", "sharing", "limit", "knee (90%)", "util at knee"
    );

    for mods_str in ["WO", "WO+1", "WO+1+4"] {
        let mods: ModSet = mods_str.parse()?;
        for sharing in SharingLevel::ALL {
            let params = WorkloadParams::appendix_a(sharing);
            let model = MvaModel::for_protocol(&params, mods)?;
            let limit = asymptotic(model.inputs()).speedup;
            let target = 0.9 * limit;

            // Speedup is continuous and increasing in N up to saturation;
            // treat N as real for the root find, then round up.
            let gap = |n: f64| {
                let n = n.max(1.0).round() as usize;
                model
                    .solve(n, &SolverOptions::default())
                    .map(|s| s.speedup - target)
                    .unwrap_or(f64::NAN)
            };
            let knee = bisect(gap, 1.0, 200.0, 0.51, 64)
                .map(|x| x.ceil() as usize)
                .unwrap_or(200);
            let util = model.solve(knee, &SolverOptions::default())?.bus_utilization;
            println!(
                "{:<10} {:<9} {:>10.3} {:>12} {:>14.3}",
                mods_str,
                sharing.to_string(),
                limit,
                knee,
                util
            );
        }
    }

    println!();
    println!("Reading: beyond the knee, extra processors mostly queue at the bus.");
    println!("Modification 1+4 both raises the ceiling and (at high sharing) moves");
    println!("the knee out — the paper's asymptotic extension of Table 4.1(c).");
    Ok(())
}
