//! Compare the published protocols (Write-Once, Synapse, Illinois,
//! Berkeley, Dragon, RWB, write-through) across sharing levels — the
//! design-space exploration the paper's efficiency makes interactive.
//!
//! The whole grid (7 protocols × 3 sharing levels × 3 system sizes) is one
//! [`Engine`] batch: the planner groups each (protocol, sharing) family so
//! the MVA model is built once per family instead of once per point, and
//! any repeated scenario would be served from the content-addressed cache.
//!
//! ```text
//! cargo run --example protocol_comparison
//! ```

use snoop::engine::{Engine, MvaBackend, Scenario};
use snoop::mva::asymptote::asymptotic;
use snoop::protocol::NamedProtocol;
use snoop::workload::params::SharingLevel;

const SIZES: [usize; 3] = [4, 10, 20];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("MVA speedups of the published protocols (Appendix-A workload)");
    println!();

    let engine = Engine::new().with_backend(MvaBackend);
    // One flat batch over the full design space.
    let scenarios: Vec<Scenario> = SharingLevel::ALL
        .iter()
        .flat_map(|&sharing| {
            NamedProtocol::ALL.iter().flat_map(move |p| {
                SIZES.map(|n| Scenario::appendix_a(p.modifications(), sharing, n))
            })
        })
        .collect();
    let mut evals = engine.evaluate_batch(&scenarios).into_iter();

    for sharing in SharingLevel::ALL {
        println!("--- {sharing} sharing ---");
        println!(
            "{:<14} {:<12} {:>7} {:>7} {:>7} {:>8} {:>8}",
            "protocol", "mods", "N=4", "N=10", "N=20", "limit", "U_bus@10"
        );
        let mut rows = Vec::new();
        for protocol in NamedProtocol::ALL {
            let mods = protocol.modifications();
            let s4 = evals.next().expect("N=4 job").result?;
            let s10 = evals.next().expect("N=10 job").result?;
            let s20 = evals.next().expect("N=20 job").result?;
            let limit =
                asymptotic(Scenario::appendix_a(mods, sharing, 1).to_mva_model()?.inputs())
                    .speedup;
            rows.push((
                protocol,
                mods,
                s4.speedup,
                s10.speedup,
                s20.speedup,
                limit,
                s10.bus_utilization,
            ));
        }
        // Rank by the 20-processor speedup.
        rows.sort_by(|a, b| b.4.partial_cmp(&a.4).expect("finite"));
        for (protocol, mods, s4, s10, s20, limit, util) in rows {
            println!(
                "{:<14} {:<12} {:>7.3} {:>7.3} {:>7.3} {:>8.3} {:>8.3}",
                protocol.to_string(),
                mods.to_string(),
                s4,
                s10,
                s20,
                limit,
                util
            );
        }
        println!();
    }

    let stats = engine.cache_stats();
    println!(
        "engine: {} jobs, {} unique scenarios solved, {} cache hits",
        stats.hits + stats.misses,
        stats.entries,
        stats.hits
    );
    println!();
    println!("Observations matching the paper's Section 4.1:");
    println!(" * modification 1 (exclusive load) dominates: Illinois/Dragon/RWB lead;");
    println!(" * update protocols (Dragon, RWB) pull further ahead as sharing grows;");
    println!(" * Berkeley/Synapse sit near Write-Once — modifications 2 and 3 alone");
    println!("   buy little for these workloads.");
    Ok(())
}
