//! Compare the published protocols (Write-Once, Synapse, Illinois,
//! Berkeley, Dragon, RWB, write-through) across sharing levels — the
//! design-space exploration the paper's efficiency makes interactive.
//!
//! ```text
//! cargo run --example protocol_comparison
//! ```

use snoop::mva::asymptote::asymptotic;
use snoop::mva::{MvaModel, SolverOptions};
use snoop::protocol::NamedProtocol;
use snoop::workload::params::{SharingLevel, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("MVA speedups of the published protocols (Appendix-A workload)");
    println!();

    for sharing in SharingLevel::ALL {
        println!("--- {sharing} sharing ---");
        println!(
            "{:<14} {:<12} {:>7} {:>7} {:>7} {:>8} {:>8}",
            "protocol", "mods", "N=4", "N=10", "N=20", "limit", "U_bus@10"
        );
        let mut rows = Vec::new();
        for protocol in NamedProtocol::ALL {
            let mods = protocol.modifications();
            let model =
                MvaModel::for_protocol(&WorkloadParams::appendix_a(sharing), mods)?;
            let s4 = model.solve(4, &SolverOptions::default())?;
            let s10 = model.solve(10, &SolverOptions::default())?;
            let s20 = model.solve(20, &SolverOptions::default())?;
            let limit = asymptotic(model.inputs()).speedup;
            rows.push((protocol, mods, s4.speedup, s10.speedup, s20.speedup, limit, s10.bus_utilization));
        }
        // Rank by the 20-processor speedup.
        rows.sort_by(|a, b| b.4.partial_cmp(&a.4).expect("finite"));
        for (protocol, mods, s4, s10, s20, limit, util) in rows {
            println!(
                "{:<14} {:<12} {:>7.3} {:>7.3} {:>7.3} {:>8.3} {:>8.3}",
                protocol.to_string(),
                mods.to_string(),
                s4,
                s10,
                s20,
                limit,
                util
            );
        }
        println!();
    }

    println!("Observations matching the paper's Section 4.1:");
    println!(" * modification 1 (exclusive load) dominates: Illinois/Dragon/RWB lead;");
    println!(" * update protocols (Dragon, RWB) pull further ahead as sharing grows;");
    println!(" * Berkeley/Synapse sit near Write-Once — modifications 2 and 3 alone");
    println!("   buy little for these workloads.");
    Ok(())
}
