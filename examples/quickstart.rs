//! Quickstart: solve the paper's MVA model for one configuration and
//! sweep it across system sizes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use snoop::mva::{MvaModel, SolverOptions};
use snoop::protocol::ModSet;
use snoop::workload::params::{SharingLevel, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Appendix-A workload at 5% sharing, plain Write-Once.
    let params = WorkloadParams::appendix_a(SharingLevel::Five);
    let model = MvaModel::for_protocol(&params, ModSet::new())?;

    // One solve: 10 processors, like the GTPN-comparison range.
    let solution = model.solve(10, &SolverOptions::default())?;
    println!("Write-Once, 5% sharing, 10 processors:");
    println!("{solution}");
    println!();

    // A sweep: where does adding processors stop helping?
    println!("{:>4} {:>9} {:>7} {:>7}", "N", "speedup", "U_bus", "w_bus");
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let s = model.solve(n, &SolverOptions::default())?;
        println!(
            "{:>4} {:>9.3} {:>7.3} {:>7.3}",
            n, s.speedup, s.bus_utilization, s.w_bus
        );
    }
    println!();
    println!("The bus saturates around 15-20 processors for this workload —");
    println!("exactly the knee the paper's Figure 4.1 shows.");
    Ok(())
}
