//! Quickstart: describe one configuration as a [`Scenario`], evaluate it
//! through the unified [`Engine`], and sweep it across system sizes as a
//! single deduplicated batch.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use snoop::engine::{Engine, MvaBackend, Scenario};
use snoop::protocol::ModSet;
use snoop::workload::params::SharingLevel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Appendix-A workload at 5% sharing, plain Write-Once.
    let engine = Engine::new().with_backend(MvaBackend);
    let scenario = Scenario::appendix_a(ModSet::new(), SharingLevel::Five, 10);

    // One solve: 10 processors, like the GTPN-comparison range.
    let solution = engine.evaluate(&scenario).remove(0).result?;
    println!("{scenario}:");
    println!("{}", solution.summary());
    println!();

    // A sweep: where does adding processors stop helping? One batch — the
    // engine builds the MVA model once for the whole scenario family, and
    // the N = 10 point is already in the cache from the solve above.
    let sizes = [1usize, 2, 4, 8, 10, 16, 32, 64];
    let sweep: Vec<Scenario> =
        sizes.iter().map(|&n| Scenario::appendix_a(ModSet::new(), SharingLevel::Five, n)).collect();
    println!("{:>4} {:>9} {:>7} {:>7}", "N", "speedup", "U_bus", "w_bus");
    for s in engine.evaluate_batch_ok(&sweep) {
        println!(
            "{:>4} {:>9.3} {:>7.3} {:>7.3}",
            s.n,
            s.speedup,
            s.bus_utilization,
            s.w_bus.unwrap_or(f64::NAN)
        );
    }
    let stats = engine.cache_stats();
    println!();
    println!("The bus saturates around 15-20 processors for this workload —");
    println!("exactly the knee the paper's Figure 4.1 shows.");
    println!(
        "(engine cache: {} hits, {} misses — repeated scenarios are never re-solved)",
        stats.hits, stats.misses
    );
    Ok(())
}
