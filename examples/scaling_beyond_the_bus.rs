//! Beyond the paper: the two model extensions this repository adds in the
//! direction its Section 5 points — heterogeneous workload classes and
//! Wilson-style hierarchical (clustered) buses.
//!
//! ```text
//! cargo run --release --example scaling_beyond_the_bus
//! ```

use snoop::mva::hierarchical::{HierarchicalConfig, HierarchicalModel};
use snoop::mva::multiclass::{MulticlassModel, WorkloadClass};
use snoop::mva::{MvaModel, SolverOptions};
use snoop::protocol::ModSet;
use snoop::workload::derived::ModelInputs;
use snoop::workload::params::{SharingLevel, WorkloadParams};
use snoop::workload::timing::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let timing = TimingModel::default();
    let mods: ModSet = "WO+1".parse()?;

    // --- heterogeneous classes -----------------------------------------
    println!("1. Heterogeneous workloads on one bus (multiclass MVA)");
    let light = ModelInputs::derive_adjusted(
        &WorkloadParams::appendix_a(SharingLevel::One),
        mods,
        &timing,
    )?;
    let heavy = ModelInputs::derive_adjusted(
        &WorkloadParams::appendix_a(SharingLevel::Twenty),
        mods,
        &timing,
    )?;
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12}",
        "light", "heavy", "speedup", "per light", "per heavy"
    );
    for (nl, nh) in [(8, 0), (6, 2), (4, 4), (2, 6), (0, 8)] {
        let mut classes = Vec::new();
        if nl > 0 {
            classes.push(WorkloadClass { count: nl, inputs: light });
        }
        if nh > 0 {
            classes.push(WorkloadClass { count: nh, inputs: heavy });
        }
        let s = MulticlassModel::new(classes)?.solve()?;
        let per = |idx: usize, n: usize| {
            if n > 0 {
                format!("{:.3}", s.class_speedup[idx] / n as f64)
            } else {
                "-".into()
            }
        };
        let light_per = per(0, nl);
        let heavy_per = if nl > 0 { per(s.class_speedup.len() - 1, nh) } else { per(0, nh) };
        println!("{nl:>8} {nh:>8} {:>10.3} {light_per:>12} {heavy_per:>12}", s.speedup);
    }
    println!("Every heavy-sharing processor added drags the whole bus down — the");
    println!("per-processor speedup of the light class falls as neighbours change.");
    println!();

    // --- hierarchical buses ---------------------------------------------
    println!("2. Clustered buses (hierarchical MVA, Wilson [Wils87] direction)");
    let inputs = ModelInputs::derive_adjusted(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        mods,
        &timing,
    )?;
    let flat_ceiling = MvaModel::new(inputs).solve(64, &SolverOptions::default())?.speedup;
    println!("flat single-bus ceiling at N = 64: {flat_ceiling:.2}");
    println!(
        "{:>9} {:>13} {:>9} {:>9} {:>9}",
        "clusters", "total procs", "speedup", "U_local", "U_global"
    );
    for clusters in [1usize, 2, 4, 8, 16] {
        let s = HierarchicalModel::new(
            inputs,
            HierarchicalConfig {
                clusters,
                per_cluster: 8,
                cluster_locality: 0.8,
                cluster_cache_hit: 0.8,
            },
        )?
        .solve()?;
        println!(
            "{clusters:>9} {:>13} {:>9.2} {:>9.3} {:>9.3}",
            clusters * 8,
            s.speedup,
            s.local_bus_utilization,
            s.global_bus_utilization
        );
    }
    println!("Clusters with local supply and cluster caches scale past the single-bus");
    println!("ceiling until the global bus saturates in its turn — the same analysis,");
    println!("one more queueing center, still microseconds to solve.");
    Ok(())
}
