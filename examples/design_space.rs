//! Design-space exploration: what the MVA model's speed makes possible.
//!
//! The paper argues the model's point is interactivity — "the
//! computational efficiency of the MVA approach allows a wide range of
//! design alternatives to be interactively investigated". This example
//! sweeps two architectural knobs across hundreds of configurations in
//! milliseconds: cache effectiveness (private hit rate) and block size.
//!
//! ```text
//! cargo run --example design_space
//! ```

use snoop::mva::sweep::parameter_sweep;
use snoop::mva::{MvaModel, SolverOptions};
use snoop::protocol::ModSet;
use snoop::workload::params::{SharingLevel, WorkloadParams};
use snoop::workload::timing::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = WorkloadParams::appendix_a(SharingLevel::Five);

    // Knob 1: private hit rate (cache size / organization proxy).
    println!("speedup at N = 16 vs private hit rate (Write-Once vs Illinois-like):");
    println!("{:>8} {:>10} {:>10}", "h_priv", "WO", "WO+1+2+3");
    let hit_rates = [0.80, 0.85, 0.90, 0.95, 0.98, 0.995];
    let wo = parameter_sweep(&base, ModSet::new(), 16, &hit_rates, &SolverOptions::default(), |p, v| {
        p.h_private = v;
    })?;
    let illinois = parameter_sweep(
        &base,
        ModSet::from_numbers(&[1, 2, 3])?,
        16,
        &hit_rates,
        &SolverOptions::default(),
        |p, v| p.h_private = v,
    )?;
    for ((h, a), (_, b)) in wo.iter().zip(&illinois) {
        println!("{h:>8.3} {:>10.3} {:>10.3}", a.speedup, b.speedup);
    }
    println!("(higher hit rates widen modification 1's advantage: the remaining bus");
    println!(" traffic is write-through, exactly what it removes)");
    println!();

    // Knob 2: block size (changes both transfer time and module count).
    println!("speedup at N = 16 vs block size (words):");
    println!("{:>6} {:>10} {:>10}", "words", "WO", "WO+1");
    for words in [2u32, 4, 8, 16] {
        let timing = TimingModel { words_per_block: words, ..TimingModel::default() };
        let wo = MvaModel::with_timing(&base, ModSet::new(), &timing)?
            .solve(16, &SolverOptions::default())?;
        let m1 = MvaModel::with_timing(&base, ModSet::from_numbers(&[1])?, &timing)?
            .solve(16, &SolverOptions::default())?;
        println!("{words:>6} {:>10.3} {:>10.3}", wo.speedup, m1.speedup);
    }
    println!("(bigger blocks monopolize the bus longer per miss; without a");
    println!(" miss-rate benefit — not modeled here — smaller blocks win, matching");
    println!(" the era's block-size studies [Smit85b])");
    println!();

    // A 2-d sweep to show the cost: hundreds of solves, wall time printed.
    let start = std::time::Instant::now();
    let mut best = (0.0f64, 0.0f64, 0u32);
    let mut count = 0usize;
    for h in 0..20 {
        let h_private = 0.80 + h as f64 * 0.01;
        for words in [2u32, 4, 8, 16] {
            let params = WorkloadParams { h_private, ..base };
            let timing = TimingModel { words_per_block: words, ..TimingModel::default() };
            let s = MvaModel::with_timing(&params, ModSet::from_numbers(&[1])?, &timing)?
                .solve(16, &SolverOptions::default())?;
            count += 1;
            if s.speedup > best.0 {
                best = (s.speedup, h_private, words);
            }
        }
    }
    println!(
        "swept {count} configurations in {:.1} ms; best: speedup {:.3} at h_private = {:.2}, \
         {}-word blocks",
        start.elapsed().as_secs_f64() * 1e3,
        best.0,
        best.1,
        best.2
    );
    Ok(())
}
