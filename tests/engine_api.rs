//! Integration tests for the unified evaluation engine through the
//! `snoop` facade: content-hash stability, cache accounting, mixed-backend
//! batches, and the batched-vs-one-at-a-time determinism guarantee.

use snoop::engine::{
    Engine, GtpnBackend, MvaBackend, ResilientMvaBackend, Scenario, SimBackend, SCHEMA,
};
use snoop::numeric::exec::ExecOptions;
use snoop::protocol::ModSet;
use snoop::workload::params::SharingLevel;

fn wo(n: usize) -> Scenario {
    Scenario::appendix_a(ModSet::new(), SharingLevel::Five, n)
}

/// A scenario whose simulation settings are small enough for test-speed
/// DES runs.
fn quick_sim(protocol: &str, n: usize) -> Scenario {
    let mut s =
        Scenario::appendix_a(protocol.parse::<ModSet>().unwrap(), SharingLevel::Five, n);
    s.sim.warmup_references = 300;
    s.sim.measured_references = 2_000;
    s.sim.replications = 2;
    s
}

#[test]
fn content_hash_is_stable_across_field_reordering_in_the_batch_file() {
    let canonical = Scenario::batch_to_json(&[wo(6)]);
    assert!(canonical.contains(SCHEMA));
    let hash = Scenario::parse_batch(&canonical).unwrap()[0].content_hash();

    // The same scenario, hand-written with every object's keys in a
    // different order than the canonical serialization emits.
    let reordered = r#"{
        "scenarios": [
            {
                "n": 6,
                "solver": {"damping": 1.0, "tolerance": 1e-12, "max_iterations": 10000},
                "sharing": "5",
                "protocol": "WO"
            }
        ],
        "schema": "snoop-scenario-v1"
    }"#;
    let parsed = Scenario::parse_batch(reordered).unwrap();
    assert_eq!(parsed[0].content_hash(), hash);
    assert_eq!(parsed[0], wo(6));
}

#[test]
fn mod_set_spellings_share_one_cache_line() {
    // "WO+3+1" and "WO+1+3" are the same protocol; the canonical Display
    // ordering keeps them on one cache key.
    let a = Scenario::appendix_a("WO+3+1".parse::<ModSet>().unwrap(), SharingLevel::Five, 4);
    let b = Scenario::appendix_a("WO+1+3".parse::<ModSet>().unwrap(), SharingLevel::Five, 4);
    assert_eq!(a.protocol.to_string(), "WO+1+3");
    assert_eq!(a.content_hash(), b.content_hash());
    assert_eq!(a.canonical_json(), b.canonical_json());

    let engine = Engine::new().with_backend(MvaBackend);
    let results = engine.evaluate_batch(&[a, b]);
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 2, "both jobs probe an empty cache");
    assert_eq!(stats.entries, 1, "one entry serves both spellings");
    assert_eq!(
        results[0].result.as_ref().unwrap().speedup,
        results[1].result.as_ref().unwrap().speedup
    );
}

#[test]
fn cache_accounting_distinguishes_hits_misses_and_entries() {
    let engine = Engine::new().with_backend(MvaBackend);
    // Three jobs, two unique scenarios: every probe of the cold cache is a
    // miss, but only two evaluations (and entries) happen.
    let batch = [wo(3), wo(5), wo(3)];
    let first = engine.evaluate_batch(&batch);
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 3, 2));
    // The duplicate is the same value, marked as deduplicated.
    assert_eq!(
        first[0].result.as_ref().unwrap().speedup,
        first[2].result.as_ref().unwrap().speedup
    );

    // Re-running the batch is all hits, no new entries.
    let second = engine.evaluate_batch(&batch);
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (3, 3, 2));
    for (f, s) in first.iter().zip(&second) {
        let (f, s) = (f.result.as_ref().unwrap(), s.result.as_ref().unwrap());
        assert_eq!(f.speedup, s.speedup);
        assert!(s.provenance.cached);
    }
}

#[test]
fn mixed_backend_batch_yields_one_result_per_scenario_backend_pair() {
    let engine = Engine::new()
        .with_backend(MvaBackend)
        .with_backend(ResilientMvaBackend::default())
        .with_backend(SimBackend::default())
        .with_backend(GtpnBackend::default());
    let scenarios = [quick_sim("WO", 2), quick_sim("WO+1", 2)];
    let results = engine.evaluate_batch(&scenarios);
    assert_eq!(results.len(), scenarios.len() * 4);
    // Scenario-major, backend-minor ordering, every job succeeding.
    for (si, chunk) in results.chunks(4).enumerate() {
        let ids: Vec<String> = chunk.iter().map(|r| r.backend.to_string()).collect();
        assert_eq!(ids, ["mva", "mva-resilient", "sim", "gtpn"]);
        for r in chunk {
            assert_eq!(r.scenario, si);
            let eval = r.result.as_ref().unwrap_or_else(|e| panic!("{}: {e}", r.backend));
            assert_eq!(eval.n, 2);
            assert!(eval.speedup > 0.0);
        }
    }
    // The plain and resilient MVA agree on the solution itself.
    let (plain, resilient) =
        (results[0].result.as_ref().unwrap(), results[1].result.as_ref().unwrap());
    assert_eq!(plain.speedup, resilient.speedup);
}

#[test]
fn batched_evaluation_is_bit_identical_to_one_at_a_time_at_every_thread_count() {
    let scenarios: Vec<Scenario> = vec![
        quick_sim("WO", 1),
        quick_sim("WO", 3),
        quick_sim("WO+1", 2),
        quick_sim("dragon", 4),
        quick_sim("WO", 3), // duplicate — served from the cache
    ];

    // Reference: a fresh serial engine per scenario (no batching, no
    // shared cache).
    let reference: Vec<_> = scenarios
        .iter()
        .map(|s| {
            Engine::new()
                .with_backend(MvaBackend)
                .with_backend(SimBackend::default())
                .evaluate(s)
                .into_iter()
                .map(|r| r.result.unwrap())
                .collect::<Vec<_>>()
        })
        .collect();

    for threads in [1usize, 2, 8] {
        let exec = ExecOptions::with_threads(threads);
        let engine = Engine::new()
            .with_backend(MvaBackend)
            .with_backend(SimBackend { exec })
            .with_exec(exec);
        let batched = engine.evaluate_batch(&scenarios);
        let mut it = batched.into_iter();
        for per_scenario in &reference {
            for want in per_scenario {
                let got = it.next().unwrap().result.unwrap();
                // PartialEq on Evaluation ignores wall-clock and cache
                // provenance, so this is a bit-identity check on every
                // reported measure.
                assert_eq!(&got, want, "threads={threads}");
            }
        }
    }
}

#[test]
fn cache_spills_to_json_and_reloads_for_a_fully_cached_run() {
    let dir = std::env::temp_dir().join("snoop_engine_api_spill");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.json");
    let _ = std::fs::remove_file(&path);
    let scenarios = [wo(2), wo(7), wo(12)];

    let first = Engine::new().with_backend(MvaBackend);
    let a = first.evaluate_batch(&scenarios);
    first.cache().save_file(&path).unwrap();
    assert_eq!(first.cache_stats().entries, 3);

    let second = Engine::new().with_backend(MvaBackend);
    assert_eq!(second.cache().load_file(&path).unwrap().loaded, 3);
    let b = second.evaluate_batch(&scenarios);
    let stats = second.cache_stats();
    assert_eq!((stats.hits, stats.misses), (3, 0), "run two is 100% cache hits");
    for (x, y) in a.iter().zip(&b) {
        let (x, y) = (x.result.as_ref().unwrap(), y.result.as_ref().unwrap());
        assert_eq!(x, y);
        assert!(y.provenance.cached);
    }
}
