//! Round-trip calibration: synthesize a trace from *known* workload
//! parameters, run it through the Appendix-A estimator, and require the
//! recovered parameters to land on the originals — the property that
//! makes `snoop calibrate --trace` trustworthy on traces whose ground
//! truth nobody knows.
//!
//! The estimator must also be deterministic in the strictest sense: the
//! entire measurement (parameters, windows, confidence intervals) is
//! bit-identical at 1, 2 and 8 threads.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use snoop::numeric::exec::ExecOptions;
use snoop::workload::ingest::{FileTrace, IngestOptions, TraceFormat};
use snoop::workload::measure::{measure_source, MeasureConfig, MeasuredWorkload};
use snoop::workload::params::WorkloadParams;
use snoop::workload::trace::{TraceConfig, TraceGenerator, TraceSource};

const REFERENCES: u64 = 24_000;

fn generator(params: WorkloadParams, seed: u64) -> TraceGenerator<SmallRng> {
    let config = TraceConfig { processors: 4, ..TraceConfig::default() };
    TraceGenerator::new(params, config, SmallRng::seed_from_u64(seed))
}

fn measure(params: WorkloadParams, seed: u64, threads: usize) -> MeasuredWorkload {
    let mut source = generator(params, seed);
    let config = MeasureConfig {
        max_references: Some(REFERENCES),
        exec: ExecOptions::with_threads(threads),
        ..MeasureConfig::default()
    };
    measure_source(&mut source, &config).expect("synthetic trace measures cleanly")
}

/// Strategy over the workload knobs the generator actually realizes in
/// the address stream: the stream mix, the read fractions, and tau.
/// (Hit rates are emergent — cache geometry meets locality — so the
/// round trip checks their plausibility, not equality.)
fn mix_strategy() -> impl Strategy<Value = WorkloadParams> {
    (0.05f64..=0.3, 0.2f64..=0.8, 0.5f64..=0.9, 0.3f64..=0.7, 1.0f64..=5.0).prop_map(
        |(sharing, split, r_private, r_sw, tau)| {
            let mut p = WorkloadParams::default();
            p.p_sro = sharing * split;
            p.p_sw = sharing * (1.0 - split);
            p.p_private = 1.0 - p.p_sro - p.p_sw;
            p.r_private = r_private;
            p.r_sw = r_sw;
            p.tau = tau;
            p
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The estimator recovers the realized stream mix, read fractions
    /// and think time from a synthetic trace with known parameters.
    #[test]
    fn estimator_recovers_known_parameters(params in mix_strategy(), seed in 0u64..1024) {
        params.validate().expect("strategy builds valid params");
        let measured = measure(params, seed, 1);
        let m = &measured.params;
        m.validate().expect("measured params validate");

        // Stream probabilities: multinomial sampling over ~21k counted
        // references puts the standard error near 0.003; 0.02 is ~6 sigma.
        prop_assert!((m.p_private - params.p_private).abs() < 0.02,
            "p_private {} vs {}", m.p_private, params.p_private);
        prop_assert!((m.p_sro - params.p_sro).abs() < 0.02,
            "p_sro {} vs {}", m.p_sro, params.p_sro);
        prop_assert!((m.p_sw - params.p_sw).abs() < 0.02,
            "p_sw {} vs {}", m.p_sw, params.p_sw);
        // Read fractions (per-stream Bernoulli draws).
        prop_assert!((m.r_private - params.r_private).abs() < 0.03,
            "r_private {} vs {}", m.r_private, params.r_private);
        prop_assert!((m.r_sw - params.r_sw).abs() < 0.15,
            "r_sw {} vs {}", m.r_sw, params.r_sw);
        // The generator reports tau exactly.
        prop_assert!((m.tau - params.tau).abs() < 1e-12, "tau {} vs {}", m.tau, params.tau);
        // Hit rates are emergent but must be sane for a private-heavy mix.
        prop_assert!(m.h_private > 0.5, "h_private {}", m.h_private);
        prop_assert!((0.0..=1.0).contains(&measured.p_local));
    }
}

#[test]
fn measurement_is_bit_identical_across_thread_counts() {
    let params = WorkloadParams::default();
    let base = measure(params, 42, 1);
    for threads in [2, 8] {
        let other = measure(params, 42, threads);
        // Debug formatting covers every f64 bit pattern in the params,
        // the per-window stats and the confidence intervals.
        assert_eq!(
            format!("{base:?}"),
            format!("{other:?}"),
            "measurement differs at {threads} threads"
        );
    }
}

/// Write a generator's stream to assignment-format files, read it back
/// through the file ingester, and require the two measurement paths to
/// agree on the workload — the file layer must be a faithful transport.
#[test]
fn file_round_trip_preserves_the_measured_workload() {
    let params = WorkloadParams::default();
    let n = 4;
    let per_proc = (REFERENCES as usize) / n;

    // Small shared pools: the file reader classifies streams from the
    // sharer sets it *observes*, so every shared block must actually be
    // touched by two processors within the trace. (The generator's
    // default 1024-block sro pool leaves most of its blocks
    // single-sharer at this length, which the reader rightly calls
    // private.)
    let trace_config = TraceConfig {
        processors: n,
        sro_blocks: 64,
        sw_blocks: 16,
        ..TraceConfig::default()
    };
    // Drain the generator into per-processor assignment files. Think
    // time is encoded as one `2 <cycles>` line per record (scaled by 10
    // to keep the cycles integral: tau 2.5 -> 25 cycles per 10 records).
    let mut source = TraceGenerator::new(params, trace_config, SmallRng::seed_from_u64(7));
    let mut lines: Vec<String> = vec![String::new(); n];
    for i in 0..per_proc {
        for (p, text) in lines.iter_mut().enumerate() {
            let r = source.next_for(p).expect("generator is inexhaustible");
            // Word address -> byte address (4-byte words).
            text.push_str(&format!("{} {:x}\n", u8::from(r.is_write), r.address * 4));
            if (i + 1) % 10 == 0 {
                text.push_str(&format!("2 {}\n", (params.tau * 10.0) as u64));
            }
        }
    }
    let dir = std::env::temp_dir().join(format!("snoop-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<std::path::PathBuf> = (0..n)
        .map(|p| {
            let path = dir.join(format!("rt_p{p}.trace"));
            std::fs::write(&path, &lines[p]).unwrap();
            path
        })
        .collect();

    let mut file_trace = FileTrace::open(
        &paths,
        TraceFormat::Assignment,
        IngestOptions::default(),
    )
    .expect("round-trip files parse");
    let config = MeasureConfig::default();
    let from_file = measure_source(&mut file_trace, &config).expect("file trace measures");

    // Measure the same records straight from a fresh, identically
    // seeded generator.
    let mut fresh = TraceGenerator::new(params, trace_config, SmallRng::seed_from_u64(7));
    let direct_config =
        MeasureConfig { max_references: Some(REFERENCES), ..MeasureConfig::default() };
    let direct = measure_source(&mut fresh, &direct_config).expect("direct measure");

    let (f, d) = (&from_file.params, &direct.params);
    // The file pass sees the identical reference stream, but classifies
    // streams from observed sharing rather than the generator's label,
    // so mixes agree to sampling noise, not bitwise.
    assert!((f.p_private - d.p_private).abs() < 0.02, "p_private {} vs {}", f.p_private, d.p_private);
    assert!((f.p_sro - d.p_sro).abs() < 0.02, "p_sro {} vs {}", f.p_sro, d.p_sro);
    assert!((f.p_sw - d.p_sw).abs() < 0.02, "p_sw {} vs {}", f.p_sw, d.p_sw);
    assert!((f.r_private - d.r_private).abs() < 0.03, "r_private {} vs {}", f.r_private, d.r_private);
    // Think lines encode tau exactly (one `2 25` per 10 records).
    assert!((f.tau - params.tau).abs() < 1e-9, "tau {} vs {}", f.tau, params.tau);

    std::fs::remove_dir_all(&dir).ok();
}
