//! Consistency between the three faces of the workload model: the analytic
//! masses, the random-reference sampler, and the synthetic address traces.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snoop::protocol::ModSet;
use snoop::workload::derived::ModelInputs;
use snoop::workload::params::{SharingLevel, WorkloadParams};
use snoop::workload::streams::ReferenceRates;
use snoop::workload::synth::{ReferenceGenerator, Stream};
use snoop::workload::timing::TimingModel;

/// The sampler's empirical routing frequencies must match the derived
/// `p_local`/`p_bc`/`p_rr` for Write-Once (the same classification logic
/// the simulator uses).
#[test]
fn sampler_frequencies_match_derived_inputs() {
    for level in SharingLevel::ALL {
        let params = WorkloadParams::appendix_a(level);
        let inputs =
            ModelInputs::derive(&params, ModSet::new(), &TimingModel::default()).unwrap();
        let mut generator = ReferenceGenerator::new(params, SmallRng::seed_from_u64(7));

        let n = 300_000;
        let mut local = 0u32;
        let mut bc = 0u32;
        let mut rr = 0u32;
        for _ in 0..n {
            let e = generator.next_reference();
            if !e.hits {
                rr += 1;
            } else if e.is_write
                && !e.already_modified
                && matches!(e.stream, Stream::Private | Stream::SharedWritable)
            {
                bc += 1;
            } else {
                local += 1;
            }
        }
        let nf = n as f64;
        assert!(
            (local as f64 / nf - inputs.p_local).abs() < 0.005,
            "{level}: local {} vs {}",
            local as f64 / nf,
            inputs.p_local
        );
        assert!(
            (bc as f64 / nf - inputs.p_bc).abs() < 0.005,
            "{level}: bc {} vs {}",
            bc as f64 / nf,
            inputs.p_bc
        );
        assert!(
            (rr as f64 / nf - inputs.p_rr).abs() < 0.005,
            "{level}: rr {} vs {}",
            rr as f64 / nf,
            inputs.p_rr
        );
    }
}

/// The sampler's conditional write-back frequencies must match the derived
/// conditional probabilities `p_csupwb|rr` and `p_reqwb|rr`.
#[test]
fn writeback_conditionals_match() {
    let params = WorkloadParams::appendix_a(SharingLevel::Twenty);
    let inputs =
        ModelInputs::derive(&params, ModSet::new(), &TimingModel::default()).unwrap();
    let mut generator = ReferenceGenerator::new(params, SmallRng::seed_from_u64(11));

    let mut misses = 0u32;
    let mut supplier_wb = 0u32;
    let mut victim_wb = 0u32;
    for _ in 0..400_000 {
        let e = generator.next_reference();
        if !e.hits {
            misses += 1;
            if e.supplier_dirty {
                supplier_wb += 1;
            }
            if e.victim_dirty {
                victim_wb += 1;
            }
        }
    }
    let m = misses as f64;
    assert!(
        (supplier_wb as f64 / m - inputs.p_csupwb_rr).abs() < 0.01,
        "csupwb {} vs {}",
        supplier_wb as f64 / m,
        inputs.p_csupwb_rr
    );
    assert!(
        (victim_wb as f64 / m - inputs.p_reqwb_rr).abs() < 0.01,
        "reqwb {} vs {}",
        victim_wb as f64 / m,
        inputs.p_reqwb_rr
    );
}

/// The masses and the sampler agree per elementary event class, not just
/// in aggregate.
#[test]
fn sampler_matches_event_masses() {
    let params = WorkloadParams::appendix_a(SharingLevel::Five);
    let rates = ReferenceRates::from_params(&params);
    let mut generator = ReferenceGenerator::new(params, SmallRng::seed_from_u64(13));

    let n = 300_000;
    let mut counts = [0u32; 4]; // [private wh unmod, sw wh unmod, sro miss, sw miss]
    for _ in 0..n {
        let e = generator.next_reference();
        match (e.stream, e.is_write, e.hits, e.already_modified) {
            (Stream::Private, true, true, false) => counts[0] += 1,
            (Stream::SharedWritable, true, true, false) => counts[1] += 1,
            (Stream::SharedReadOnly, _, false, _) => counts[2] += 1,
            (Stream::SharedWritable, _, false, _) => counts[3] += 1,
            _ => {}
        }
    }
    let nf = n as f64;
    let expected = [
        rates.private_write_hit_unmod,
        rates.sw_write_hit_unmod,
        rates.sro_miss,
        rates.sw_misses(),
    ];
    for (i, (&count, &exp)) in counts.iter().zip(&expected).enumerate() {
        assert!(
            (count as f64 / nf - exp).abs() < 0.004,
            "class {i}: {} vs {exp}",
            count as f64 / nf
        );
    }
}

/// The trace generator reproduces the stream mix and read/write split of
/// the parameters it is given.
#[test]
fn trace_mix_matches_parameters() {
    use snoop::workload::trace::{TraceConfig, TraceGenerator};
    let params = WorkloadParams::appendix_a(SharingLevel::Twenty);
    let mut generator = TraceGenerator::new(
        params,
        TraceConfig::default(),
        SmallRng::seed_from_u64(17),
    );
    let n = 200_000;
    let mut writes = 0u32;
    let mut by_stream = [0u32; 3];
    for _ in 0..n {
        let r = generator.next_record();
        if r.is_write {
            writes += 1;
        }
        by_stream[match r.stream {
            Stream::Private => 0,
            Stream::SharedReadOnly => 1,
            Stream::SharedWritable => 2,
        }] += 1;
    }
    let nf = n as f64;
    assert!((by_stream[0] as f64 / nf - 0.80).abs() < 0.01);
    assert!((by_stream[1] as f64 / nf - 0.15).abs() < 0.01);
    assert!((by_stream[2] as f64 / nf - 0.05).abs() < 0.01);
    // Expected write fraction: p_p·(1−r_p) + p_sw·(1−r_sw).
    let expected_writes = 0.80 * 0.3 + 0.05 * 0.5;
    assert!((writes as f64 / nf - expected_writes).abs() < 0.01);
}
