//! Property-based tests on the workload derivation and the MVA solver:
//! for random (valid) workloads, the derived inputs stay consistent and
//! the solved measures stay physical.

use proptest::prelude::*;
use snoop::mva::asymptote::asymptotic;
use snoop::mva::{MvaModel, SolverOptions};
use snoop::protocol::ModSet;
use snoop::workload::derived::ModelInputs;
use snoop::workload::params::WorkloadParams;
use snoop::workload::streams::ReferenceRates;
use snoop::workload::timing::TimingModel;

/// Strategy over valid workload parameters.
fn params_strategy() -> impl Strategy<Value = WorkloadParams> {
    (
        (
            0.5f64..10.0,  // tau
            0.0f64..=1.0,  // shared split position
            0.0f64..=0.4,  // sharing fraction
            0.5f64..=1.0,  // h_private
            0.5f64..=1.0,  // h_sro
            0.05f64..=1.0, // h_sw
            0.0f64..=1.0,  // r_private
            0.0f64..=1.0,  // r_sw
        ),
        (
            0.0f64..=1.0, // amod_private
            0.0f64..=1.0, // amod_sw
            0.0f64..=1.0, // csupply_sro
            0.0f64..=1.0, // csupply_sw
            0.0f64..=1.0, // wb_csupply
            0.0f64..=1.0, // rep_p
            0.0f64..=1.0, // rep_sw
        ),
    )
        .prop_map(
            |(
                (tau, split, sharing, h_private, h_sro, h_sw, r_private, r_sw),
                (amod_private, amod_sw, csupply_sro, csupply_sw, wb_csupply, rep_p, rep_sw),
            )| {
                let p_sro = sharing * split;
                let p_sw = sharing * (1.0 - split);
                WorkloadParams {
                    tau,
                    p_private: 1.0 - p_sro - p_sw,
                    p_sro,
                    p_sw,
                    h_private,
                    h_sro,
                    h_sw,
                    r_private,
                    r_sw,
                    amod_private,
                    amod_sw,
                    csupply_sro,
                    csupply_sw,
                    wb_csupply,
                    rep_p,
                    rep_sw,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The elementary event masses always partition the reference stream.
    #[test]
    fn masses_partition_unity(params in params_strategy()) {
        params.validate().expect("constructed valid");
        let rates = ReferenceRates::from_params(&params);
        prop_assert!((rates.total() - 1.0).abs() < 1e-9, "total {}", rates.total());
    }

    /// Derived inputs are consistent for every modification set.
    #[test]
    fn derived_inputs_are_consistent(params in params_strategy(), bits in 0u8..16) {
        let mods = ModSet::power_set()[bits as usize];
        let inputs = ModelInputs::derive(&params, mods, &TimingModel::default())
            .expect("valid params");
        prop_assert!(inputs.p_local >= -1e-12);
        prop_assert!(inputs.p_bc >= -1e-12);
        prop_assert!(inputs.p_rr >= -1e-12);
        prop_assert!(inputs.t_read >= 0.0);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&inputs.p_csupwb_rr));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&inputs.p_reqwb_rr));
        // Without the distributed-write extra broadcasts, routing is a
        // partition of the reference stream.
        if !mods.contains(snoop::protocol::Modification::DistributedWrite) {
            prop_assert!(
                (inputs.routing_total() - 1.0).abs() < 1e-9,
                "routing {}",
                inputs.routing_total()
            );
        } else {
            prop_assert!(inputs.routing_total() >= 1.0 - 1e-9);
        }
    }

    /// Solutions are physical for random workloads and sizes.
    #[test]
    fn solutions_stay_physical(params in params_strategy(), bits in 0u8..16, n in 1usize..=64) {
        let mods = ModSet::power_set()[bits as usize];
        let model = MvaModel::for_protocol(&params, mods).expect("valid params");
        let s = model
            .solve(n, &SolverOptions::default())
            .expect("solver converges on valid workloads");
        prop_assert!(s.is_physical(params.tau, 1.0), "{s}");
        prop_assert!(s.speedup > 0.0);
    }

    /// The bus imposes a throughput ceiling: speedup cannot exceed
    /// `(τ + T_supply) / D₀`, where `D₀` is the bus demand per request with
    /// zero memory waiting. The paper's approximate equations do not
    /// enforce this constraint structurally — at *small* N under extreme
    /// per-request demand (think times far below a bus service, workloads
    /// far outside the paper's regime) the one-customer-removed arrival
    /// approximation underestimates waiting and can overshoot capacity by
    /// tens of percent. The violation decays as N grows, so the bound is
    /// asserted from N = 16 up (with 5% slack), which also documents the
    /// approximation's domain of validity.
    #[test]
    fn bus_demand_bounds_the_solver_at_scale(params in params_strategy(), n in 16usize..=256) {
        let model = MvaModel::for_protocol(&params, ModSet::new()).expect("valid");
        let s = model.solve(n, &SolverOptions::default()).expect("converges");
        let i = model.inputs();
        let d0 = i.p_bc * i.t_write + i.p_rr * i.t_read;
        if d0 > 0.0 {
            let ceiling = (i.tau + i.t_supply) / d0;
            prop_assert!(
                s.speedup <= ceiling * 1.05 + 1e-9,
                "N={n}: speedup {} exceeds bus ceiling {ceiling}",
                s.speedup
            );
        }
    }

    /// At very large N the solver approaches the closed-form asymptote.
    #[test]
    fn solver_approaches_asymptote(params in params_strategy()) {
        let model = MvaModel::for_protocol(&params, ModSet::new()).expect("valid");
        let a = asymptotic(model.inputs());
        prop_assume!(a.speedup.is_finite());
        let s = model.solve(20_000, &SolverOptions::default()).expect("converges");
        prop_assert!(
            (s.speedup - a.speedup).abs() / a.speedup < 0.05,
            "solver {} vs asymptote {}",
            s.speedup,
            a.speedup
        );
    }

    /// Degrading a cache (lower hit rate) never helps.
    #[test]
    fn lower_hit_rate_never_helps(params in params_strategy(), n in 1usize..=32) {
        let worse = WorkloadParams { h_private: params.h_private * 0.9, ..params };
        let base = MvaModel::for_protocol(&params, ModSet::new())
            .expect("valid")
            .solve(n, &SolverOptions::default())
            .expect("converges");
        let degraded = MvaModel::for_protocol(&worse, ModSet::new())
            .expect("valid")
            .solve(n, &SolverOptions::default())
            .expect("converges");
        prop_assert!(
            degraded.speedup <= base.speedup + 1e-6,
            "degraded {} > base {}",
            degraded.speedup,
            base.speedup
        );
    }
}
