//! Determinism contract of the parallel evaluation engine: for every
//! thread count, parallel evaluation is **bit-identical** to serial — on
//! the Table 4.1 sweep grid, the sensitivity analysis, the GTPN
//! reachability/steady-state pipeline and the simulator's independent
//! replications.
//!
//! CI runs this suite under `SNOOP_THREADS=1` and `SNOOP_THREADS=4`; the
//! explicit thread counts below make the contract hold regardless of the
//! environment.

use snoop::gtpn::models::coherence::CoherenceNet;
use snoop::gtpn::reachability::{explore, ReachabilityOptions};
use snoop::mva::resilient::ResilientOptions;
use snoop::mva::sweep::{
    figure_4_1_family_exec, figure_4_1_grid, resilient_speedup_series, TABLE_4_1_N,
};
use snoop::mva::SolverOptions;
use snoop::numeric::exec::ExecOptions;
use snoop::protocol::ModSet;
use snoop::sim::runner::replicate_exec;
use snoop::sim::SimConfig;
use snoop::workload::derived::ModelInputs;
use snoop::workload::params::{SharingLevel, WorkloadParams};
use snoop::workload::timing::TimingModel;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn figure_4_1_family_identical_across_thread_counts() {
    let sizes = [1, 4, 10, 20];
    let options = SolverOptions::default();
    let serial = figure_4_1_family_exec(&sizes, &options, &ExecOptions::SERIAL).unwrap();
    for threads in THREAD_COUNTS {
        let parallel =
            figure_4_1_family_exec(&sizes, &options, &ExecOptions::with_threads(threads))
                .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.mods, p.mods);
            assert_eq!(s.sharing, p.sharing);
            for (a, b) in s.points.iter().zip(&p.points) {
                assert_eq!(
                    a.speedup.to_bits(),
                    b.speedup.to_bits(),
                    "{} {} N={}: {} threads diverged",
                    s.mods,
                    s.sharing,
                    a.n,
                    threads
                );
            }
        }
    }
}

#[test]
fn resilient_sweeps_identical_on_all_table_4_1_configs() {
    let options = ResilientOptions::default();
    for (mods, sharing) in figure_4_1_grid() {
        let serial =
            resilient_speedup_series(mods, sharing, &TABLE_4_1_N, &options, true).unwrap();
        // `resilient_speedup_series` is sequential within a series; the
        // grid-parallel entry point must reproduce it cell for cell.
        for threads in THREAD_COUNTS {
            let family = snoop::mva::sweep::resilient_figure_4_1_family(
                &TABLE_4_1_N,
                &options,
                true,
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            let cell = family
                .iter()
                .find(|s| s.mods == mods && s.sharing == sharing)
                .expect("grid cell present");
            assert_eq!(&serial, cell, "{mods} {sharing}: {threads} threads diverged");
        }
    }
}

#[test]
fn sensitivities_identical_across_thread_counts() {
    let base = WorkloadParams::appendix_a(SharingLevel::Five);
    let serial =
        snoop::mva::sensitivity::sensitivities_exec(&base, ModSet::new(), 10, 0.01, &ExecOptions::SERIAL)
            .unwrap();
    for threads in THREAD_COUNTS {
        let parallel = snoop::mva::sensitivity::sensitivities_exec(
            &base,
            ModSet::new(),
            10,
            0.01,
            &ExecOptions::with_threads(threads),
        )
        .unwrap();
        assert_eq!(serial, parallel, "{threads} threads diverged");
    }
}

#[test]
fn gtpn_pipeline_identical_across_thread_counts() {
    let inputs = ModelInputs::derive_adjusted(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
        &TimingModel::default(),
    )
    .unwrap();
    let net = CoherenceNet::build(&inputs, 2).unwrap();
    let serial_graph = explore(
        &net.net,
        &ReachabilityOptions { threads: 1, ..ReachabilityOptions::default() },
    )
    .unwrap();
    let serial = net
        .solve(&ReachabilityOptions { threads: 1, ..ReachabilityOptions::default() })
        .unwrap();
    for threads in THREAD_COUNTS {
        let options = ReachabilityOptions { threads, ..ReachabilityOptions::default() };
        let graph = explore(&net.net, &options).unwrap();
        assert_eq!(serial_graph, graph, "{threads} threads: graph diverged");
        let solved = net.solve(&options).unwrap();
        assert_eq!(
            serial.speedup.to_bits(),
            solved.speedup.to_bits(),
            "{threads} threads: speedup diverged"
        );
        assert_eq!(
            serial.bus_utilization.to_bits(),
            solved.bus_utilization.to_bits(),
            "{threads} threads: bus utilization diverged"
        );
        assert_eq!(serial.states, solved.states);
    }
}

#[test]
fn metrics_collection_does_not_change_any_output_bit() {
    // First compute reference results with the probe registry disabled,
    // then recompute everything with collection enabled at every thread
    // count: all outputs must stay bit-identical, because the probe layer
    // is strictly observational.
    let sizes = [1, 4, 10];
    let options = SolverOptions::default();
    let figure_ref = figure_4_1_family_exec(&sizes, &options, &ExecOptions::SERIAL).unwrap();

    let inputs = ModelInputs::derive_adjusted(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
        &TimingModel::default(),
    )
    .unwrap();
    let net = CoherenceNet::build(&inputs, 2).unwrap();
    let gtpn_ref = net
        .solve(&ReachabilityOptions { threads: 1, ..ReachabilityOptions::default() })
        .unwrap();

    let mut sim_config = SimConfig::for_protocol(
        2,
        WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
    );
    sim_config.warmup_references = 300;
    sim_config.measured_references = 2_000;
    let sim_ref = replicate_exec(&sim_config, 3, 0.95, &ExecOptions::SERIAL).unwrap();

    let _session = snoop::numeric::probe::session();
    for threads in THREAD_COUNTS {
        let exec = ExecOptions::with_threads(threads);
        let figure = figure_4_1_family_exec(&sizes, &options, &exec).unwrap();
        for (s, p) in figure_ref.iter().zip(&figure) {
            for (a, b) in s.points.iter().zip(&p.points) {
                assert_eq!(
                    a.speedup.to_bits(),
                    b.speedup.to_bits(),
                    "{threads} threads with metrics: figure diverged"
                );
            }
        }
        let gtpn = net
            .solve(&ReachabilityOptions { threads, ..ReachabilityOptions::default() })
            .unwrap();
        assert_eq!(gtpn_ref.speedup.to_bits(), gtpn.speedup.to_bits());
        assert_eq!(gtpn_ref.bus_utilization.to_bits(), gtpn.bus_utilization.to_bits());
        assert_eq!(gtpn_ref.states, gtpn.states);
        let sim = replicate_exec(&sim_config, 3, 0.95, &exec).unwrap();
        for (a, b) in sim_ref.replications.iter().zip(&sim.replications) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
            assert_eq!(a.w_bus.to_bits(), b.w_bus.to_bits());
        }
        assert_eq!(sim_ref.speedup.mean.to_bits(), sim.speedup.mean.to_bits());
    }
    // And the instrumentation did actually collect something.
    let snapshot = snoop::numeric::probe::snapshot();
    assert!(
        snapshot.spans.iter().any(|(p, _)| p.contains("mva_solve")),
        "no mva_solve span collected"
    );
    assert!(
        snapshot.spans.iter().any(|(p, _)| p.contains("gtpn_reachability")),
        "no gtpn_reachability span collected"
    );
    assert!(
        snapshot.spans.iter().any(|(p, _)| p.contains("sim_replications")),
        "no sim_replications span collected"
    );
}

#[test]
fn tracing_does_not_change_any_engine_output_bit() {
    // Tracing, like the probe registry, is strictly observational: with a
    // trace session active, the engine must produce bit-identical
    // evaluations at every thread count — on a fresh cache each time, so
    // every backend genuinely re-solves under the recorder.
    use snoop::engine::{
        Engine, GtpnBackend, MvaBackend, ResilientMvaBackend, Scenario, SimBackend,
    };
    use snoop::numeric::probe::trace;

    let quick = |protocol: &str, sharing: SharingLevel, n: usize| {
        let mut s = Scenario::appendix_a(protocol.parse::<ModSet>().unwrap(), sharing, n);
        s.sim.warmup_references = 300;
        s.sim.measured_references = 1_000;
        s.sim.replications = 2;
        s
    };
    let scenarios = vec![
        quick("WO", SharingLevel::Five, 2),
        quick("WO+3", SharingLevel::Twenty, 2),
        quick("WO+1", SharingLevel::Five, 3),
    ];

    let fresh_engine = |threads: usize| {
        Engine::new()
            .with_backend(MvaBackend)
            .with_backend(ResilientMvaBackend::default())
            .with_backend(SimBackend::default())
            .with_backend(GtpnBackend::default())
            .with_exec(ExecOptions::with_threads(threads))
    };

    // Reference run: serial, tracing off.
    assert!(!trace::enabled());
    let reference = fresh_engine(1).evaluate_batch(&scenarios);
    assert!(reference.iter().all(|r| r.result.is_ok()));

    let _session = trace::session();
    for threads in THREAD_COUNTS {
        let traced = fresh_engine(threads).evaluate_batch(&scenarios);
        assert_eq!(reference.len(), traced.len());
        for (a, b) in reference.iter().zip(&traced) {
            assert_eq!(a.backend, b.backend);
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(
                a.speedup.to_bits(),
                b.speedup.to_bits(),
                "{} N={}: {threads} threads with tracing diverged",
                a.backend,
                a.n
            );
            assert_eq!(a.r.to_bits(), b.r.to_bits());
            assert_eq!(a.bus_utilization.to_bits(), b.bus_utilization.to_bits());
        }
    }

    // And the recorder did actually see the work: every begin has its
    // end, and the per-job spans are present.
    let collected = trace::drain();
    assert!(!collected.events.is_empty(), "no trace events collected");
    let begins = collected.events.iter().filter(|e| e.phase == 'B').count();
    let ends = collected.events.iter().filter(|e| e.phase == 'E').count();
    assert_eq!(begins, ends, "unmatched begin/end events");
    assert!(
        collected.events.iter().any(|e| e.name == "engine.job"),
        "no engine.job span collected"
    );
    assert!(
        collected.events.iter().any(|e| e.name.starts_with("solve.")),
        "no solve.* span collected"
    );
}

#[test]
fn sim_replications_identical_across_thread_counts() {
    let mut config = SimConfig::for_protocol(
        4,
        WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
    );
    config.warmup_references = 300;
    config.measured_references = 3_000;
    let serial = replicate_exec(&config, 4, 0.95, &ExecOptions::SERIAL).unwrap();
    for threads in THREAD_COUNTS {
        let parallel =
            replicate_exec(&config, 4, 0.95, &ExecOptions::with_threads(threads)).unwrap();
        for (a, b) in serial.replications.iter().zip(&parallel.replications) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{threads} threads");
            assert_eq!(a.w_bus.to_bits(), b.w_bus.to_bits(), "{threads} threads");
            assert_eq!(
                a.bus_utilization.to_bits(),
                b.bus_utilization.to_bits(),
                "{threads} threads"
            );
        }
        assert_eq!(serial.speedup.mean.to_bits(), parallel.speedup.mean.to_bits());
        assert_eq!(
            serial.speedup.half_width.to_bits(),
            parallel.speedup.half_width.to_bits()
        );
    }
}
