//! Cross-model agreement: the MVA equations, the GTPN engine and the
//! discrete-event simulator must describe the same system.
//!
//! This is the repository-level restatement of the paper's validation
//! methodology: a cheap analytic model is trusted because detailed models
//! of the same assumptions corroborate it.

use snoop::gtpn::models::coherence::CoherenceNet;
use snoop::gtpn::reachability::ReachabilityOptions;
use snoop::mva::{MvaModel, SolverOptions};
use snoop::protocol::ModSet;
use snoop::sim::{simulate, SimConfig};
use snoop::workload::params::{SharingLevel, WorkloadParams};

fn mva_speedup(params: &WorkloadParams, mods: ModSet, n: usize) -> f64 {
    MvaModel::for_protocol(params, mods)
        .expect("valid")
        .solve(n, &SolverOptions::default())
        .expect("converges")
        .speedup
}

#[test]
fn mva_vs_simulator_across_the_table_range() {
    // The paper's claim grade: within ~3%, max ≈ 4.25%; we allow 6% to
    // absorb simulation noise at a single seed.
    let mut worst: f64 = 0.0;
    for sharing in SharingLevel::ALL {
        for mods in [&[][..], &[1], &[1, 4]] {
            let mods = ModSet::from_numbers(mods).expect("valid");
            for n in [1usize, 4, 10, 20] {
                let params = WorkloadParams::appendix_a(sharing);
                let mva = mva_speedup(&params, mods, n);
                let sim = simulate(&SimConfig::for_protocol(n, params, mods))
                    .expect("valid config")
                    .speedup;
                let err = (mva - sim).abs() / sim;
                worst = worst.max(err);
                assert!(
                    err < 0.06,
                    "{sharing} {mods} N={n}: MVA {mva:.3} vs DES {sim:.3} ({:.1}%)",
                    err * 100.0
                );
            }
        }
    }
    println!("worst MVA-vs-DES error: {:.2}%", worst * 100.0);
}

#[test]
fn mva_vs_gtpn_at_small_n() {
    for sharing in SharingLevel::ALL {
        for mods in [&[][..], &[1], &[2], &[3], &[2, 3]] {
            let mods = ModSet::from_numbers(mods).expect("valid");
            let params = WorkloadParams::appendix_a(sharing);
            let model = MvaModel::for_protocol(&params, mods).expect("valid");
            for n in [1usize, 2] {
                let mva =
                    model.solve(n, &SolverOptions::default()).expect("converges").speedup;
                let net = CoherenceNet::build(model.inputs(), n).expect("builds");
                let gtpn = net.solve(&ReachabilityOptions::default()).expect("solves");
                let err = (mva - gtpn.speedup).abs() / gtpn.speedup;
                assert!(
                    err < 0.05,
                    "{sharing} {mods} N={n}: MVA {mva:.3} vs GTPN {:.3} ({:.1}%)",
                    gtpn.speedup,
                    err * 100.0
                );
            }
        }
    }
}

#[test]
fn gtpn_vs_simulator_at_n2() {
    // The two *detailed* models agree with each other too.
    let params = WorkloadParams::appendix_a(SharingLevel::Five);
    let model = MvaModel::for_protocol(&params, ModSet::new()).expect("valid");
    let net = CoherenceNet::build(model.inputs(), 2).expect("builds");
    let gtpn = net.solve(&ReachabilityOptions::default()).expect("solves");
    let sim = simulate(&SimConfig::for_protocol(2, params, ModSet::new()))
        .expect("valid config");
    let err = (gtpn.speedup - sim.speedup).abs() / sim.speedup;
    assert!(
        err < 0.05,
        "GTPN {:.3} vs DES {:.3} ({:.1}%)",
        gtpn.speedup,
        sim.speedup,
        err * 100.0
    );
}

#[test]
fn stress_test_section_4_3() {
    // "The speedup estimates of the MVA model agreed, within 5% relative
    // error, with the speedup estimates in the GTPN" under the
    // interference-maximizing workload. The simulator referees here; the
    // tolerance is widened to 10% because our DES resolves cache
    // interference more literally than either analytic model.
    let params = WorkloadParams::stress();
    for n in [2usize, 6, 10, 20] {
        let mva = mva_speedup(&params, ModSet::new(), n);
        let sim = simulate(&SimConfig::for_protocol(n, params, ModSet::new()))
            .expect("valid config")
            .speedup;
        let err = (mva - sim).abs() / sim;
        assert!(
            err < 0.10,
            "stress N={n}: MVA {mva:.3} vs DES {sim:.3} ({:.1}%)",
            err * 100.0
        );
    }
}

#[test]
fn simulator_bus_waits_track_mva() {
    // Beyond speedup: the component the MVA computes with Eqs. 5-10.
    let params = WorkloadParams::appendix_a(SharingLevel::Five);
    let model = MvaModel::for_protocol(&params, ModSet::new()).expect("valid");
    for n in [4usize, 8] {
        let mva = model.solve(n, &SolverOptions::default()).expect("converges");
        let sim =
            simulate(&SimConfig::for_protocol(n, params, ModSet::new())).expect("valid");
        let err = (mva.w_bus - sim.w_bus).abs() / sim.w_bus.max(0.1);
        assert!(
            err < 0.25,
            "N={n}: MVA w_bus {:.3} vs DES {:.3}",
            mva.w_bus,
            sim.w_bus
        );
    }
}
