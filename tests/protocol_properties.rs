//! Property-based verification of the protocol state machines: random
//! event sequences on an N-cache system must preserve the coherence
//! invariants for every modification combination.
#![allow(clippy::needless_range_loop)] // cache ids index the state vector

use proptest::prelude::*;
use snoop::protocol::invariants::is_coherent;
use snoop::protocol::{BusOp, CacheState, MissContext, ModSet, Protocol};

/// A scripted event: processor `actor` reads or writes the (single
/// modeled) block, or purges it.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(usize),
    Write(usize),
    Purge(usize),
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    (0..n, 0..3u8).prop_map(|(actor, kind)| match kind {
        0 => Op::Read(actor),
        1 => Op::Write(actor),
        _ => Op::Purge(actor),
    })
}

/// Applies one op to the system state, mirroring what the bus serializes.
fn apply(protocol: &Protocol, states: &mut [CacheState], op: Op) {
    match op {
        Op::Purge(actor) => states[actor] = CacheState::Invalid,
        Op::Read(actor) | Op::Write(actor) => {
            let shared =
                states.iter().enumerate().any(|(q, s)| q != actor && s.is_valid());
            let ctx = MissContext { shared_line: shared };
            let is_write = matches!(op, Op::Write(_));
            let t = if is_write {
                protocol.processor_write(states[actor], ctx)
            } else {
                protocol.processor_read(states[actor], ctx)
            };
            if let Some(bus_op) = t.bus_op {
                for q in 0..states.len() {
                    if q != actor {
                        states[q] = protocol.snoop(states[q], bus_op).next_state;
                    }
                }
                if !t.hit && is_write && protocol.write_miss_broadcasts(ctx) {
                    for q in 0..states.len() {
                        if q != actor {
                            states[q] =
                                protocol.snoop(states[q], BusOp::WriteWord).next_state;
                        }
                    }
                }
            }
            states[actor] = t.next_state;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Coherence invariants hold after any event sequence, for every
    /// modification subset and 2-5 caches.
    #[test]
    fn random_sequences_stay_coherent(
        mods_bits in 0u8..16,
        n in 2usize..=5,
        ops in prop::collection::vec(op_strategy(5), 1..60),
    ) {
        let mods = ModSet::power_set()[mods_bits as usize];
        let protocol = Protocol::new(mods);
        let mut states = vec![CacheState::Invalid; n];
        for op in ops {
            // Clamp the scripted actor into range.
            let op = match op {
                Op::Read(a) => Op::Read(a % n),
                Op::Write(a) => Op::Write(a % n),
                Op::Purge(a) => Op::Purge(a % n),
            };
            apply(&protocol, &mut states, op);
            prop_assert!(
                is_coherent(&states, mods),
                "{mods} violated after {op:?}: {states:?}"
            );
        }
    }

    /// A writer always ends up with a writable (exclusive or owned) copy.
    #[test]
    fn writes_confer_write_permission(
        mods_bits in 0u8..16,
        pre_ops in prop::collection::vec(op_strategy(3), 0..30),
        writer in 0usize..3,
    ) {
        let mods = ModSet::power_set()[mods_bits as usize];
        let protocol = Protocol::new(mods);
        let mut states = vec![CacheState::Invalid; 3];
        for op in pre_ops {
            apply(&protocol, &mut states, op);
        }
        apply(&protocol, &mut states, Op::Write(writer));
        let s = states[writer];
        prop_assert!(s.is_valid(), "{mods}: writer lost its block: {states:?}");
        // After a write the writer's copy is exclusive, owned (dirty), or —
        // under distributed write — a clean copy kept consistent by
        // broadcasts.
        let update = mods.contains(snoop::protocol::Modification::DistributedWrite);
        prop_assert!(
            s.is_exclusive() || s.is_dirty() || update,
            "{mods}: write left non-writable state {s}"
        );
    }

    /// Exactly-one-writable: after a write, no *other* cache may hold a
    /// dirty or exclusive copy.
    #[test]
    fn no_stale_writable_copies(
        mods_bits in 0u8..16,
        pre_ops in prop::collection::vec(op_strategy(4), 0..40),
        writer in 0usize..4,
    ) {
        let mods = ModSet::power_set()[mods_bits as usize];
        let protocol = Protocol::new(mods);
        let mut states = vec![CacheState::Invalid; 4];
        for op in pre_ops {
            apply(&protocol, &mut states, op);
        }
        apply(&protocol, &mut states, Op::Write(writer));
        for (q, s) in states.iter().enumerate() {
            if q != writer {
                prop_assert!(
                    !s.is_dirty() && !s.is_exclusive(),
                    "{mods}: cache {q} kept writable state {s} after cache {writer} wrote"
                );
            }
        }
    }

    /// Without modification 4, a write leaves every other copy invalid
    /// (invalidation protocols really invalidate).
    #[test]
    fn invalidation_protocols_invalidate(
        mods_bits in 0u8..8, // subsets of mods 1-3 only
        pre_ops in prop::collection::vec(op_strategy(3), 0..30),
        writer in 0usize..3,
    ) {
        let mods = ModSet::power_set()[mods_bits as usize];
        prop_assume!(!mods.contains(snoop::protocol::Modification::DistributedWrite));
        let protocol = Protocol::new(mods);
        let mut states = vec![CacheState::Invalid; 3];
        for op in pre_ops {
            apply(&protocol, &mut states, op);
        }
        apply(&protocol, &mut states, Op::Write(writer));
        for (q, s) in states.iter().enumerate() {
            if q != writer {
                prop_assert!(
                    !s.is_valid(),
                    "{mods}: cache {q} kept a copy ({s}) through a write"
                );
            }
        }
    }
}
