//! Closing the paper's loop: measure workload parameters from a
//! trace-driven simulation, feed them into the MVA model, and check the
//! analytic prediction against the very system they were measured from.
//!
//! This is the deployment story of the paper's conclusion ("all that is
//! needed are workload measurement studies to aid in the assignment of
//! parameter values") executed end to end.

use snoop::mva::{MvaModel, SolverOptions};
use snoop::protocol::ModSet;
use snoop::sim::trace_mode::{simulate_trace_source_measuring, TraceSimConfig};
use snoop::sim::trace_mode::TraceSimMeasures;
use snoop::workload::params::WorkloadParams;

/// Measures through the `TraceSource` path (the synthetic generator is
/// one source among several since the redesign).
fn simulate_trace_measuring(
    c: &TraceSimConfig,
) -> Result<(TraceSimMeasures, WorkloadParams), snoop::sim::SimError> {
    simulate_trace_source_measuring(&c.drive_config(), c.generator()?)
}

fn config(n: usize, mods: &[u8]) -> TraceSimConfig {
    let mut c = TraceSimConfig::new(n, ModSet::from_numbers(mods).unwrap());
    c.warmup_references = 4_000;
    c.measured_references = 25_000;
    c
}

#[test]
fn measured_parameters_are_plausible() {
    let (_, params) = simulate_trace_measuring(&config(4, &[])).unwrap();
    params.validate().unwrap();
    // The trace generator targets the Appendix-A 5% mix; the measured
    // stream probabilities and read fractions must land near it.
    assert!((params.p_private - 0.95).abs() < 0.01, "p_private {}", params.p_private);
    assert!((params.r_private - 0.7).abs() < 0.02, "r_private {}", params.r_private);
    assert!((params.r_sw - 0.5).abs() < 0.05, "r_sw {}", params.r_sw);
    // Hit rates are emergent (cache geometry + locality), not copies of
    // the input; they should be high for private, lower for sw.
    assert!(params.h_private > 0.85, "h_private {}", params.h_private);
    assert!(params.h_sw < params.h_private, "h_sw {}", params.h_sw);
    // Coherence facts only a multi-cache system produces.
    assert!(params.csupply_sw > 0.0, "csupply_sw {}", params.csupply_sw);
}

#[test]
fn mva_on_measured_parameters_predicts_the_trace_simulation() {
    // Measure on the target protocol, predict with the MVA, compare
    // against the simulator's own speedup. The workload model is a lossy
    // summary (no spatial locality, stream independence), so the bar is
    // 15% — far tighter than a factor-of-two sanity bound and tight
    // enough to make the measured parameters useful for capacity planning.
    for (mods, n) in [(&[][..], 4), (&[], 8), (&[1], 8)] {
        let (sim, params) = simulate_trace_measuring(&config(n, mods)).unwrap();
        let model =
            MvaModel::for_protocol(&params, ModSet::from_numbers(mods).unwrap()).unwrap();
        let mva = model.solve(n, &SolverOptions::default()).unwrap();
        let err = (mva.speedup - sim.speedup).abs() / sim.speedup;
        assert!(
            err < 0.15,
            "{mods:?} N={n}: MVA-on-measured {:.3} vs trace sim {:.3} ({:.1}%)",
            mva.speedup,
            sim.speedup,
            err * 100.0
        );
    }
}

#[test]
fn measured_parameters_shift_with_the_protocol() {
    // Under an update protocol (mods 1+4) the sw hit rate climbs and
    // fewer blocks are exclusive at write time — the measured parameters
    // must reflect the protocol, which is exactly why Appendix A adjusts
    // h_sw for modification 4.
    let (_, invalidating) = simulate_trace_measuring(&config(4, &[1])).unwrap();
    let (_, updating) = simulate_trace_measuring(&config(4, &[1, 4])).unwrap();
    assert!(
        updating.h_sw > invalidating.h_sw,
        "update h_sw {} vs invalidate {}",
        updating.h_sw,
        invalidating.h_sw
    );
}

#[test]
fn larger_caches_measure_higher_hit_rates() {
    let small = {
        let mut c = config(2, &[]);
        c.sets = 16;
        c.ways = 1;
        simulate_trace_measuring(&c).unwrap().1
    };
    let large = simulate_trace_measuring(&config(2, &[])).unwrap().1;
    assert!(
        large.h_private > small.h_private,
        "large {} vs small {}",
        large.h_private,
        small.h_private
    );
}
