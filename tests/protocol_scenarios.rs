//! Golden protocol scenarios: the walk-through behaviours that define each
//! protocol in its original paper, written in the scenario DSL and
//! executed against the state machines. Each test narrates a Section-2.2
//! sentence of the paper.

use snoop::protocol::scenario::Scenario;
use snoop::protocol::{BusOp, CacheState, ModSet, NamedProtocol};

fn mods(numbers: &[u8]) -> ModSet {
    ModSet::from_numbers(numbers).expect("valid")
}

// ---------------------------------------------------------------- Write-Once

#[test]
fn write_once_first_write_is_written_through_second_is_local() {
    // "the *first* time a processor writes a word to a non-exclusive block
    // in its cache, the word is written through to main memory… Writes to
    // a block in state exclusive are written only locally."
    Scenario::new("wo-two-writes", 2, ModSet::new())
        .read(0)
        .expect_bus(Some(BusOp::Read))
        .expect_state(0, CacheState::SharedClean)
        .write(0)
        .expect_bus(Some(BusOp::WriteWord))
        .expect_state(0, CacheState::ExclusiveClean)
        .write(0)
        .expect_bus(None)
        .expect_state(0, CacheState::ExclusiveDirty)
        .expect_coherent()
        .run()
        .unwrap();
}

#[test]
fn write_once_write_through_invalidates_other_copies() {
    // "When the word is broadcast on the bus, any cache containing the
    // block invalidates its copy."
    Scenario::new("wo-invalidate-on-write-through", 3, ModSet::new())
        .read(0)
        .read(1)
        .read(2)
        .expect_coherent()
        .write(0)
        .expect_bus(Some(BusOp::WriteWord))
        .expect_state(1, CacheState::Invalid)
        .expect_state(2, CacheState::Invalid)
        .expect_state(0, CacheState::ExclusiveClean)
        .expect_coherent()
        .run()
        .unwrap();
}

#[test]
fn write_once_dirty_block_serves_a_read_and_cleans() {
    // "a cache containing the block in state wback interrupts the bus
    // transaction and writes the block to main memory… The state of the
    // block changes to no-wback if the bus request is of type read."
    Scenario::new("wo-dirty-read", 2, ModSet::new())
        .read(0)
        .write(0)
        .write(0)
        .expect_state(0, CacheState::ExclusiveDirty)
        .read(1)
        .expect_bus(Some(BusOp::Read))
        .expect_state(0, CacheState::SharedClean)
        .expect_state(1, CacheState::SharedClean)
        .expect_coherent()
        .run()
        .unwrap();
}

#[test]
fn write_once_read_mod_takes_everything() {
    // "A bus read-mod request invalidates all other copies of the block,
    // and loads the block in state exclusive and wback."
    Scenario::new("wo-write-miss", 3, ModSet::new())
        .read(0)
        .read(1)
        .write(2)
        .expect_bus(Some(BusOp::ReadMod))
        .expect_state(0, CacheState::Invalid)
        .expect_state(1, CacheState::Invalid)
        .expect_state(2, CacheState::ExclusiveDirty)
        .expect_coherent()
        .run()
        .unwrap();
}

// ------------------------------------------------------------ Modification 1

#[test]
fn mod1_unshared_read_loads_exclusive_and_writes_free() {
    // "If this line is not raised, the cache block can be loaded in state
    // exclusive… Writes to this block by the requesting cache will not
    // require bus operations."
    Scenario::new("mod1-exclusive-load", 2, mods(&[1]))
        .read(0)
        .expect_bus(Some(BusOp::Read))
        .expect_state(0, CacheState::ExclusiveClean)
        .write(0)
        .expect_bus(None)
        .write(0)
        .expect_bus(None)
        .expect_state(0, CacheState::ExclusiveDirty)
        .run()
        .unwrap();
}

#[test]
fn mod1_shared_read_still_loads_shared() {
    Scenario::new("mod1-shared-load", 2, mods(&[1]))
        .read(0)
        .read(1) // cache 0 raises the shared line
        .expect_state(1, CacheState::SharedClean)
        .expect_coherent()
        .run()
        .unwrap();
}

// ------------------------------------------------------------ Modification 2

#[test]
fn mod2_read_transfers_ownership_not_memory() {
    // "a cache that has a requested block in state wback supplies the copy
    // directly… the supplying cache sets the state to non-exclusive and
    // wback, and the requesting cache sets the state to non-exclusive and
    // no-wback."
    Scenario::new("mod2-ownership", 2, mods(&[2]))
        .read(0)
        .write(0)
        .write(0)
        .expect_state(0, CacheState::ExclusiveDirty)
        .read(1)
        .expect_bus(Some(BusOp::Read))
        .expect_state(0, CacheState::SharedDirty)
        .expect_state(1, CacheState::SharedClean)
        .expect_coherent()
        .run()
        .unwrap();
}

// ------------------------------------------------------------ Modification 3

#[test]
fn mod3_first_write_invalidates_without_memory_write() {
    // "a bus invalidate operation is performed, instead of the write-word
    // operation, on the first write to a non-exclusive data block."
    Scenario::new("mod3-invalidate", 2, mods(&[3]))
        .read(0)
        .read(1)
        .write(0)
        .expect_bus(Some(BusOp::Invalidate))
        .expect_state(0, CacheState::ExclusiveDirty)
        .expect_state(1, CacheState::Invalid)
        .expect_coherent()
        .run()
        .unwrap();
}

// ------------------------------------------------------------ Modification 4

#[test]
fn mod4_copies_survive_writes() {
    // "all writes to a block in state non-exclusive are broadcast on the
    // bus. All caches update their copies."
    Scenario::new("mod4-update", 3, mods(&[1, 4]))
        .read(0)
        .read(1)
        .read(2)
        .write(0)
        .expect_bus(Some(BusOp::WriteWord))
        .expect_state(1, CacheState::SharedClean)
        .expect_state(2, CacheState::SharedClean)
        .expect_state(0, CacheState::SharedClean)
        .write(1)
        .expect_bus(Some(BusOp::WriteWord))
        .expect_state(0, CacheState::SharedClean)
        .expect_coherent()
        .run()
        .unwrap();
}

#[test]
fn mods34_broadcast_carries_ownership() {
    // "If modifications 3 and 4 are implemented together… some cache has
    // to take responsibility for writing back the block… the cache
    // performing the broadcast takes this responsibility."
    Scenario::new("mod34-ownership", 2, mods(&[1, 3, 4]))
        .read(0)
        .read(1)
        .write(0)
        .expect_bus(Some(BusOp::WriteWord))
        .expect_state(0, CacheState::SharedDirty)
        .expect_state(1, CacheState::SharedClean)
        .write(1)
        .expect_bus(Some(BusOp::WriteWord))
        .expect_state(1, CacheState::SharedDirty)
        .expect_state(0, CacheState::SharedClean)
        .expect_coherent()
        .run()
        .unwrap();
}

// ------------------------------------------------------- named protocols

#[test]
fn illinois_silent_upgrade_from_exclusive_clean() {
    // The Illinois protocol's signature: exclusive-clean blocks upgrade to
    // modified without any bus traffic.
    Scenario::new("illinois-upgrade", 2, NamedProtocol::Illinois.modifications())
        .read(0)
        .expect_state(0, CacheState::ExclusiveClean)
        .write(0)
        .expect_bus(None)
        .expect_state(0, CacheState::ExclusiveDirty)
        .run()
        .unwrap();
}

#[test]
fn berkeley_owner_responds_without_memory() {
    // Berkeley = mods 2+3: dirty owner supplies directly; first writes
    // invalidate.
    Scenario::new("berkeley", 3, NamedProtocol::Berkeley.modifications())
        .read(0)
        .read(1)
        .write(0)
        .expect_bus(Some(BusOp::Invalidate))
        .read(1)
        .expect_state(0, CacheState::SharedDirty) // owner
        .expect_state(1, CacheState::SharedClean)
        .write(1)
        .expect_bus(Some(BusOp::Invalidate))
        .expect_state(0, CacheState::Invalid)
        .expect_state(1, CacheState::ExclusiveDirty)
        .expect_coherent()
        .run()
        .unwrap();
}

#[test]
fn write_through_never_holds_dirty_data() {
    // Modification 4 alone "reduces the Write-Once protocol to a
    // write-through protocol": shared blocks are never dirty.
    Scenario::new("write-through", 2, NamedProtocol::WriteThrough.modifications())
        .read(0)
        .read(1)
        .write(0)
        .expect_state(0, CacheState::SharedClean)
        .write(1)
        .expect_state(1, CacheState::SharedClean)
        .write(0)
        .expect_state(0, CacheState::SharedClean)
        .expect_coherent()
        .run()
        .unwrap();
}

#[test]
fn migratory_data_under_berkeley() {
    // Migratory sharing (the pattern that motivated ownership protocols):
    // each processor reads then writes, in turn. Under Berkeley the block
    // hops from owner to owner without ever touching memory.
    Scenario::new("migratory", 3, NamedProtocol::Berkeley.modifications())
        .read(0)
        .write(0)
        .expect_state(0, CacheState::ExclusiveDirty)
        .read(1) // owner 0 supplies, keeps ownership
        .expect_state(0, CacheState::SharedDirty)
        .write(1) // 1 invalidates 0 and becomes the owner
        .expect_bus(Some(BusOp::Invalidate))
        .expect_state(0, CacheState::Invalid)
        .expect_state(1, CacheState::ExclusiveDirty)
        .read(2)
        .write(2)
        .expect_state(1, CacheState::Invalid)
        .expect_state(2, CacheState::ExclusiveDirty)
        .expect_coherent()
        .run()
        .unwrap();
}

#[test]
fn producer_consumer_under_dragon() {
    // Producer-consumer favors update protocols: the producer's writes
    // refresh the consumers' copies in place, so consumers never miss.
    Scenario::new("producer-consumer", 3, NamedProtocol::Dragon.modifications())
        .read(1) // consumers subscribe
        .read(2)
        .read(0) // producer maps the buffer
        .write(0)
        .expect_bus(Some(BusOp::WriteWord))
        .expect_state(1, CacheState::SharedClean) // still valid!
        .expect_state(2, CacheState::SharedClean)
        .read(1) // consumer hit, no bus op
        .expect_bus(None)
        .write(0)
        .read(2)
        .expect_bus(None)
        .expect_coherent()
        .run()
        .unwrap();

    // The same pattern under an invalidation protocol forces the consumers
    // to re-fetch after every production step.
    Scenario::new("producer-consumer-invalidating", 3, NamedProtocol::Illinois.modifications())
        .read(1)
        .read(2)
        .read(0)
        .write(0)
        .expect_state(1, CacheState::Invalid)
        .expect_state(2, CacheState::Invalid)
        .read(1)
        .expect_bus(Some(BusOp::Read)) // miss: had been invalidated
        .expect_coherent()
        .run()
        .unwrap();
}

#[test]
fn ping_pong_writes_stay_coherent_in_every_protocol() {
    // The classic false-sharing ping-pong: alternating writers.
    for protocol in NamedProtocol::ALL {
        let mut scenario =
            Scenario::new("ping-pong", 2, protocol.modifications()).read(0).read(1);
        for _ in 0..4 {
            scenario = scenario.write(0).expect_coherent().write(1).expect_coherent();
        }
        scenario.run().unwrap_or_else(|e| panic!("{protocol}: {e}"));
    }
}
