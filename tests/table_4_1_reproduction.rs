//! End-to-end reproduction check of Table 4.1: this implementation's MVA
//! speedups against the paper's published MVA and GTPN values.
//!
//! The tolerance is 5%: the paper's own MVA-vs-GTPN deviations reach
//! 4.25%, and our reconstruction of the \[VeHo86\]-inherited model inputs
//! (the paper does not restate them) carries a comparable uncertainty.
//! EXPERIMENTS.md records the per-cell errors.

use snoop::mva::paper::{table_4_1, TABLE_N};
use snoop::mva::{MvaModel, SolverOptions};
use snoop::workload::params::WorkloadParams;

fn our_speedup(row: &snoop::mva::paper::PublishedRow, n: usize) -> f64 {
    MvaModel::for_protocol(&WorkloadParams::appendix_a(row.sharing), row.mods())
        .expect("valid parameters")
        .solve(n, &SolverOptions::default())
        .expect("converges")
        .speedup
}

#[test]
fn all_panels_within_five_percent_of_published_mva() {
    let mut worst: f64 = 0.0;
    let mut worst_case = String::new();
    for row in table_4_1() {
        for (i, &n) in TABLE_N.iter().enumerate() {
            let ours = our_speedup(&row, n);
            let err = (ours - row.mva[i]).abs() / row.mva[i];
            if err > worst {
                worst = err;
                worst_case = format!("panel {} {} N={n}", row.panel, row.sharing);
            }
            assert!(
                err < 0.05,
                "panel {} {} N={n}: ours {ours:.3} vs published {:.3} ({:.1}%)",
                row.panel,
                row.sharing,
                row.mva[i],
                err * 100.0
            );
        }
    }
    println!("worst cell: {worst_case} at {:.2}%", worst * 100.0);
}

#[test]
fn all_panels_within_six_percent_of_published_gtpn() {
    // The GTPN columns are the *detailed* model; our MVA should track them
    // about as well as the paper's MVA did (≤ 4.25%), plus reconstruction
    // slack.
    for row in table_4_1() {
        for (i, gtpn) in row.gtpn.iter().enumerate() {
            let gtpn = gtpn.expect("published for N ≤ 10");
            let ours = our_speedup(&row, TABLE_N[i]);
            let err = (ours - gtpn).abs() / gtpn;
            assert!(
                err < 0.06,
                "panel {} {} N={}: ours {ours:.3} vs GTPN {gtpn:.3} ({:.1}%)",
                row.panel,
                row.sharing,
                TABLE_N[i],
                err * 100.0
            );
        }
    }
}

#[test]
fn qualitative_shape_of_table_4_1() {
    // Who wins, by roughly what factor, where the knees fall.
    let rows = table_4_1();
    let speedup = |panel: char, sharing, n| {
        let row = rows
            .iter()
            .find(|r| r.panel == panel && r.sharing == sharing)
            .expect("row exists");
        our_speedup(row, n)
    };
    use snoop::workload::params::SharingLevel::*;

    // Panel ordering at N = 10: c > b > a for every sharing level.
    for sharing in [One, Five, Twenty] {
        let a = speedup('a', sharing, 10);
        let b = speedup('b', sharing, 10);
        let c = speedup('c', sharing, 10);
        assert!(c > b && b > a, "{sharing}: c={c:.2} b={b:.2} a={a:.2}");
    }

    // Modification 1's gain over Write-Once at N = 10 is ~15-25%
    // (published: 5.49 → 6.59 at 1%).
    let gain = speedup('b', One, 10) / speedup('a', One, 10);
    assert!(gain > 1.1 && gain < 1.35, "gain {gain:.3}");

    // Sharing hurts panels a/b but barely matters for panel c.
    let spread_a = speedup('a', One, 20) - speedup('a', Twenty, 20);
    let spread_c = (speedup('c', One, 20) - speedup('c', Twenty, 20)).abs();
    assert!(spread_a > 0.5, "panel a spread {spread_a:.3}");
    assert!(spread_c < 0.4, "panel c spread {spread_c:.3}");

    // Performance is flat beyond 20 processors (the N = 100 column's
    // purpose).
    for (panel, sharing) in [('a', Five), ('b', Five), ('c', Twenty)] {
        let s20 = speedup(panel, sharing, 20);
        let s100 = speedup(panel, sharing, 100);
        assert!(
            (s100 - s20).abs() / s20 < 0.05,
            "panel {panel} {sharing}: {s20:.3} vs {s100:.3}"
        );
    }
}

#[test]
fn bus_utilization_cross_check_section_4_2() {
    // "in the 6-processor case, the GTPN and MVA estimates of bus
    // utilization are approximately 81% and 77%".
    let s = MvaModel::for_protocol(
        &WorkloadParams::appendix_a(snoop::workload::params::SharingLevel::Five),
        snoop::protocol::ModSet::new(),
    )
    .expect("valid")
    .solve(6, &SolverOptions::default())
    .expect("converges");
    assert!(
        (s.bus_utilization - 0.77).abs() < 0.05,
        "U_bus = {:.3}, paper MVA ≈ 0.77",
        s.bus_utilization
    );
}
