//! The `snoop` facade crate exposes the whole suite through stable paths;
//! this test is the public-API smoke check a downstream user's first
//! program would be.

use snoop::gtpn::net::{Firing, NetBuilder};
use snoop::mva::{MvaModel, SolverOptions};
use snoop::numeric::stats::RunningStats;
use snoop::protocol::{CacheState, ModSet, NamedProtocol, Protocol};
use snoop::sim::{simulate, SimConfig};
use snoop::workload::params::{SharingLevel, WorkloadParams};

#[test]
fn one_liner_per_subsystem() {
    // protocol
    let protocol = Protocol::new(NamedProtocol::Illinois.modifications());
    assert!(protocol.modifications().contains(snoop::protocol::Modification::ExclusiveLoad));
    assert_eq!(
        protocol
            .processor_read(CacheState::Invalid, snoop::protocol::MissContext::unshared())
            .next_state,
        CacheState::ExclusiveClean
    );

    // workload + mva
    let params = WorkloadParams::appendix_a(SharingLevel::Five);
    let speedup = MvaModel::for_protocol(&params, ModSet::new())
        .expect("valid")
        .solve(10, &SolverOptions::default())
        .expect("converges")
        .speedup;
    assert!(speedup > 5.0 && speedup < 5.6);

    // sim
    let mut config = SimConfig::for_protocol(2, params, ModSet::new());
    config.warmup_references = 100;
    config.measured_references = 1_000;
    let sim = simulate(&config).expect("valid");
    assert!(sim.speedup > 1.0);

    // gtpn
    let mut b = NetBuilder::new();
    let a = b.place("a", 1);
    let z = b.place("z", 0);
    b.timed("go", Firing::Deterministic(2), &[(a, 1)], &[(z, 1)]);
    b.timed("back", Firing::Deterministic(1), &[(z, 1)], &[(a, 1)]);
    let sol = snoop::gtpn::solve::solve_net(&b.build().expect("valid")).expect("solves");
    assert_eq!(sol.state_count(), 3);

    // numeric
    let stats: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
    assert_eq!(stats.mean(), 2.0);
}

#[test]
fn protocol_names_parse_to_modsets() {
    for p in NamedProtocol::ALL {
        let via_name: ModSet = p.to_string().parse().expect("parses");
        assert_eq!(via_name, p.modifications(), "{p}");
    }
}

#[test]
fn errors_are_std_errors() {
    fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<snoop::mva::MvaError>();
    assert_error::<snoop::protocol::ProtocolError>();
    assert_error::<snoop::workload::WorkloadError>();
    assert_error::<snoop::gtpn::GtpnError>();
    assert_error::<snoop::sim::SimError>();
    assert_error::<snoop::numeric::NumericError>();
}

#[test]
fn results_flow_through_question_mark() -> Result<(), Box<dyn std::error::Error>> {
    let params = WorkloadParams::builder().h_sw(0.8).build()?;
    let model = MvaModel::for_protocol(&params, "dragon".parse::<ModSet>()?)?;
    let s = model.solve(4, &SolverOptions::default())?;
    assert!(s.speedup > 0.0);
    Ok(())
}
