//! Hierarchical (two-level bus) extension of the mean-value model.
//!
//! The paper's closing section points at "larger and more complex
//! cache-coherent multiprocessors [Wils87, GoWo87]" — Wilson's
//! hierarchical cache/bus architecture clusters processors on local buses
//! and joins the clusters to main memory through a global bus. This module
//! extends the customized-MVA method to that shape:
//!
//! ```text
//!  cluster 1: P P … P ──local bus──┐
//!  cluster 2: P P … P ──local bus──┼──global bus── memory modules
//!  …                               │
//!  cluster C: P P … P ──local bus──┘
//! ```
//!
//! Traffic model (documented assumptions, same spirit as DESIGN.md §6):
//!
//! * every bus operation occupies the issuing cluster's **local bus** for
//!   its full duration (snoops are cluster-local);
//! * cache-supplied remote reads are satisfied **within the cluster** with
//!   probability `cluster_locality` (the chance the supplier shares the
//!   requester's cluster); memory-bound misses hit the cluster's
//!   **second-level cache** first and are satisfied there with probability
//!   `cluster_cache_hit` (Wilson's clusters cache the memory image); the
//!   remainder, plus all memory-updating broadcasts, additionally occupy
//!   the **global bus** and the memory modules;
//! * waiting times compose: a global operation waits for its local bus,
//!   then for the global bus (the local bus is held during the global
//!   transaction, as in Wilson's design).
//!
//! With one cluster and `cluster_locality = 1` the global bus carries only
//! memory traffic and the model reduces to the flat model with the bus
//! demand split across two centers; the tests validate limiting behaviour
//! rather than exact reduction.

use snoop_numeric::fixed_point::{FixedPoint, Options};
use snoop_workload::derived::ModelInputs;

use crate::equations as eq;
use crate::MvaError;

/// Configuration of the hierarchical machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Processors per cluster.
    pub per_cluster: usize,
    /// Probability that a cache-supplied block comes from the requester's
    /// own cluster (1 = perfectly clustered sharing, 1/C-ish = uniform).
    pub cluster_locality: f64,
    /// Probability that a memory-bound miss hits the cluster's
    /// second-level cache (Wilson's cluster cache), never leaving the
    /// local bus.
    pub cluster_cache_hit: f64,
}

impl HierarchicalConfig {
    /// Total processors.
    pub fn total(&self) -> usize {
        self.clusters * self.per_cluster
    }
}

/// Solution of the hierarchical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalSolution {
    /// Mean time between requests.
    pub r: f64,
    /// Total speedup `N·(τ + T_supply)/R`.
    pub speedup: f64,
    /// Local-bus utilization (per cluster; clusters are symmetric).
    pub local_bus_utilization: f64,
    /// Global-bus utilization.
    pub global_bus_utilization: f64,
    /// Memory-module utilization.
    pub memory_utilization: f64,
    /// Mean local-bus wait.
    pub w_local: f64,
    /// Mean global-bus wait.
    pub w_global: f64,
    /// Iterations to convergence.
    pub iterations: usize,
}

/// The hierarchical mean-value model.
///
/// # Example
///
/// ```
/// use snoop_mva::hierarchical::{HierarchicalConfig, HierarchicalModel};
/// use snoop_protocol::ModSet;
/// use snoop_workload::derived::ModelInputs;
/// use snoop_workload::params::{SharingLevel, WorkloadParams};
/// use snoop_workload::timing::TimingModel;
///
/// # fn main() -> Result<(), snoop_mva::MvaError> {
/// let inputs = ModelInputs::derive_adjusted(
///     &WorkloadParams::appendix_a(SharingLevel::Five),
///     ModSet::from_numbers(&[1]).expect("valid"),
///     &TimingModel::default(),
/// )?;
/// let model = HierarchicalModel::new(
///     inputs,
///     HierarchicalConfig {
///         clusters: 4,
///         per_cluster: 8,
///         cluster_locality: 0.8,
///         cluster_cache_hit: 0.7,
///     },
/// )?;
/// let s = model.solve()?;
/// // 32 processors: beyond a single bus's ceiling, below linear.
/// assert!(s.speedup > 7.0 && s.speedup < 32.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalModel {
    inputs: ModelInputs,
    config: HierarchicalConfig,
}

impl HierarchicalModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`MvaError::InvalidSystemSize`] for an empty machine and a
    /// workload error for a locality outside `[0, 1]`.
    pub fn new(inputs: ModelInputs, config: HierarchicalConfig) -> Result<Self, MvaError> {
        if config.total() == 0 {
            return Err(MvaError::InvalidSystemSize(0));
        }
        if !(0.0..=1.0).contains(&config.cluster_locality) {
            return Err(MvaError::Workload(snoop_workload::WorkloadError::InvalidParameter {
                name: "cluster_locality",
                value: config.cluster_locality,
            }));
        }
        if !(0.0..=1.0).contains(&config.cluster_cache_hit) {
            return Err(MvaError::Workload(snoop_workload::WorkloadError::InvalidParameter {
                name: "cluster_cache_hit",
                value: config.cluster_cache_hit,
            }));
        }
        Ok(HierarchicalModel { inputs, config })
    }

    /// Per-request local and global bus demands (cycles), given the
    /// current memory wait.
    fn demands(&self, w_mem: f64) -> Demands {
        let i = &self.inputs;
        let w_mem_eff = eq::effective_w_mem(i, w_mem);

        // Remote-read split: the cache-supplied fraction of t_read stays
        // local with probability cluster_locality.
        let frac_cs = if i.p_rr > 0.0 { i.csupply_weighted_mass / i.p_rr } else { 0.0 };
        let local_supply_frac = frac_cs * self.config.cluster_locality;
        // Memory-bound misses are filtered by the cluster cache.
        let global_frac = (1.0 - local_supply_frac) * (1.0 - self.config.cluster_cache_hit);

        // Broadcasts: memory-updating broadcasts go global; pure
        // invalidations stay local.
        let bc_global = if i.bc_updates_memory { i.p_bc } else { 0.0 };
        let bc_local_only = i.p_bc - bc_global;

        Demands {
            // Everything holds the local bus.
            local: i.p_bc * (i.t_write + w_mem_eff) + i.p_rr * i.t_read,
            // Global-bus occupancy: global broadcasts and the global
            // fraction of remote reads (weighted by the full t_read — the
            // global transaction spans the transfer).
            global: bc_global * (i.t_write + w_mem_eff) + i.p_rr * global_frac * i.t_read,
            bc_local_only,
            global_frac,
        }
    }

    /// Solves the two-level fixed point. State: `[w_local, w_global,
    /// w_mem, R]`.
    ///
    /// # Errors
    ///
    /// Propagates non-convergence.
    pub fn solve(&self) -> Result<HierarchicalSolution, MvaError> {
        let i = self.inputs;
        let n_total = self.config.total();
        let n_cluster = self.config.per_cluster;

        let r0 = i.tau + i.t_supply + i.p_bc * i.t_write + i.p_rr * i.t_read;
        let step = |state: &[f64], out: &mut [f64]| {
            let (w_local, w_global, w_mem, r_prev) =
                (state[0], state[1], state[2], state[3].max(1e-12));
            let d = self.demands(w_mem);
            let w_mem_eff = eq::effective_w_mem(&i, w_mem);

            // Response time: local wait for every bus op; global ops chain
            // the global wait on top.
            let r_bc = i.p_bc * (w_local + w_mem_eff + i.t_write)
                + (i.p_bc - d.bc_local_only) * w_global;
            let r_rr = i.p_rr * (w_local + i.t_read) + i.p_rr * d.global_frac * w_global;
            let r = i.tau + i.t_supply + r_bc + r_rr;

            // Local bus: n_cluster customers, arrival-theorem queue.
            let u_local = (n_cluster as f64 * d.local / r).clamp(0.0, 1.0);
            let q_local = (n_cluster.saturating_sub(1)) as f64 * (r_bc + r_rr) / r_prev;
            let p_busy_local = eq::p_busy(u_local, n_cluster.max(1));
            let t_local = if i.p_bc + i.p_rr > 0.0 {
                d.local / (i.p_bc + i.p_rr)
            } else {
                0.0
            };
            out[0] = eq::bus_waiting_time(q_local, p_busy_local, t_local, t_local / 2.0);

            // Global bus: N customers, but only the global fraction of
            // each cycle queues here.
            let u_global = (n_total as f64 * d.global / r).clamp(0.0, 1.0);
            let global_rate = i.p_bc - d.bc_local_only + i.p_rr * d.global_frac;
            let t_global = if global_rate > 0.0 { d.global / global_rate } else { 0.0 };
            let q_global =
                (n_total.saturating_sub(1)) as f64 * global_rate * (t_global + w_global) / r_prev;
            let p_busy_global = eq::p_busy(u_global, n_total);
            out[1] = eq::bus_waiting_time(q_global, p_busy_global, t_global, t_global / 2.0);

            // Memory, as in the flat model (Eqs. 11–12) over all N.
            let u_mem = eq::memory_utilization(&i, n_total, r);
            out[2] = eq::memory_waiting_time(&i, eq::p_busy(u_mem, n_total));
            out[3] = r;
        };

        let mut solution = None;
        let mut last_err = None;
        for damping in [1.0, 0.5, 0.1] {
            let solver = FixedPoint::new(Options {
                max_iterations: 20_000,
                tolerance: 1e-12,
                damping,
                record_history: false,
                aitken: false,
                deadline: None,
            });
            match solver.solve(vec![0.0, 0.0, 0.0, r0], step) {
                Ok(s) => {
                    solution = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let solution = match (solution, last_err) {
            (Some(s), _) => s,
            (None, Some(e)) => return Err(e.into()),
            // Unreachable: the damping ladder always runs at least once.
            (None, None) => {
                return Err(snoop_numeric::NumericError::InvalidArgument(
                    "hierarchical damping ladder made no attempts".into(),
                )
                .into())
            }
        };

        let (w_local, w_global, w_mem, r) = (
            solution.values[0],
            solution.values[1],
            solution.values[2],
            solution.values[3],
        );
        let d = self.demands(w_mem);
        Ok(HierarchicalSolution {
            r,
            speedup: n_total as f64 * (i.tau + i.t_supply) / r,
            local_bus_utilization: (n_cluster as f64 * d.local / r).clamp(0.0, 1.0),
            global_bus_utilization: (n_total as f64 * d.global / r).clamp(0.0, 1.0),
            memory_utilization: eq::memory_utilization(&i, n_total, r),
            w_local,
            w_global,
            iterations: solution.iterations,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct Demands {
    local: f64,
    global: f64,
    bc_local_only: f64,
    global_frac: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{MvaModel, SolverOptions};
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};
    use snoop_workload::timing::TimingModel;

    fn inputs(level: SharingLevel, mods: &[u8]) -> ModelInputs {
        ModelInputs::derive_adjusted(
            &WorkloadParams::appendix_a(level),
            ModSet::from_numbers(mods).unwrap(),
            &TimingModel::default(),
        )
        .unwrap()
    }

    fn solve(clusters: usize, per_cluster: usize, locality: f64) -> HierarchicalSolution {
        HierarchicalModel::new(
            inputs(SharingLevel::Five, &[1]),
            HierarchicalConfig {
                clusters,
                per_cluster,
                cluster_locality: locality,
                cluster_cache_hit: 0.7,
            },
        )
        .unwrap()
        .solve()
        .unwrap()
    }

    #[test]
    fn clusters_scale_past_the_single_bus_ceiling() {
        // A flat bus saturates around speedup ≈ 6.5 for this workload; a
        // clustered machine keeps scaling until the global bus saturates.
        let flat = MvaModel::new(inputs(SharingLevel::Five, &[1]))
            .solve(32, &SolverOptions::default())
            .unwrap();
        let clustered = solve(4, 8, 0.8);
        assert!(
            clustered.speedup > flat.speedup * 1.3,
            "clustered {} vs flat {}",
            clustered.speedup,
            flat.speedup
        );
    }

    #[test]
    fn more_clusters_eventually_hit_the_global_bus() {
        let mut last = 0.0;
        let mut saturated = false;
        for clusters in [1usize, 2, 4, 8, 16, 32] {
            let s = solve(clusters, 4, 0.8);
            assert!(s.speedup >= last * 0.98, "dropped at {clusters}: {} < {last}", s.speedup);
            last = last.max(s.speedup);
            if s.global_bus_utilization > 0.95 {
                saturated = true;
            }
        }
        assert!(saturated, "global bus never saturated");
    }

    #[test]
    fn locality_relieves_the_global_bus() {
        let tight = solve(8, 4, 1.0);
        let loose = solve(8, 4, 0.0);
        assert!(tight.global_bus_utilization <= loose.global_bus_utilization + 1e-9);
        assert!(tight.speedup >= loose.speedup - 1e-9);
    }

    #[test]
    fn single_processor_has_no_waiting() {
        let s = solve(1, 1, 1.0);
        assert!(s.w_local.abs() < 1e-9);
        assert!(s.w_global.abs() < 1e-9);
        // Speedup just below 1 (miss penalties), like the flat model.
        assert!(s.speedup > 0.8 && s.speedup < 1.0);
    }

    #[test]
    fn utilizations_are_physical() {
        for clusters in [1usize, 4, 16] {
            for per_cluster in [1usize, 4, 8] {
                let s = solve(clusters, per_cluster, 0.5);
                assert!((0.0..=1.0).contains(&s.local_bus_utilization));
                assert!((0.0..=1.0).contains(&s.global_bus_utilization));
                assert!((0.0..=1.0).contains(&s.memory_utilization));
                assert!(s.speedup <= (clusters * per_cluster) as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn mod3_keeps_invalidations_off_the_global_bus() {
        let m3 = HierarchicalModel::new(
            inputs(SharingLevel::Twenty, &[3]),
            HierarchicalConfig {
                clusters: 4,
                per_cluster: 4,
                cluster_locality: 0.5,
                cluster_cache_hit: 0.5,
            },
        )
        .unwrap()
        .solve()
        .unwrap();
        let wo = HierarchicalModel::new(
            inputs(SharingLevel::Twenty, &[]),
            HierarchicalConfig {
                clusters: 4,
                per_cluster: 4,
                cluster_locality: 0.5,
                cluster_cache_hit: 0.5,
            },
        )
        .unwrap()
        .solve()
        .unwrap();
        // Write-through broadcasts hit the global bus; invalidations don't.
        assert!(m3.global_bus_utilization < wo.global_bus_utilization);
    }

    #[test]
    fn invalid_configs_rejected() {
        let i = inputs(SharingLevel::Five, &[]);
        for config in [
            HierarchicalConfig {
                clusters: 0,
                per_cluster: 4,
                cluster_locality: 0.5,
                cluster_cache_hit: 0.5,
            },
            HierarchicalConfig {
                clusters: 2,
                per_cluster: 2,
                cluster_locality: 1.5,
                cluster_cache_hit: 0.5,
            },
            HierarchicalConfig {
                clusters: 2,
                per_cluster: 2,
                cluster_locality: 0.5,
                cluster_cache_hit: -0.1,
            },
        ] {
            assert!(HierarchicalModel::new(i, config).is_err(), "{config:?}");
        }
    }
}
