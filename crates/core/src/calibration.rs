//! Calibration of the reconstructed timing constants.
//!
//! The paper inherits its bus-transaction durations from \[VeHo86\] without
//! restating them, so this reproduction carries three reconstructed
//! constants (DESIGN.md §6): the bus occupancy of a memory-supplied read,
//! of a cache-supplied read, and of an appended block write-back. This
//! module makes the calibration *reproducible*: it grid-searches those
//! constants against the published Table 4.1 MVA rows and reports the
//! best-fitting combination — which is how the shipped
//! [`snoop_workload::timing::TimingModel::default`] was chosen.

use snoop_protocol::ModSet;
use snoop_workload::derived::ModelInputs;
use snoop_workload::params::WorkloadParams;
use snoop_workload::timing::TimingModel;

use crate::paper::{table_4_1, TABLE_N};
use crate::solver::{MvaModel, SolverOptions};
use crate::MvaError;

/// One candidate timing reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingCandidate {
    /// Address cycles prepended to a memory-supplied read
    /// (memory read = address + latency + block).
    pub address_cycles: f64,
    /// Extra cycles a cache-supplied read adds beyond the block transfer
    /// (0 = tag check overlaps the address cycle).
    pub cache_read_extra: f64,
    /// Cycles per appended block write-back, as a multiple of the block
    /// transfer (1.0 = exactly one block time).
    pub writeback_factor: f64,
}

/// Result of evaluating one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateFit {
    /// The candidate.
    pub candidate: TimingCandidate,
    /// Root-mean-square relative error against the published MVA cells.
    pub rms_error: f64,
    /// Worst absolute relative error.
    pub worst_error: f64,
}

/// Evaluates a candidate against all 81 published Table 4.1 MVA cells.
///
/// # Errors
///
/// Propagates model construction/solution failures.
pub fn evaluate(candidate: &TimingCandidate) -> Result<CandidateFit, MvaError> {
    // Express the candidate as a TimingModel. `cache_read_extra` and
    // `writeback_factor` do not map onto TimingModel fields directly, so
    // the inputs are derived manually below.
    let timing = TimingModel { address_cycles: candidate.address_cycles, ..TimingModel::default() };

    let mut sq_sum = 0.0;
    let mut count = 0usize;
    let mut worst: f64 = 0.0;
    for row in table_4_1() {
        let params = WorkloadParams::appendix_a(row.sharing);
        let inputs = adjusted_inputs(&params, row.mods(), &timing, candidate)?;
        let model = MvaModel::new(inputs);
        for (i, &n) in TABLE_N.iter().enumerate() {
            let s = model.solve(n, &SolverOptions::default())?;
            let err = (s.speedup - row.mva[i]) / row.mva[i];
            sq_sum += err * err;
            worst = worst.max(err.abs());
            count += 1;
        }
    }
    Ok(CandidateFit {
        candidate: *candidate,
        rms_error: (sq_sum / count as f64).sqrt(),
        worst_error: worst,
    })
}

/// Derives model inputs under a candidate's non-standard knobs by
/// re-deriving with the stock pipeline and then re-computing `t_read`.
fn adjusted_inputs(
    params: &WorkloadParams,
    mods: ModSet,
    timing: &TimingModel,
    candidate: &TimingCandidate,
) -> Result<ModelInputs, MvaError> {
    let mut inputs = ModelInputs::derive_adjusted(params, mods, timing)?;
    if inputs.p_rr > 0.0 {
        let frac_cs = inputs.csupply_weighted_mass / inputs.p_rr;
        let mem_read = timing.memory_read_cycles();
        let cache_read = timing.block_cycles() + candidate.cache_read_extra;
        let wb = timing.block_cycles() * candidate.writeback_factor;
        inputs.t_read = frac_cs * cache_read
            + (1.0 - frac_cs) * mem_read
            + (inputs.p_csupwb_rr + inputs.p_reqwb_rr) * wb;
    }
    Ok(inputs)
}

/// Grid-searches the candidate space and returns fits sorted best-first.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn grid_search() -> Result<Vec<CandidateFit>, MvaError> {
    let mut fits = Vec::new();
    for address_cycles in [0.0, 0.5, 1.0, 2.0] {
        for cache_read_extra in [0.0, 1.0, 2.0] {
            for writeback_factor in [0.5, 1.0, 1.5, 2.0] {
                let candidate =
                    TimingCandidate { address_cycles, cache_read_extra, writeback_factor };
                fits.push(evaluate(&candidate)?);
            }
        }
    }
    fits.sort_by(|a, b| {
        a.rms_error.partial_cmp(&b.rms_error).unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(fits)
}

/// The shipped reconstruction: 1 address cycle, overlap-free cache supply,
/// one block time per write-back.
pub fn shipped() -> TimingCandidate {
    TimingCandidate { address_cycles: 1.0, cache_read_extra: 0.0, writeback_factor: 1.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_candidate_fits_within_five_percent() {
        let fit = evaluate(&shipped()).unwrap();
        assert!(fit.worst_error < 0.05, "worst {:.3}", fit.worst_error);
        assert!(fit.rms_error < 0.025, "rms {:.4}", fit.rms_error);
    }

    #[test]
    fn shipped_candidate_is_near_the_grid_optimum() {
        let fits = grid_search().unwrap();
        let best = fits.first().unwrap();
        let shipped_fit = evaluate(&shipped()).unwrap();
        // The shipped constants need not be the exact argmin of this coarse
        // grid, but must be within a whisker of it.
        assert!(
            shipped_fit.rms_error <= best.rms_error * 1.25 + 1e-9,
            "shipped rms {:.4} vs best {:.4} ({:?})",
            shipped_fit.rms_error,
            best.rms_error,
            best.candidate
        );
    }

    #[test]
    fn clearly_wrong_timings_fit_worse() {
        let wrong = TimingCandidate {
            address_cycles: 2.0,
            cache_read_extra: 2.0,
            writeback_factor: 2.0,
        };
        let wrong_fit = evaluate(&wrong).unwrap();
        let shipped_fit = evaluate(&shipped()).unwrap();
        assert!(wrong_fit.rms_error > shipped_fit.rms_error);
    }
}
