//! Asymptotic (N → ∞) analysis.
//!
//! One of the paper's selling points (Section 4.1) is that the MVA
//! equations solve for "arbitrarily large systems", revealing asymptotic
//! behaviour the GTPN could not reach — e.g. "a greater potential gain for
//! modification 4 than was evident from previous results for ten
//! processors". This module computes the saturation speedup in closed form:
//! as N grows the bus saturates, pinning the per-processor throughput at
//! `1/D_bus`, where `D_bus` is the mean bus time demanded per memory
//! request. The memory modules impose the analogous bound `1/D_mem`.
//!
//! `D_bus` depends weakly on the saturated memory waiting time `w_mem`,
//! which is itself a one-dimensional fixed point; it contracts rapidly.

use snoop_workload::derived::ModelInputs;

/// The asymptotic performance bounds of a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Asymptote {
    /// Limiting speedup as `N → ∞` (infinite if the workload generates no
    /// bus traffic).
    pub speedup: f64,
    /// Bus demand per memory request at saturation (cycles).
    pub bus_demand: f64,
    /// Memory demand per memory request per module (cycles).
    pub memory_demand: f64,
    /// Which resource saturates first.
    pub bottleneck: Bottleneck,
    /// Saturated memory waiting time.
    pub w_mem: f64,
}

/// The saturating resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The shared bus saturates (the usual case).
    Bus,
    /// A memory module saturates before the bus.
    Memory,
    /// No shared resource saturates (no bus traffic at all).
    None,
}

/// Computes the asymptotic speedup for the given model inputs.
///
/// Derivation: at saturation, `U_bus = 1` in Eq. (7) gives
/// `N/R = 1/D_bus` with `D_bus = p_bc·(w_mem + T_write) + p_rr·t_read`,
/// so `speedup = N·(τ+T_supply)/R = (τ+T_supply)/D_bus`. The saturated
/// `w_mem` solves Eq. (11) with the arrival rate pinned at `N/R = 1/D_bus`
/// (and `p_busy,mem → U_mem` as `N → ∞`).
pub fn asymptotic(inputs: &ModelInputs) -> Asymptote {
    let cycle = inputs.tau + inputs.t_supply;
    let bc_mem = if inputs.bc_updates_memory { inputs.p_bc } else { 0.0 };
    let mem_mass = bc_mem + inputs.p_rr * (inputs.p_csupwb_rr + inputs.p_reqwb_rr);
    let m = f64::from(inputs.memory_modules);

    // Fixed point for the saturated memory wait: w = U_mem(w)·d/2 where
    // U_mem = mem_mass·d/(m·D_bus(w)). Contraction: iterate a few times.
    let bus_demand_at = |w_mem: f64| {
        let w_eff = if inputs.bc_updates_memory { w_mem } else { 0.0 };
        inputs.p_bc * (w_eff + inputs.t_write) + inputs.p_rr * inputs.t_read
    };

    let mut w_mem = 0.0;
    for _ in 0..200 {
        let d_bus = bus_demand_at(w_mem);
        if d_bus <= 0.0 {
            break;
        }
        let u_mem = (mem_mass * inputs.d_mem / (m * d_bus)).clamp(0.0, 1.0);
        let next = u_mem * inputs.d_mem / 2.0;
        if (next - w_mem).abs() < 1e-14 {
            w_mem = next;
            break;
        }
        w_mem = next;
    }

    let bus_demand = bus_demand_at(w_mem);
    let memory_demand = mem_mass * inputs.d_mem / m;

    if bus_demand <= 0.0 && memory_demand <= 0.0 {
        return Asymptote {
            speedup: f64::INFINITY,
            bus_demand: 0.0,
            memory_demand: 0.0,
            bottleneck: Bottleneck::None,
            w_mem: 0.0,
        };
    }

    let (bottleneck, demand) = if memory_demand > bus_demand {
        (Bottleneck::Memory, memory_demand)
    } else {
        (Bottleneck::Bus, bus_demand)
    };

    Asymptote { speedup: cycle / demand, bus_demand, memory_demand, bottleneck, w_mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{MvaModel, SolverOptions};
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};

    fn inputs(level: SharingLevel, mods: &[u8]) -> ModelInputs {
        *MvaModel::for_protocol(
            &WorkloadParams::appendix_a(level),
            ModSet::from_numbers(mods).unwrap(),
        )
        .unwrap()
        .inputs()
    }

    #[test]
    fn asymptote_matches_large_n_solver() {
        for level in SharingLevel::ALL {
            for mods in [&[][..], &[1], &[1, 4]] {
                let i = inputs(level, mods);
                let a = asymptotic(&i);
                let s = MvaModel::new(i).solve(5_000, &SolverOptions::default()).unwrap();
                assert!(
                    (a.speedup - s.speedup).abs() / s.speedup < 0.01,
                    "{level} {mods:?}: asymptote {} vs solver {}",
                    a.speedup,
                    s.speedup
                );
            }
        }
    }

    #[test]
    fn bus_is_the_bottleneck_for_appendix_a() {
        for level in SharingLevel::ALL {
            let a = asymptotic(&inputs(level, &[]));
            assert_eq!(a.bottleneck, Bottleneck::Bus, "{level}");
        }
    }

    #[test]
    fn table_4_1_asymptotic_ordering() {
        // From the N = 100 columns of Table 4.1: mod 1+4 > mod 1 > WO, and
        // within WO less sharing is better.
        let wo_1 = asymptotic(&inputs(SharingLevel::One, &[])).speedup;
        let wo_20 = asymptotic(&inputs(SharingLevel::Twenty, &[])).speedup;
        assert!(wo_1 > wo_20);
        let m1 = asymptotic(&inputs(SharingLevel::Five, &[1])).speedup;
        let m14 = asymptotic(&inputs(SharingLevel::Five, &[1, 4])).speedup;
        let wo_5 = asymptotic(&inputs(SharingLevel::Five, &[])).speedup;
        assert!(m14 > m1 && m1 > wo_5, "{m14} > {m1} > {wo_5}");
    }

    #[test]
    fn mod4_asymptote_is_nearly_sharing_independent() {
        // Table 4.1(c): at N = 100 the three sharing levels give 7.56,
        // 7.57, 7.70 — nearly flat.
        let one = asymptotic(&inputs(SharingLevel::One, &[1, 4])).speedup;
        let twenty = asymptotic(&inputs(SharingLevel::Twenty, &[1, 4])).speedup;
        assert!((one - twenty).abs() / one < 0.1, "{one} vs {twenty}");
    }

    #[test]
    fn no_traffic_means_unbounded_speedup() {
        let p = WorkloadParams::builder()
            .h_private(1.0)
            .h_sro(1.0)
            .h_sw(1.0)
            .amod_private(1.0)
            .amod_sw(1.0)
            .build()
            .unwrap();
        let model = MvaModel::for_protocol(&p, ModSet::new()).unwrap();
        let a = asymptotic(model.inputs());
        assert_eq!(a.bottleneck, Bottleneck::None);
        assert!(a.speedup.is_infinite());
    }

    #[test]
    fn saturated_memory_wait_is_bounded() {
        let a = asymptotic(&inputs(SharingLevel::Twenty, &[]));
        assert!(a.w_mem >= 0.0);
        assert!(a.w_mem <= 1.5); // d_mem/2
    }
}
