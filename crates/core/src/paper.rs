//! The published numbers of the paper's evaluation (Table 4.1), kept as
//! data so the reproduction harness, CLI and tests can all compare against
//! the same source.
//!
//! The GTPN columns stop at 10 processors — "Solution of the GTPN model is
//! impractical for more than ten or twelve processors" — which is encoded
//! here as `None`.

use snoop_protocol::ModSet;
use snoop_workload::params::SharingLevel;

/// Processor counts of the Table 4.1 columns.
pub const TABLE_N: [usize; 9] = [1, 2, 4, 6, 8, 10, 15, 20, 100];

/// One published row: protocol, sharing level, MVA speedups, GTPN speedups
/// (where solved).
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedRow {
    /// Table panel: 'a' (Write-Once), 'b' (modification 1), 'c' (1+4).
    pub panel: char,
    /// Sharing level of the row.
    pub sharing: SharingLevel,
    /// The paper's MVA speedups for [`TABLE_N`].
    pub mva: [f64; 9],
    /// The paper's GTPN speedups (only N ≤ 10 were solvable).
    pub gtpn: [Option<f64>; 6],
}

impl PublishedRow {
    /// The modification set of this row's protocol.
    pub fn mods(&self) -> ModSet {
        use snoop_protocol::Modification;
        match self.panel {
            'b' => ModSet::new().with(Modification::ExclusiveLoad),
            'c' => ModSet::new()
                .with(Modification::ExclusiveLoad)
                .with(Modification::DistributedWrite),
            // 'a' is Write-Once; the rows are constructed in this module
            // only, so any other panel letter reads as the base protocol.
            _ => ModSet::new(),
        }
    }
}

/// All rows of Table 4.1 (panels a, b, c × sharing levels).
// The published speedup 3.14 is not an approximation of π, whatever clippy
// suspects.
#[allow(clippy::approx_constant)]
pub fn table_4_1() -> Vec<PublishedRow> {
    let g = |v: [f64; 6]| v.map(Some);
    vec![
        PublishedRow {
            panel: 'a',
            sharing: SharingLevel::One,
            mva: [0.86, 1.68, 3.17, 4.33, 5.08, 5.49, 5.88, 5.98, 6.07],
            gtpn: g([0.86, 1.69, 3.20, 4.41, 5.21, 5.60]),
        },
        PublishedRow {
            panel: 'a',
            sharing: SharingLevel::Five,
            mva: [0.855, 1.67, 3.12, 4.23, 4.93, 5.30, 5.63, 5.72, 5.79],
            gtpn: g([0.855, 1.67, 3.14, 4.30, 5.04, 5.37]),
        },
        PublishedRow {
            panel: 'a',
            sharing: SharingLevel::Twenty,
            mva: [0.84, 1.61, 2.97, 3.97, 4.55, 4.83, 5.07, 5.12, 5.16],
            gtpn: g([0.84, 1.62, 3.02, 4.07, 4.67, 4.87]),
        },
        PublishedRow {
            panel: 'b',
            sharing: SharingLevel::One,
            mva: [0.875, 1.73, 3.37, 4.82, 5.94, 6.59, 7.02, 7.09, 7.04],
            gtpn: g([0.875, 1.73, 3.37, 4.84, 6.00, 6.72]),
        },
        PublishedRow {
            panel: 'b',
            sharing: SharingLevel::Five,
            mva: [0.87, 1.71, 3.30, 4.65, 5.68, 6.23, 6.59, 6.64, 6.60],
            gtpn: g([0.86, 1.71, 3.31, 4.71, 5.76, 6.31]),
        },
        PublishedRow {
            panel: 'b',
            sharing: SharingLevel::Twenty,
            mva: [0.85, 1.63, 3.08, 4.22, 5.03, 5.40, 5.63, 5.66, 5.62],
            gtpn: g([0.85, 1.65, 3.15, 4.39, 5.19, 5.58]),
        },
        PublishedRow {
            panel: 'c',
            sharing: SharingLevel::One,
            mva: [0.88, 1.75, 3.40, 4.90, 6.06, 6.83, 7.49, 7.58, 7.56],
            gtpn: g([0.88, 1.75, 3.41, 4.91, 6.13, 6.91]),
        },
        PublishedRow {
            panel: 'c',
            sharing: SharingLevel::Five,
            mva: [0.88, 1.75, 3.40, 4.87, 6.06, 6.83, 7.46, 7.57, 7.57],
            gtpn: g([0.88, 1.75, 3.41, 4.92, 6.16, 6.98]),
        },
        PublishedRow {
            panel: 'c',
            sharing: SharingLevel::Twenty,
            mva: [0.88, 1.74, 3.35, 4.75, 5.90, 6.70, 7.47, 7.64, 7.70],
            gtpn: g([0.88, 1.75, 3.39, 4.87, 6.09, 6.93]),
        },
    ]
}

/// Section 4.4: processing power of the protocol with modifications 1, 2
/// and 3, nine processors, 5% sharing — MVA estimate.
pub const PROCESSING_POWER_MVA: f64 = 4.32;
/// The GTPN estimate for the same configuration.
pub const PROCESSING_POWER_GTPN: f64 = 4.1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_rows_three_panels() {
        let rows = table_4_1();
        assert_eq!(rows.len(), 9);
        for panel in ['a', 'b', 'c'] {
            assert_eq!(rows.iter().filter(|r| r.panel == panel).count(), 3);
        }
    }

    #[test]
    fn mods_mapping() {
        let rows = table_4_1();
        assert!(rows[0].mods().is_empty());
        assert_eq!(rows[3].mods(), ModSet::from_numbers(&[1]).unwrap());
        assert_eq!(rows[6].mods(), ModSet::from_numbers(&[1, 4]).unwrap());
    }

    #[test]
    fn paper_mva_gtpn_agreement_is_within_4_25_percent() {
        // The paper's own claim: "maximum relative error is 4.25%"
        // (Section 4.2, over panels a and b; panel c is similar).
        for row in table_4_1() {
            for (i, gtpn) in row.gtpn.iter().enumerate() {
                let gtpn = gtpn.expect("first six columns published");
                let err = (row.mva[i] - gtpn).abs() / gtpn;
                assert!(err < 0.0426, "panel {} {}: {err}", row.panel, row.sharing);
            }
        }
    }

    #[test]
    fn speedups_increase_down_each_row() {
        for row in table_4_1() {
            for w in row.mva.windows(2).take(6) {
                assert!(w[1] > w[0] - 0.06, "{row:?}");
            }
        }
    }
}
