//! Customized mean-value-analysis (MVA) models of snooping cache-consistency
//! protocols — the primary contribution of Vernon, Lazowska & Zahorjan
//! (ISCA 1988).
//!
//! The model expresses the mean time between memory requests `R` of each of
//! `N` identical processors through a small set of equations capturing three
//! interference sources:
//!
//! * **bus interference** — an M/G/1-like waiting time at the FCFS shared
//!   bus (paper Eqs. 5–10),
//! * **memory interference** — waiting for the interleaved main-memory
//!   module targeted by a broadcast write (Eqs. 11–12),
//! * **cache interference** — bus requests holding the dual-directory cache
//!   and delaying local hits (Eq. 13 and Appendix B).
//!
//! The equations are cyclically interdependent and are solved by fixed-point
//! iteration from zero waiting times (Section 3.2: "Solution of the
//! equations converged within 15 iterations in all experiments…, yielding
//! results in under one second of cpu time, independent of the size of the
//! system analyzed").
//!
//! # Example
//!
//! ```
//! use snoop_mva::{MvaModel, SolverOptions};
//! use snoop_protocol::ModSet;
//! use snoop_workload::params::{SharingLevel, WorkloadParams};
//!
//! # fn main() -> Result<(), snoop_mva::MvaError> {
//! let params = WorkloadParams::appendix_a(SharingLevel::Five);
//! let model = MvaModel::for_protocol(&params, ModSet::new())?;
//! let solution = model.solve(10, &SolverOptions::default())?;
//! // Table 4.1(a), 5% sharing, 10 processors: MVA speedup 5.30.
//! assert!((solution.speedup - 5.30).abs() < 0.15);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asymptote;
pub mod calibration;
pub mod engine;
pub mod equations;
pub mod hierarchical;
pub mod interference;
pub mod multiclass;
pub mod outputs;
pub mod paper;
pub mod report;
pub mod resilient;
pub mod sensitivity;
pub mod solver;
pub mod sweep;
pub mod traffic;

mod error;

pub use error::MvaError;
pub use outputs::MvaSolution;
pub use resilient::{ResilientOptions, ResilientSolution, SolveDiagnostics};
pub use solver::{MvaModel, SolverOptions};
