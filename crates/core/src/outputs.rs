//! The performance measures produced by a converged model solution.

use std::fmt;

/// All steady-state measures of one MVA solution.
///
/// Produced by [`crate::MvaModel::solve`]; every field is a converged
/// steady-state mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvaSolution {
    /// Number of processors `N`.
    pub n: usize,
    /// Mean time between memory requests, `R` (Eq. 1).
    pub r: f64,
    /// Speedup, `N·(τ + T_supply)/R` (Section 4).
    pub speedup: f64,
    /// Processing power, `N·τ/R` — the sum of processor utilizations
    /// (Section 4.4).
    pub processing_power: f64,
    /// Bus utilization `U_bus` (Eq. 7).
    pub bus_utilization: f64,
    /// Memory-module utilization `U_mem` (Eq. 12).
    pub memory_utilization: f64,
    /// Mean bus waiting time `w_bus` (Eq. 5).
    pub w_bus: f64,
    /// Mean memory waiting time `w_mem` (Eq. 11).
    pub w_mem: f64,
    /// Mean bus queue length seen by an arrival `Q̄_bus` (Eq. 6).
    pub q_bus: f64,
    /// Mean number of bus requests delaying a local request (Eq. 13).
    pub n_interference: f64,
    /// Mean cache occupancy per interfering request (Appendix B).
    pub t_interference: f64,
    /// Weighted local response-time contribution `R_local` (Eq. 2).
    pub r_local: f64,
    /// Weighted broadcast response-time contribution `R_broadcast` (Eq. 3).
    pub r_broadcast: f64,
    /// Weighted remote-read response-time contribution `R_RemoteRead`
    /// (Eq. 4).
    pub r_remote_read: f64,
    /// Fixed-point iterations to convergence.
    pub iterations: usize,
}

impl MvaSolution {
    /// Per-processor utilization (`τ/R` — the fraction of time a processor
    /// executes rather than waits).
    pub fn processor_utilization(&self) -> f64 {
        self.processing_power / self.n as f64
    }

    /// Sanity check: all utilizations and probabilities are in range and
    /// the response-time components are consistent with `R`.
    pub fn is_physical(&self, tau: f64, t_supply: f64) -> bool {
        let parts = tau + t_supply + self.r_local + self.r_broadcast + self.r_remote_read;
        self.r > 0.0
            && (0.0..=1.0).contains(&self.bus_utilization)
            && (0.0..=1.0).contains(&self.memory_utilization)
            && self.speedup <= self.n as f64 + 1e-9
            && self.w_bus >= 0.0
            && self.w_mem >= 0.0
            && (parts - self.r).abs() < 1e-6 * self.r.max(1.0)
    }
}

impl fmt::Display for MvaSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "N = {:<4} R = {:.4}  speedup = {:.3}", self.n, self.r, self.speedup)?;
        writeln!(
            f,
            "  U_bus = {:.3}  U_mem = {:.3}  w_bus = {:.3}  w_mem = {:.3}  Q_bus = {:.3}",
            self.bus_utilization, self.memory_utilization, self.w_bus, self.w_mem, self.q_bus
        )?;
        write!(
            f,
            "  R_local = {:.4}  R_bc = {:.4}  R_rr = {:.4}  ({} iterations)",
            self.r_local, self.r_broadcast, self.r_remote_read, self.iterations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MvaSolution {
        MvaSolution {
            n: 10,
            r: 6.0,
            speedup: 10.0 * 3.5 / 6.0,
            processing_power: 10.0 * 2.5 / 6.0,
            bus_utilization: 0.8,
            memory_utilization: 0.2,
            w_bus: 1.0,
            w_mem: 0.1,
            q_bus: 1.5,
            n_interference: 0.05,
            t_interference: 1.2,
            r_local: 0.9 * 0.05 * 1.2,
            r_broadcast: 0.3,
            r_remote_read: 6.0 - 3.5 - 0.9 * 0.05 * 1.2 - 0.3,
            iterations: 9,
        }
    }

    #[test]
    fn physicality_check_passes_for_consistent_solution() {
        assert!(sample().is_physical(2.5, 1.0));
    }

    #[test]
    fn physicality_check_fails_on_overspeedup() {
        let mut s = sample();
        s.speedup = 11.0;
        assert!(!s.is_physical(2.5, 1.0));
    }

    #[test]
    fn physicality_check_fails_on_inconsistent_parts() {
        let mut s = sample();
        s.r_broadcast += 1.0;
        assert!(!s.is_physical(2.5, 1.0));
    }

    #[test]
    fn processor_utilization() {
        let s = sample();
        assert!((s.processor_utilization() - 2.5 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_key_figures() {
        let text = sample().to_string();
        assert!(text.contains("speedup"));
        assert!(text.contains("U_bus"));
        assert!(text.contains("iterations"));
    }
}
