//! The resilient solve pipeline: an escalation ladder around the
//! mean-value fixed point with full per-attempt diagnostics.
//!
//! The paper's claim that the customized MVA equations converge "within 15
//! iterations" holds for its studied workloads — but the queueing map's
//! contraction rate approaches 1 near bus saturation (large `N`, slow
//! memory), where plain successive substitution oscillates or diverges.
//! [`MvaModel::solve_resilient`] runs a fixed **escalation ladder** of
//! solve strategies, stopping at the first that converges to a finite
//! solution:
//!
//! 1. **plain** successive substitution (the paper's method);
//! 2. **Aitken** Δ² acceleration, which collapses the slow geometric tail;
//! 3. **damping 0.5** under-relaxation, which stabilizes oscillation;
//! 4. **damping 0.25** for harder oscillation;
//! 5. **damped restart** — damping 0.125, restarted from the last finite
//!    iterate of the most recent failed attempt rather than from cold.
//!
//! Every attempt is recorded in a [`SolveDiagnostics`] — which strategy
//! ran, how many iterations it spent, the residual it reached, and how it
//! failed — so a production caller can see *why* a configuration was
//! expensive, not just that it was. If the whole ladder fails, the
//! diagnostics come back inside [`MvaError::SolveExhausted`]; the pipeline
//! never panics and never returns non-finite values.
//!
//! Sweeps build on the same entry point through
//! [`crate::sweep::resilient_speedup_series`], which warm-starts each
//! system size from the previous size's converged state and degrades
//! gracefully on failure instead of aborting the sweep.

use std::fmt;
use std::time::Duration;

use snoop_numeric::fixed_point::Options;
use snoop_numeric::NumericError;

use crate::outputs::MvaSolution;
use crate::solver::{MvaModel, SolverOptions};
use crate::MvaError;

/// Options for the resilient escalation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOptions {
    /// Base solver options. `base.damping` scales the ladder's damped
    /// rungs; `base.max_iterations` and `base.tolerance` apply to every
    /// attempt.
    pub base: SolverOptions,
    /// Maximum number of retries after the first (plain) attempt: `0`
    /// means plain iteration only, `4` (the default) enables the full
    /// ladder.
    pub max_damping_retries: usize,
    /// Wall-clock deadline per attempt. `None` (the default) bounds each
    /// attempt only by `base.max_iterations`.
    pub deadline: Option<Duration>,
}

impl Default for ResilientOptions {
    fn default() -> Self {
        ResilientOptions {
            base: SolverOptions::default(),
            max_damping_retries: 4,
            deadline: None,
        }
    }
}

/// A solve strategy on the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Plain successive substitution (the paper's method).
    Plain,
    /// Aitken Δ² acceleration every third iterate.
    Aitken,
    /// Under-relaxed iteration with the given damping factor, from cold.
    Damped(f64),
    /// Under-relaxed iteration with the given damping factor, restarted
    /// from the last finite iterate of the previous failed attempt.
    DampedRestart(f64),
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Plain => write!(f, "plain"),
            Strategy::Aitken => write!(f, "aitken"),
            Strategy::Damped(d) => write!(f, "damped({d})"),
            Strategy::DampedRestart(d) => write!(f, "damped-restart({d})"),
        }
    }
}

/// Record of one attempt on the ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Iterations the attempt spent.
    pub iterations: usize,
    /// Relative residual when the attempt ended (below the tolerance on
    /// success).
    pub residual: f64,
    /// `None` on success; the typed failure otherwise.
    pub error: Option<NumericError>,
}

/// Diagnostics of a whole resilient solve: every attempt, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveDiagnostics {
    /// System size that was solved.
    pub n: usize,
    /// Every attempt, in ladder order. The last entry is the one that
    /// converged (when the solve succeeded).
    pub attempts: Vec<AttemptRecord>,
    /// Whether the solve was seeded from a previous solution (warm start).
    pub warm_started: bool,
}

impl SolveDiagnostics {
    /// The strategy that produced the returned solution, if any converged.
    pub fn winning_strategy(&self) -> Option<Strategy> {
        self.attempts.iter().find(|a| a.error.is_none()).map(|a| a.strategy)
    }

    /// Number of retries beyond the first attempt.
    pub fn retries(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// Iterations summed over every attempt — the real cost of the solve.
    pub fn total_iterations(&self) -> usize {
        self.attempts.iter().map(|a| a.iterations).sum()
    }
}

impl fmt::Display for SolveDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={}: {} attempt(s), {} total iterations",
            self.n,
            self.attempts.len(),
            self.total_iterations()
        )?;
        for a in &self.attempts {
            match &a.error {
                None => write!(f, "; {} converged in {}", a.strategy, a.iterations)?,
                Some(e) => write!(f, "; {} failed after {} ({e})", a.strategy, a.iterations)?,
            }
        }
        Ok(())
    }
}

/// A solution together with the diagnostics of the ladder that produced it.
///
/// [`MvaSolution`] itself stays a plain `Copy` record; the diagnostics ride
/// alongside it here.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientSolution {
    /// The converged solution (all outputs finite).
    pub solution: MvaSolution,
    /// How it was obtained.
    pub diagnostics: SolveDiagnostics,
}

impl MvaModel {
    /// Solves the model for `n` processors through the escalation ladder,
    /// from a cold start.
    ///
    /// # Errors
    ///
    /// Returns [`MvaError::InvalidSystemSize`] for `n = 0` and
    /// [`MvaError::SolveExhausted`] — carrying the per-attempt
    /// diagnostics — when every strategy on the ladder fails. Never
    /// panics; a returned solution always has finite outputs.
    pub fn solve_resilient(
        &self,
        n: usize,
        options: &ResilientOptions,
    ) -> Result<ResilientSolution, MvaError> {
        self.solve_resilient_seeded(n, None, options)
    }

    /// Like [`MvaModel::solve_resilient`], warm-started from a previous
    /// converged state `[w_bus, w_mem, R]` when `seed` is `Some`.
    ///
    /// A good seed (the solution of a nearby configuration, e.g. the
    /// previous `N` of a sweep) typically converges in a handful of
    /// iterations; a bad seed costs one failed attempt before the ladder
    /// falls back to cold starts, so warm-starting is always safe.
    ///
    /// # Errors
    ///
    /// Same contract as [`MvaModel::solve_resilient`].
    pub fn solve_resilient_seeded(
        &self,
        n: usize,
        seed: Option<[f64; 3]>,
        options: &ResilientOptions,
    ) -> Result<ResilientSolution, MvaError> {
        if n == 0 {
            return Err(MvaError::InvalidSystemSize(0));
        }
        // Observational only — the probe registry is never read back, so
        // collection cannot steer the escalation ladder.
        let _probe_span = snoop_numeric::probe::span("resilient_solve");
        // A seed is only usable if it is finite with a positive R —
        // otherwise the mean-value map rejects it on the first step.
        let seed = seed.filter(|s| s.iter().all(|v| v.is_finite()) && s[2] > 0.0);
        let base_damping = options.base.damping.clamp(f64::MIN_POSITIVE, 1.0);
        let ladder = [
            Strategy::Plain,
            Strategy::Aitken,
            Strategy::Damped(0.5 * base_damping),
            Strategy::Damped(0.25 * base_damping),
            Strategy::DampedRestart(0.125 * base_damping),
        ];

        let mut diagnostics = SolveDiagnostics {
            n,
            attempts: Vec::new(),
            warm_started: seed.is_some(),
        };
        // Restart point harvested from the most recent structured failure.
        let mut last_finite: Option<Vec<f64>> = None;

        for strategy in ladder.iter().take(1 + options.max_damping_retries) {
            snoop_numeric::probe::counter_add("mva.resilient_attempts", 1);
            if !diagnostics.attempts.is_empty() {
                snoop_numeric::probe::counter_add("mva.resilient_escalations", 1);
            }
            let (damping, aitken, initial) = match *strategy {
                Strategy::Plain => (base_damping, false, None),
                Strategy::Aitken => (base_damping, true, None),
                Strategy::Damped(d) => (d, false, None),
                Strategy::DampedRestart(d) => (d, false, last_finite.clone()),
            };
            let initial = initial
                .or_else(|| seed.map(|s| s.to_vec()))
                .unwrap_or_else(|| self.zero_wait_state());
            let fp_options = Options {
                max_iterations: options.base.max_iterations,
                tolerance: options.base.tolerance,
                damping,
                record_history: false,
                aitken,
                deadline: options.deadline,
            };

            match self.run_map(n, initial, &fp_options) {
                Ok(converged) => {
                    let solution =
                        self.package_solution(n, &converged.values, converged.iterations);
                    let finite = [
                        solution.r,
                        solution.speedup,
                        solution.bus_utilization,
                        solution.memory_utilization,
                        solution.w_bus,
                        solution.w_mem,
                    ]
                    .iter()
                    .all(|v| v.is_finite());
                    if finite {
                        diagnostics.attempts.push(AttemptRecord {
                            strategy: *strategy,
                            iterations: converged.iterations,
                            residual: converged.residual,
                            error: None,
                        });
                        snoop_numeric::probe::counter_add("mva.resilient_solves", 1);
                        snoop_numeric::probe::record(
                            "mva.attempts_per_solve",
                            diagnostics.attempts.len() as f64,
                        );
                        return Ok(ResilientSolution { solution, diagnostics });
                    }
                    // Converged onto a non-finite packaging (degenerate
                    // inputs): record it as a failure and escalate.
                    diagnostics.attempts.push(AttemptRecord {
                        strategy: *strategy,
                        iterations: converged.iterations,
                        residual: converged.residual,
                        error: Some(NumericError::InvalidArgument(
                            "converged state packages to non-finite outputs".into(),
                        )),
                    });
                }
                Err(e) => {
                    let (iterations, residual) = match &e {
                        NumericError::Diverged(failure) => {
                            if failure.last_finite.len() == 3 && failure.last_finite[2] > 0.0 {
                                last_finite = Some(failure.last_finite.clone());
                            }
                            (failure.iterations, failure.residual)
                        }
                        NumericError::NoConvergence { iterations, residual } => {
                            (*iterations, *residual)
                        }
                        _ => (0, f64::NAN),
                    };
                    diagnostics.attempts.push(AttemptRecord {
                        strategy: *strategy,
                        iterations,
                        residual,
                        error: Some(e),
                    });
                }
            }
        }

        snoop_numeric::probe::counter_add("mva.resilient_exhausted", 1);
        Err(MvaError::SolveExhausted(Box::new(diagnostics)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};

    fn model(level: SharingLevel) -> MvaModel {
        MvaModel::for_protocol(&WorkloadParams::appendix_a(level), ModSet::new()).unwrap()
    }

    #[test]
    fn plain_strategy_wins_on_easy_workloads() {
        let r = model(SharingLevel::Five)
            .solve_resilient(10, &ResilientOptions::default())
            .unwrap();
        assert_eq!(r.diagnostics.winning_strategy(), Some(Strategy::Plain));
        assert_eq!(r.diagnostics.retries(), 0);
        assert!(!r.diagnostics.warm_started);
        // Matches the plain solver exactly: same method, same start.
        let plain = model(SharingLevel::Five)
            .solve(10, &SolverOptions::default())
            .unwrap();
        assert!((r.solution.r - plain.r).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_processors() {
        let err = model(SharingLevel::Five)
            .solve_resilient(0, &ResilientOptions::default())
            .unwrap_err();
        assert!(matches!(err, MvaError::InvalidSystemSize(0)));
    }

    #[test]
    fn warm_seed_from_fixed_point_converges_immediately() {
        let m = model(SharingLevel::Twenty);
        let cold = m.solve_resilient(20, &ResilientOptions::default()).unwrap();
        let seed = [cold.solution.w_bus, cold.solution.w_mem, cold.solution.r];
        let warm = m
            .solve_resilient_seeded(20, Some(seed), &ResilientOptions::default())
            .unwrap();
        assert!(warm.diagnostics.warm_started);
        assert!(
            warm.diagnostics.total_iterations() < cold.diagnostics.total_iterations(),
            "warm {} vs cold {}",
            warm.diagnostics.total_iterations(),
            cold.diagnostics.total_iterations()
        );
        assert!((warm.solution.r - cold.solution.r).abs() < 1e-6 * cold.solution.r);
    }

    #[test]
    fn non_finite_seed_is_ignored() {
        let m = model(SharingLevel::Five);
        let r = m
            .solve_resilient_seeded(
                10,
                Some([f64::NAN, 0.0, 1.0]),
                &ResilientOptions::default(),
            )
            .unwrap();
        // Fell back to a cold start rather than propagating the NaN.
        assert!(r.solution.r.is_finite());
        assert!(!r.diagnostics.warm_started);
    }

    #[test]
    fn saturation_regime_never_returns_non_finite() {
        // N ≥ 64 with slow memory: deep saturation, the regime the ladder
        // exists for.
        let slow = WorkloadParams::stress();
        let m = MvaModel::for_protocol(&slow, ModSet::new()).unwrap();
        for n in [64, 256, 1024] {
            match m.solve_resilient(n, &ResilientOptions::default()) {
                Ok(r) => {
                    assert!(r.solution.r.is_finite(), "N={n}");
                    assert!(r.solution.speedup.is_finite(), "N={n}");
                    assert!(r.solution.speedup > 0.0, "N={n}");
                }
                Err(MvaError::SolveExhausted(d)) => {
                    // Clean failure is acceptable; silent garbage is not.
                    assert_eq!(d.attempts.len(), 5, "N={n}: {d}");
                }
                Err(other) => panic!("N={n}: unexpected error {other}"),
            }
        }
    }

    #[test]
    fn ladder_is_bounded_by_max_damping_retries() {
        // With a tolerance of 0 nothing can converge: every rung must run
        // and the count must honour the cap.
        let m = model(SharingLevel::Five);
        let options = ResilientOptions {
            base: SolverOptions { max_iterations: 10, tolerance: 0.0, damping: 1.0 },
            max_damping_retries: 2,
            deadline: None,
        };
        let err = m.solve_resilient(10, &options).unwrap_err();
        match err {
            MvaError::SolveExhausted(d) => {
                assert_eq!(d.attempts.len(), 3, "{d}");
                assert!(d.attempts.iter().all(|a| a.error.is_some()));
            }
            other => panic!("expected exhaustion, got {other}"),
        }
    }

    #[test]
    fn diagnostics_display_is_readable() {
        let m = model(SharingLevel::Five);
        let r = m.solve_resilient(4, &ResilientOptions::default()).unwrap();
        let text = r.diagnostics.to_string();
        assert!(text.contains("N=4"), "{text}");
        assert!(text.contains("plain converged"), "{text}");
    }
}
