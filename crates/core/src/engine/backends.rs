//! The [`Evaluator`] trait and its four implementations: plain MVA,
//! resilient MVA, discrete-event simulation and GTPN.
//!
//! Every backend answers the same [`Scenario`] with the same
//! [`Evaluation`] currency, so callers compare models by swapping a
//! backend rather than rewriting glue. Each impl is a thin adapter over
//! the corresponding solver crate — the blessed conversions on
//! [`Scenario`] are the only construction paths used.

use std::time::Instant;

use snoop_gtpn::reachability::ReachabilityOptions;
use snoop_numeric::exec::ExecOptions;
use snoop_numeric::probe::trace;
use snoop_sim::runner::replicate_exec;

use super::evaluation::{BackendId, EvalError, Evaluation, Provenance};
use super::scenario::Scenario;
use crate::resilient::ResilientOptions;
use crate::solver::MvaModel;
use crate::MvaError;

/// Opens the standard per-solve timeline span: named after the backend,
/// tagged with the scenario's content hash, family hash and system size.
fn solve_trace(backend: BackendId, scenario: &Scenario) -> trace::TraceSpan {
    let name = match backend {
        BackendId::Mva => "solve.mva",
        BackendId::ResilientMva => "solve.mva-resilient",
        BackendId::Sim => "solve.sim",
        BackendId::Gtpn => "solve.gtpn",
    };
    trace::span_with(name, || {
        vec![
            ("scenario", format!("{:016x}", scenario.content_hash())),
            ("family", format!("{:016x}", scenario.family_hash())),
            ("backend", backend.to_string()),
            ("n", scenario.n.to_string()),
        ]
    })
}

/// A model backend that can evaluate scenarios.
///
/// Implementations must be pure in the deterministic sense: the same
/// scenario always produces the same [`Evaluation`] (up to the
/// non-semantic `wall_ms`/`cached` provenance fields), no matter whether
/// it is evaluated alone, inside a batch, or on how many threads.
pub trait Evaluator: Send + Sync {
    /// The backend's identity (used in cache keys and provenance).
    fn id(&self) -> BackendId;

    /// Evaluates one scenario.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidScenario`] for malformed inputs,
    /// [`EvalError::Unsupported`] when the backend declines the scenario,
    /// [`EvalError::Failed`] when the underlying solver fails.
    fn evaluate(&self, scenario: &Scenario) -> Result<Evaluation, EvalError>;

    /// Rough relative cost of evaluating `scenario`, in abstract units
    /// comparable *within* one backend and *roughly* across backends
    /// (an MVA solve is ~1 per processor). Batch planners use it to
    /// schedule expensive work first.
    fn cost_estimate(&self, scenario: &Scenario) -> f64;

    /// Scenarios with equal keys may be evaluated together by
    /// [`Evaluator::evaluate_group`] (e.g. one model build shared across
    /// a sweep over `N`). `None` (the default) means "no grouping".
    fn group_key(&self, _scenario: &Scenario) -> Option<u64> {
        None
    }

    /// Evaluates a group of scenarios that share a
    /// [`Evaluator::group_key`], returning one result per scenario in
    /// order. The default simply maps [`Evaluator::evaluate`]; overrides
    /// must stay result-identical to that (shared work is allowed, shared
    /// *state that changes answers* is not — the resilient backend's
    /// warm-start chains are the documented, opt-in exception).
    fn evaluate_group(&self, scenarios: &[&Scenario]) -> Vec<Result<Evaluation, EvalError>> {
        scenarios.iter().map(|s| self.evaluate(s)).collect()
    }
}

/// Converts an MVA solution into the common currency.
fn mva_evaluation(
    backend: BackendId,
    s: &crate::outputs::MvaSolution,
    iterations: usize,
    strategy: Option<String>,
    wall_ms: f64,
) -> Evaluation {
    Evaluation {
        backend,
        n: s.n,
        r: s.r,
        speedup: s.speedup,
        speedup_half_width: None,
        bus_utilization: s.bus_utilization,
        memory_utilization: Some(s.memory_utilization),
        w_bus: Some(s.w_bus),
        w_mem: Some(s.w_mem),
        q_bus: Some(s.q_bus),
        provenance: Provenance { iterations, strategy, wall_ms, ..Provenance::new(0, 0, 0) },
    }
}

/// The paper's customized MVA fixed point, solved with the scenario's
/// plain [`crate::SolverOptions`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MvaBackend;

impl Evaluator for MvaBackend {
    fn id(&self) -> BackendId {
        BackendId::Mva
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Evaluation, EvalError> {
        let started = Instant::now();
        let _span = snoop_numeric::probe::span("engine.mva");
        let _trace = solve_trace(BackendId::Mva, scenario);
        let model = scenario.to_mva_model()?;
        let solution = model
            .solve(scenario.n, &scenario.solver_options())
            .map_err(|e| EvalError::Failed { backend: BackendId::Mva, reason: e.to_string() })?;
        Ok(mva_evaluation(
            BackendId::Mva,
            &solution,
            solution.iterations,
            None,
            started.elapsed().as_secs_f64() * 1e3,
        ))
    }

    fn cost_estimate(&self, scenario: &Scenario) -> f64 {
        scenario.n as f64
    }

    fn group_key(&self, scenario: &Scenario) -> Option<u64> {
        // Scenarios differing only in N share one model build.
        Some(scenario.family_hash())
    }

    fn evaluate_group(&self, scenarios: &[&Scenario]) -> Vec<Result<Evaluation, EvalError>> {
        let Some(first) = scenarios.first() else {
            return Vec::new();
        };
        // One model build for the whole family; `solve` is pure, so each
        // result is bit-identical to a standalone `evaluate`.
        let model = match first.to_mva_model() {
            Ok(model) => model,
            Err(e) => return scenarios.iter().map(|_| Err(e.clone())).collect(),
        };
        scenarios
            .iter()
            .map(|scenario| {
                let started = Instant::now();
                let _trace = solve_trace(BackendId::Mva, scenario);
                let solution = model
                    .solve(scenario.n, &scenario.solver_options())
                    .map_err(|e| EvalError::Failed {
                        backend: BackendId::Mva,
                        reason: e.to_string(),
                    })?;
                Ok(mva_evaluation(
                    BackendId::Mva,
                    &solution,
                    solution.iterations,
                    None,
                    started.elapsed().as_secs_f64() * 1e3,
                ))
            })
            .collect()
    }
}

/// The MVA behind the resilient escalation ladder
/// ([`MvaModel::solve_resilient`]), optionally warm-starting sweep-adjacent
/// batch members from each other like
/// [`crate::sweep::resilient_speedup_series`] does.
#[derive(Debug, Clone, Copy)]
pub struct ResilientMvaBackend {
    /// Retries beyond the first plain attempt (the ladder depth).
    pub max_damping_retries: usize,
    /// Optional wall-clock deadline per attempt.
    pub deadline: Option<std::time::Duration>,
    /// Warm-start each group member from the previous member's converged
    /// state (members are ordered by `N` by the engine). This mirrors the
    /// sweep path exactly — including its cold-retry fallback — and can
    /// change iteration *counts* (not solutions beyond the solver
    /// tolerance), so it is off by default.
    pub warm_start_chains: bool,
}

impl Default for ResilientMvaBackend {
    fn default() -> Self {
        let defaults = ResilientOptions::default();
        ResilientMvaBackend {
            max_damping_retries: defaults.max_damping_retries,
            deadline: defaults.deadline,
            warm_start_chains: false,
        }
    }
}

impl ResilientMvaBackend {
    fn options(&self, scenario: &Scenario) -> ResilientOptions {
        ResilientOptions {
            base: scenario.solver_options(),
            max_damping_retries: self.max_damping_retries,
            deadline: self.deadline,
        }
    }

    /// Solves one system size on `model`, warm-started from `seed`, with
    /// the same fallback contract as the resilient sweep: a failed warm
    /// solve is retried cold before being reported as failed.
    fn solve_chained(
        &self,
        model: &MvaModel,
        scenario: &Scenario,
        seed: Option<[f64; 3]>,
    ) -> Result<crate::resilient::ResilientSolution, MvaError> {
        model
            .solve_resilient_seeded(scenario.n, seed, &self.options(scenario))
            .or_else(|e| {
                if seed.is_some() && !matches!(e, MvaError::InvalidSystemSize(_)) {
                    model.solve_resilient(scenario.n, &self.options(scenario))
                } else {
                    Err(e)
                }
            })
    }

    fn package(
        &self,
        result: Result<crate::resilient::ResilientSolution, MvaError>,
        started: Instant,
    ) -> Result<Evaluation, EvalError> {
        let resilient = result.map_err(|e| EvalError::Failed {
            backend: BackendId::ResilientMva,
            reason: e.to_string(),
        })?;
        Ok(mva_evaluation(
            BackendId::ResilientMva,
            &resilient.solution,
            resilient.diagnostics.total_iterations(),
            resilient.diagnostics.winning_strategy().map(|s| s.to_string()),
            started.elapsed().as_secs_f64() * 1e3,
        ))
    }
}

impl Evaluator for ResilientMvaBackend {
    fn id(&self) -> BackendId {
        BackendId::ResilientMva
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Evaluation, EvalError> {
        let started = Instant::now();
        let _span = snoop_numeric::probe::span("engine.mva_resilient");
        let _trace = solve_trace(BackendId::ResilientMva, scenario);
        let model = scenario.to_mva_model()?;
        self.package(model.solve_resilient(scenario.n, &self.options(scenario)), started)
    }

    fn cost_estimate(&self, scenario: &Scenario) -> f64 {
        // Up to five ladder rungs per solve.
        scenario.n as f64 * (1 + self.max_damping_retries) as f64
    }

    fn group_key(&self, scenario: &Scenario) -> Option<u64> {
        self.warm_start_chains.then(|| scenario.family_hash())
    }

    fn evaluate_group(&self, scenarios: &[&Scenario]) -> Vec<Result<Evaluation, EvalError>> {
        if !self.warm_start_chains {
            return scenarios.iter().map(|s| self.evaluate(s)).collect();
        }
        let Some(first) = scenarios.first() else {
            return Vec::new();
        };
        let model = match first.to_mva_model() {
            Ok(model) => model,
            Err(e) => return scenarios.iter().map(|_| Err(e.clone())).collect(),
        };
        // The sweep's warm chain: seed each size from the previous
        // converged [w_bus, w_mem, R], dropping the seed after a failure.
        let mut seed: Option<[f64; 3]> = None;
        scenarios
            .iter()
            .map(|scenario| {
                let started = Instant::now();
                let mut member_trace = solve_trace(BackendId::ResilientMva, scenario);
                member_trace.arg("warm", seed.is_some().to_string());
                let result = self.solve_chained(&model, scenario, seed);
                seed = result
                    .as_ref()
                    .ok()
                    .map(|r| [r.solution.w_bus, r.solution.w_mem, r.solution.r]);
                self.package(result, started)
            })
            .collect()
    }
}

/// The discrete-event simulator with independent replications and
/// Student-t intervals.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend {
    /// Executor for the independent replications (results are
    /// bit-identical for every thread count).
    pub exec: ExecOptions,
}

impl Evaluator for SimBackend {
    fn id(&self) -> BackendId {
        BackendId::Sim
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Evaluation, EvalError> {
        let started = Instant::now();
        let _span = snoop_numeric::probe::span("engine.sim");
        let _trace = solve_trace(BackendId::Sim, scenario);
        let config = scenario.to_sim_config();
        config
            .validate()
            .map_err(|e| EvalError::InvalidScenario(e.to_string()))?;
        let replications = scenario.sim.replications;
        let measures = replicate_exec(&config, replications, scenario.sim.confidence, &self.exec)
            .map_err(|e| EvalError::Failed { backend: BackendId::Sim, reason: e.to_string() })?;
        let mean = |f: fn(&snoop_sim::SimMeasures) -> f64| {
            measures.replications.iter().map(f).sum::<f64>() / measures.replications.len() as f64
        };
        Ok(Evaluation {
            backend: BackendId::Sim,
            n: scenario.n,
            r: mean(|m| m.r),
            speedup: measures.speedup.mean,
            speedup_half_width: Some(measures.speedup.half_width),
            bus_utilization: measures.bus_utilization.mean,
            memory_utilization: Some(mean(|m| m.memory_utilization)),
            w_bus: Some(measures.w_bus.mean),
            w_mem: None,
            q_bus: None,
            provenance: Provenance {
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                ..Provenance::new(0, replications, 0)
            },
        })
    }

    fn cost_estimate(&self, scenario: &Scenario) -> f64 {
        // Event count scales with references simulated across replications.
        ((scenario.sim.warmup_references + scenario.sim.measured_references)
            * scenario.sim.replications
            * scenario.n) as f64
            / 100.0
    }
}

/// The generalized timed Petri net, solved by exhaustive reachability
/// expansion — exact, but exponential in `N`.
#[derive(Debug, Clone, Copy)]
pub struct GtpnBackend {
    /// Worker threads for the frontier expansion (`1` = serial, `0` =
    /// auto). The expanded graph is bit-identical for every thread count.
    pub threads: usize,
}

impl Default for GtpnBackend {
    fn default() -> Self {
        GtpnBackend { threads: 1 }
    }
}

impl Evaluator for GtpnBackend {
    fn id(&self) -> BackendId {
        BackendId::Gtpn
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Evaluation, EvalError> {
        let started = Instant::now();
        let _span = snoop_numeric::probe::span("engine.gtpn");
        let _trace = solve_trace(BackendId::Gtpn, scenario);
        if scenario.n == 0 {
            return Err(EvalError::InvalidScenario("need at least one processor".to_string()));
        }
        let net = scenario.to_coherence_net()?;
        let options = ReachabilityOptions {
            max_states: scenario.gtpn.max_states,
            threads: self.threads,
            ..ReachabilityOptions::default()
        };
        let measures = net
            .solve(&options)
            .map_err(|e| EvalError::Failed { backend: BackendId::Gtpn, reason: e.to_string() })?;
        Ok(Evaluation {
            backend: BackendId::Gtpn,
            n: scenario.n,
            r: measures.r,
            speedup: measures.speedup,
            speedup_half_width: None,
            bus_utilization: measures.bus_utilization,
            memory_utilization: None,
            w_bus: None,
            w_mem: None,
            q_bus: Some(measures.mean_bus_queue),
            provenance: Provenance {
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                ..Provenance::new(0, 0, measures.states)
            },
        })
    }

    fn cost_estimate(&self, scenario: &Scenario) -> f64 {
        // The state space grows combinatorially with N; this only needs to
        // rank GTPN work as "much more expensive, and more so for large N".
        1e3 * (scenario.n as f64).exp2().min(1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::SharingLevel;

    fn scenario(n: usize) -> Scenario {
        let mut s = Scenario::appendix_a(ModSet::new(), SharingLevel::Five, n);
        s.sim.warmup_references = 300;
        s.sim.measured_references = 3_000;
        s
    }

    #[test]
    fn mva_backend_matches_direct_solve() {
        let s = scenario(10);
        let eval = MvaBackend.evaluate(&s).unwrap();
        let direct = s.to_mva_model().unwrap().solve(10, &s.solver_options()).unwrap();
        assert_eq!(eval.speedup.to_bits(), direct.speedup.to_bits());
        assert_eq!(eval.r.to_bits(), direct.r.to_bits());
        assert_eq!(eval.provenance.iterations, direct.iterations);
        assert_eq!(eval.backend, BackendId::Mva);
        // Table 4.1(a): MVA speedup 5.30 at N = 10, 5% sharing.
        assert!((eval.speedup - 5.30).abs() < 0.15);
    }

    #[test]
    fn mva_group_is_identical_to_one_at_a_time() {
        let scenarios = [scenario(4), scenario(8), scenario(16)];
        let refs: Vec<&Scenario> = scenarios.iter().collect();
        let grouped = MvaBackend.evaluate_group(&refs);
        for (scenario, grouped) in scenarios.iter().zip(&grouped) {
            let single = MvaBackend.evaluate(scenario).unwrap();
            assert_eq!(grouped.as_ref().unwrap(), &single);
        }
    }

    #[test]
    fn resilient_backend_reports_strategy_and_iterations() {
        let eval = ResilientMvaBackend::default().evaluate(&scenario(10)).unwrap();
        assert_eq!(eval.backend, BackendId::ResilientMva);
        assert_eq!(eval.provenance.strategy.as_deref(), Some("plain"));
        assert!(eval.provenance.iterations > 0);
        // Same fixed point as the plain backend on an easy workload.
        let plain = MvaBackend.evaluate(&scenario(10)).unwrap();
        assert!((eval.speedup - plain.speedup).abs() < 1e-9);
    }

    #[test]
    fn resilient_warm_chain_matches_the_sweep_solutions() {
        let backend = ResilientMvaBackend { warm_start_chains: true, ..Default::default() };
        let scenarios = [scenario(2), scenario(4), scenario(8)];
        let refs: Vec<&Scenario> = scenarios.iter().collect();
        let chained = backend.evaluate_group(&refs);
        for (scenario, chained) in scenarios.iter().zip(&chained) {
            let cold = ResilientMvaBackend::default().evaluate(scenario).unwrap();
            let chained = chained.as_ref().unwrap();
            // Same solution within tolerance; iteration counts may differ.
            assert!((chained.speedup - cold.speedup).abs() < 1e-6 * cold.speedup);
        }
    }

    #[test]
    fn sim_backend_carries_interval_and_replication_count() {
        let s = scenario(4);
        let eval = SimBackend::default().evaluate(&s).unwrap();
        assert_eq!(eval.backend, BackendId::Sim);
        assert_eq!(eval.provenance.replications, 3);
        assert!(eval.speedup_half_width.unwrap() > 0.0);
        assert!(eval.memory_utilization.unwrap() > 0.0);
        // Simulation brackets the MVA estimate loosely.
        let mva = MvaBackend.evaluate(&s).unwrap();
        assert!((eval.speedup - mva.speedup).abs() / mva.speedup < 0.1);
    }

    #[test]
    fn sim_backend_is_thread_count_invariant() {
        let s = scenario(2);
        let serial = SimBackend { exec: ExecOptions::SERIAL }.evaluate(&s).unwrap();
        let parallel = SimBackend { exec: ExecOptions::with_threads(4) }.evaluate(&s).unwrap();
        assert_eq!(serial.speedup.to_bits(), parallel.speedup.to_bits());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn gtpn_backend_reports_state_count() {
        let s = scenario(3);
        let eval = GtpnBackend::default().evaluate(&s).unwrap();
        assert_eq!(eval.backend, BackendId::Gtpn);
        assert!(eval.provenance.states > 0);
        assert!(eval.q_bus.is_some());
        let mva = MvaBackend.evaluate(&s).unwrap();
        assert!((eval.speedup - mva.speedup).abs() / mva.speedup < 0.1);
    }

    #[test]
    fn gtpn_state_budget_failure_is_typed() {
        let mut s = scenario(3);
        s.gtpn.max_states = 4;
        let err = GtpnBackend::default().evaluate(&s).unwrap_err();
        assert!(matches!(err, EvalError::Failed { backend: BackendId::Gtpn, .. }), "{err}");
    }

    #[test]
    fn cost_estimates_rank_backends_sensibly() {
        let s = scenario(8);
        let mva = MvaBackend.cost_estimate(&s);
        let sim = SimBackend::default().cost_estimate(&s);
        let gtpn = GtpnBackend::default().cost_estimate(&s);
        assert!(mva < sim, "{mva} vs {sim}");
        assert!(sim < gtpn, "{sim} vs {gtpn}");
    }
}
