//! The unified evaluation engine: one [`Scenario`]/[`Evaluator`] API over
//! the MVA, the resilient MVA, the discrete-event simulator and the GTPN.
//!
//! Before this module, each consumer hand-wired the three model stacks:
//! the CLI built `MvaModel`s, `SimConfig`s and `CoherenceNet`s with its
//! own glue, the examples with slightly different glue, and nothing
//! remembered work it had already done. The engine replaces that with
//! three pieces:
//!
//! * [`Scenario`] — a complete, hashable description of one evaluation
//!   (protocol, workload, `N`, backend knobs) with a canonical
//!   serialization (`snoop-scenario-v1`) and blessed conversions
//!   ([`Scenario::to_mva_model`], [`Scenario::to_sim_config`],
//!   [`Scenario::to_coherence_net`]) — the only supported paths from a
//!   description to a concrete model;
//! * [`Evaluator`] — the backend trait, implemented by [`MvaBackend`],
//!   [`ResilientMvaBackend`], [`SimBackend`] and [`GtpnBackend`], all
//!   returning the common [`Evaluation`] currency with provenance;
//! * [`Engine`] — a batch planner that dedups jobs against a bounded
//!   content-addressed [`ResultCache`] (with an optional JSON spill
//!   file), groups sweep-adjacent MVA work so a family shares one model
//!   build (and, opt-in, warm starts), and fans residual work through the
//!   deterministic parallel executor — batched results are bit-identical
//!   to one-at-a-time evaluation at any thread count.
//!
//! # Example
//!
//! ```
//! use snoop_mva::engine::{Engine, MvaBackend, Scenario};
//! use snoop_protocol::ModSet;
//! use snoop_workload::params::SharingLevel;
//!
//! let engine = Engine::new().with_backend(MvaBackend);
//! let scenarios: Vec<Scenario> = [1, 5, 10]
//!     .map(|n| Scenario::appendix_a(ModSet::new(), SharingLevel::Five, n))
//!     .to_vec();
//! let evals = engine.evaluate_batch_ok(&scenarios);
//! assert_eq!(evals.len(), 3);
//! // Table 4.1(a): MVA speedup 5.30 at N = 10, 5% sharing.
//! assert!((evals[2].speedup - 5.30).abs() < 0.15);
//! // Re-evaluating anything already seen is a cache hit.
//! assert!(engine.evaluate(&scenarios[0])[0].result.as_ref().unwrap().provenance.cached);
//! ```

mod backends;
mod batch;
mod cache;
mod evaluation;
mod scenario;

pub mod series;

pub use backends::{Evaluator, GtpnBackend, MvaBackend, ResilientMvaBackend, SimBackend};
pub use batch::{Engine, EngineResult, SharedEngine};
pub use cache::{
    CacheLoadError, CacheStats, LoadOutcome, ResultCache, CACHE_SCHEMA, DEFAULT_CAPACITY,
    LEGACY_CACHE_SCHEMA,
};
// The durable second cache tier (re-exported so engine users don't need
// a direct snoop-store dependency).
pub use snoop_store::{DiskStore, RecoveryReport, StoreConfig, StoreError, StoreStats};
pub use evaluation::{BackendId, EvalError, Evaluation, Provenance};
pub use scenario::{GtpnSettings, Scenario, SimSettings, SolverSettings, SCHEMA};
pub use series::EvaluationSeries;
