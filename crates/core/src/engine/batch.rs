//! The [`Engine`]: batches scenarios over backends, dedups against the
//! content-addressed cache, groups sweep-adjacent work and fans the rest
//! through the deterministic parallel executor.
//!
//! A batch run proceeds in four phases:
//!
//! 1. **enumerate** — every (scenario, backend) pair becomes a job with a
//!    content key `"<backend>:<hash>"`;
//! 2. **dedup** — each job is looked up in the [`ResultCache`] (every
//!    lookup counts toward hit/miss stats); only the first job per unique
//!    missing key is computed;
//! 3. **group** — missing work is grouped by the backend's
//!    [`Evaluator::group_key`] and ordered by system size, so an MVA
//!    family shares one model build and the resilient backend can chain
//!    warm starts along a sweep;
//! 4. **execute** — groups run through [`snoop_numeric::exec::par_map`];
//!    within a group, members run sequentially in size order. Results are
//!    scattered back to all duplicate jobs and returned in input order.
//!
//! Because `par_map` preserves ordering and every backend is
//! deterministic, a batched run is result-identical to evaluating each
//! job one at a time — at 1, 2 or 8 threads.

use std::collections::HashMap;
use std::sync::Arc;

use snoop_numeric::exec::{par_map, ExecOptions};
use snoop_numeric::json::JsonValue;
use snoop_numeric::probe::trace;
use snoop_store::DiskStore;

use super::backends::Evaluator;
use super::cache::{CacheStats, ResultCache};
use super::evaluation::{BackendId, EvalError, Evaluation};
use super::scenario::Scenario;

/// The outcome of one (scenario, backend) job of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineResult {
    /// Index of the scenario in the submitted batch.
    pub scenario: usize,
    /// The backend that (would have) produced the value.
    pub backend: BackendId,
    /// The content-addressed cache key of the job.
    pub key: String,
    /// The evaluation, or why it could not be produced.
    pub result: Result<Evaluation, EvalError>,
}

/// One unit of work for the executor: a run of same-group jobs on one
/// backend, in evaluation order.
#[derive(Debug)]
struct WorkItem {
    backend: usize,
    /// `(job index of the first-seen job with this key, scenario index)`
    /// per member, already in evaluation (size) order.
    members: Vec<(usize, usize)>,
}

/// Evaluates batches of [`Scenario`]s across a set of backends with
/// content-addressed caching.
///
/// # Example
///
/// ```
/// use snoop_mva::engine::{Engine, MvaBackend, Scenario};
/// use snoop_protocol::ModSet;
/// use snoop_workload::params::SharingLevel;
///
/// let engine = Engine::new().with_backend(MvaBackend);
/// let scenario = Scenario::appendix_a(ModSet::new(), SharingLevel::Five, 10);
/// let results = engine.evaluate_batch(&[scenario]);
/// let eval = results[0].result.as_ref().unwrap();
/// assert!((eval.speedup - 5.30).abs() < 0.15); // Table 4.1(a)
/// // A repeated batch is served from the cache.
/// assert!(engine.evaluate_batch(&[scenario])[0].result.as_ref().unwrap().provenance.cached);
/// ```
pub struct Engine {
    backends: Vec<Box<dyn Evaluator>>,
    cache: ResultCache,
    /// Optional second cache tier: the durable on-disk store. Misses in
    /// the in-memory cache read through to it; computed results write
    /// through as each group completes, so a killed sweep keeps them.
    store: Option<Arc<DiskStore>>,
    exec: ExecOptions,
}

/// A thread-safe shared handle to one warm engine. `evaluate_batch`
/// takes `&self` and every tier locks internally (cache mutex, store
/// atomics), so one engine can serve concurrent callers — this is the
/// handle the serve daemon's request workers share.
pub type SharedEngine = Arc<Engine>;

// Compile-time proof that the shared handle is actually shareable: any
// field change that costs `Engine` its `Send + Sync` fails here, not in
// a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>()
};

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with no backends, a default-capacity cache and serial
    /// execution.
    pub fn new() -> Self {
        Engine {
            backends: Vec::new(),
            cache: ResultCache::default(),
            store: None,
            exec: ExecOptions::SERIAL,
        }
    }

    /// Adds a backend. Batch results are ordered scenario-major, then by
    /// backend registration order.
    pub fn with_backend(mut self, backend: impl Evaluator + 'static) -> Self {
        self.backends.push(Box::new(backend));
        self
    }

    /// Sets the executor for residual (uncached) work.
    pub fn with_exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// Replaces the cache with an empty one of the given capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ResultCache::new(capacity);
        self
    }

    /// Attaches a durable store as a second cache tier. In-memory misses
    /// read through to it; each computed group writes through as soon as
    /// it completes, so a killed sweep keeps everything finished so far.
    /// Several engine processes may share one store: each takes advisory
    /// claims on the groups it computes, and groups claimed by a live
    /// peer are deferred — served from the store if the peer published
    /// them in time, recomputed locally otherwise (never waited on).
    pub fn with_store(mut self, store: Arc<DiskStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.as_ref()
    }

    /// The registered backends' identities, in registration order.
    pub fn backend_ids(&self) -> Vec<BackendId> {
        self.backends.iter().map(|b| b.id()).collect()
    }

    /// The engine's result cache (for stats, spill and preloading).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Current cache accounting.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The cache key of one (scenario, backend) job.
    pub fn job_key(backend: BackendId, scenario: &Scenario) -> String {
        format!("{}:{:016x}", backend, scenario.content_hash())
    }

    /// Evaluates one scenario on every registered backend.
    pub fn evaluate(&self, scenario: &Scenario) -> Vec<EngineResult> {
        self.evaluate_batch(std::slice::from_ref(scenario))
    }

    /// Evaluates every scenario on every registered backend, returning one
    /// [`EngineResult`] per (scenario, backend) pair, scenario-major, in
    /// input order.
    ///
    /// Duplicate jobs (same content key) are computed once; repeated jobs
    /// within one batch still count as cache misses because the value was
    /// not available when the batch started.
    pub fn evaluate_batch(&self, scenarios: &[Scenario]) -> Vec<EngineResult> {
        let _span = snoop_numeric::probe::span("engine.batch");
        let _trace = trace::span_with("engine.batch", || {
            vec![
                ("scenarios", scenarios.len().to_string()),
                ("backends", self.backends.len().to_string()),
            ]
        });
        let stats_before = self.cache.stats();
        let store_before = self.store.as_ref().map(|s| s.stats());
        // Phase 1: enumerate jobs scenario-major.
        let mut jobs: Vec<(usize, usize, String)> = Vec::new();
        for (si, scenario) in scenarios.iter().enumerate() {
            let hash = scenario.content_hash();
            for (bi, backend) in self.backends.iter().enumerate() {
                jobs.push((si, bi, format!("{}:{hash:016x}", backend.id())));
            }
        }

        // Phase 2: consult the cache; keep the first job per missing key.
        // Every job gets a timeline span tagged with its identity and
        // cache outcome (the compute time of misses shows up later under
        // the `engine.group` / backend spans).
        let mut outcomes: Vec<Option<Result<Evaluation, EvalError>>> = Vec::new();
        let mut first_seen: HashMap<&str, usize> = HashMap::new();
        for (ji, (si, bi, key)) in jobs.iter().enumerate() {
            let scenario = &scenarios[*si];
            let mut job_trace = trace::span_with("engine.job", || {
                vec![
                    ("scenario", format!("{:016x}", scenario.content_hash())),
                    ("family", format!("{:016x}", scenario.family_hash())),
                    ("backend", self.backends[*bi].id().to_string()),
                    ("n", scenario.n.to_string()),
                ]
            });
            // The consult is timed only while collection is on, so the
            // lookup histogram costs nothing in normal runs (and, like
            // every probe value, never feeds back into the solve).
            let consult_started =
                snoop_numeric::probe::enabled().then(std::time::Instant::now);
            let hit_tier = match self.cache.get(key) {
                Some(hit) => {
                    job_trace.arg("cache", "hit".to_string());
                    outcomes.push(Some(Ok(hit)));
                    Some("engine.cache.hit_ms")
                }
                // In-memory miss: read through to the durable store. A
                // store hit fills the in-memory tier, so later duplicates
                // in this batch hit there.
                None => match self.store_get(key) {
                    Some(eval) => {
                        job_trace.arg("cache", "store".to_string());
                        outcomes.push(Some(Ok(eval)));
                        Some("store.hit_ms")
                    }
                    None => {
                        job_trace.arg("cache", "miss".to_string());
                        first_seen.entry(key.as_str()).or_insert(ji);
                        outcomes.push(None);
                        None
                    }
                },
            };
            if let (Some(started), Some(series)) = (consult_started, hit_tier) {
                snoop_numeric::probe::hist_record(
                    series,
                    started.elapsed().as_secs_f64() * 1e3,
                );
            }
        }
        snoop_numeric::probe::counter_add("engine.jobs", jobs.len() as u64);

        // Phase 3: group the unique missing jobs per backend.
        let mut items: Vec<WorkItem> = Vec::new();
        let mut group_index: HashMap<(usize, u64), usize> = HashMap::new();
        let mut missing: Vec<usize> = first_seen.values().copied().collect();
        missing.sort_unstable(); // deterministic first-seen order
        for ji in missing {
            let (si, bi, _) = jobs[ji];
            match self.backends[bi].group_key(&scenarios[si]) {
                Some(g) => {
                    let slot = *group_index.entry((bi, g)).or_insert_with(|| {
                        items.push(WorkItem { backend: bi, members: Vec::new() });
                        items.len() - 1
                    });
                    items[slot].members.push((ji, si));
                }
                None => items.push(WorkItem { backend: bi, members: vec![(ji, si)] }),
            }
        }
        // Order group members by system size so adjacent solves can share
        // warm state; ties keep first-seen order.
        for item in &mut items {
            item.members.sort_by_key(|&(ji, si)| (scenarios[si].n, ji));
        }

        // When a store is shared, take an advisory claim per work item
        // (token: the first member's job key — unique per item and
        // identical across processes running the same batch). Items a
        // live peer already claimed are deferred, not duplicated.
        let (run_now, deferred, claims) = match &self.store {
            Some(store) => {
                let mut now = Vec::new();
                let mut later = Vec::new();
                let mut claims = Vec::new();
                for item in items {
                    match store.try_claim(&jobs[item.members[0].0].2) {
                        Some(claim) => {
                            claims.push(claim);
                            now.push(item);
                        }
                        None => later.push(item),
                    }
                }
                (now, later, claims)
            }
            None => (items, Vec::new(), Vec::new()),
        };

        // Phase 4: execute. One work item is one executor task; members
        // run sequentially inside it. Persistence happens *inside* the
        // task, per group, so a process killed mid-batch keeps every
        // group completed before the kill (the durability boundary the
        // --resume mode builds on).
        let mut executed_members = 0u64;
        let execute = |item: &WorkItem| {
            let members: Vec<&Scenario> =
                item.members.iter().map(|&(_, si)| &scenarios[si]).collect();
            let _trace = trace::span_with("engine.group", || {
                vec![
                    ("backend", self.backends[item.backend].id().to_string()),
                    ("members", members.len().to_string()),
                    ("family", format!("{:016x}", members[0].family_hash())),
                ]
            });
            let results = self.backends[item.backend].evaluate_group(&members);
            if snoop_numeric::probe::enabled() {
                // Per-backend wall-time distribution. The registry's
                // histogram merge is order-independent, so concurrent
                // executor tasks still snapshot bit-identically.
                let series = format!("engine.job_ms.{}", self.backends[item.backend].id());
                for eval in results.iter().flatten() {
                    snoop_numeric::probe::hist_record(&series, eval.provenance.wall_ms);
                }
            }
            for (&(ji, _), result) in item.members.iter().zip(&results) {
                if let Ok(eval) = result {
                    self.cache.insert(&jobs[ji].2, eval.clone());
                    if let Some(store) = &self.store {
                        // Publish failures (ENOSPC, torn write) are
                        // absorbed: the result still returns in-memory,
                        // it just won't survive this process.
                        let _ = store.put(&jobs[ji].2, eval.to_json().as_bytes());
                    }
                }
            }
            results
        };
        let computed: Vec<Vec<Result<Evaluation, EvalError>>> =
            par_map(&run_now, &self.exec, execute);
        drop(claims);

        // Scatter the computed groups back to their first-seen jobs.
        let mut scatter = |items: &[WorkItem],
                           computed: Vec<Vec<Result<Evaluation, EvalError>>>,
                           outcomes: &mut Vec<Option<Result<Evaluation, EvalError>>>| {
            for (item, results) in items.iter().zip(computed) {
                debug_assert_eq!(item.members.len(), results.len());
                executed_members += item.members.len() as u64;
                for (&(ji, _), result) in item.members.iter().zip(results) {
                    outcomes[ji] = Some(result);
                }
            }
        };
        scatter(&run_now, computed, &mut outcomes);

        // Deferred items: a peer claimed them, so first poll the store —
        // anything the peer already published is served; anything still
        // missing is computed here (claims are advisory, a dead peer
        // must never stall the batch).
        if !deferred.is_empty() {
            let mut still_missing: Vec<WorkItem> = Vec::new();
            for mut item in deferred {
                item.members.retain(|&(ji, _)| match self.store_get(&jobs[ji].2) {
                    Some(eval) => {
                        outcomes[ji] = Some(Ok(eval));
                        false
                    }
                    None => true,
                });
                if !item.members.is_empty() {
                    still_missing.push(item);
                }
            }
            let recomputed = par_map(&still_missing, &self.exec, execute);
            scatter(&still_missing, recomputed, &mut outcomes);
        }

        for ji in 0..jobs.len() {
            if outcomes[ji].is_none() {
                let first = first_seen[jobs[ji].2.as_str()];
                outcomes[ji] = outcomes[first].clone();
            }
        }
        snoop_numeric::probe::counter_add("engine.computed", executed_members);

        // Fold this batch's cache accounting into the metrics snapshot
        // (counters are monotonic, so only the deltas are added).
        if snoop_numeric::probe::enabled() {
            let stats_after = self.cache.stats();
            snoop_numeric::probe::counter_add(
                "engine.cache.hits",
                stats_after.hits.saturating_sub(stats_before.hits),
            );
            snoop_numeric::probe::counter_add(
                "engine.cache.misses",
                stats_after.misses.saturating_sub(stats_before.misses),
            );
            snoop_numeric::probe::counter_add(
                "engine.cache.evictions",
                stats_after.evictions.saturating_sub(stats_before.evictions),
            );
            snoop_numeric::probe::record("engine.cache.entries", stats_after.entries as f64);
            if let (Some(store), Some(before)) = (&self.store, store_before) {
                let after = store.stats();
                snoop_numeric::probe::counter_add(
                    "store.hits",
                    after.hits.saturating_sub(before.hits),
                );
                snoop_numeric::probe::counter_add(
                    "store.misses",
                    after.misses.saturating_sub(before.misses),
                );
                snoop_numeric::probe::counter_add(
                    "store.writes",
                    after.writes.saturating_sub(before.writes),
                );
                snoop_numeric::probe::counter_add(
                    "store.quarantined",
                    after.quarantined.saturating_sub(before.quarantined),
                );
            }
        }

        jobs.into_iter()
            .zip(outcomes)
            .map(|((si, bi, key), result)| {
                let backend = self.backends[bi].id();
                EngineResult {
                    scenario: si,
                    backend,
                    // Every enumerated job is resolved by the cache pass
                    // or the execute pass; if that invariant ever breaks,
                    // report it as a typed per-job error rather than
                    // panicking under a caller (CLI command or serve
                    // request handler).
                    result: result.unwrap_or_else(|| {
                        Err(EvalError::MissingResult { backend, scenario: key.clone() })
                    }),
                    key,
                }
            })
            .collect()
    }

    /// Looks `key` up in the durable store (when attached), decoding the
    /// stored JSON back into an [`Evaluation`] and filling the in-memory
    /// tier. The store itself quarantines checksum-level damage; an
    /// entry that passes the checksum but no longer parses (schema
    /// drift) reads as a miss and is recomputed and overwritten.
    fn store_get(&self, key: &str) -> Option<Evaluation> {
        let store = self.store.as_ref()?;
        let bytes = store.get(key)?;
        let eval = std::str::from_utf8(&bytes)
            .ok()
            .and_then(|text| JsonValue::parse(text).ok())
            .and_then(|doc| Evaluation::from_json(&doc).ok());
        match eval {
            Some(mut eval) => {
                self.cache.insert(key, eval.clone());
                eval.provenance.cached = true;
                Some(eval)
            }
            None => {
                snoop_numeric::probe::counter_add("store.decode_errors", 1);
                None
            }
        }
    }

    /// Convenience: evaluates a batch and returns only successful
    /// evaluations (in job order), logging nothing. Callers that need the
    /// per-job errors use [`Engine::evaluate_batch`].
    pub fn evaluate_batch_ok(&self, scenarios: &[Scenario]) -> Vec<Evaluation> {
        self.evaluate_batch(scenarios)
            .into_iter()
            .filter_map(|r| r.result.ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::backends::{GtpnBackend, MvaBackend, ResilientMvaBackend, SimBackend};
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::SharingLevel;

    fn scenario(n: usize) -> Scenario {
        let mut s = Scenario::appendix_a(ModSet::new(), SharingLevel::Five, n);
        s.sim.warmup_references = 300;
        s.sim.measured_references = 2_000;
        s
    }

    #[test]
    fn batch_results_are_scenario_major_and_complete() {
        let engine = Engine::new().with_backend(MvaBackend).with_backend(GtpnBackend::default());
        let scenarios = [scenario(2), scenario(3)];
        let results = engine.evaluate_batch(&scenarios);
        assert_eq!(results.len(), 4);
        let order: Vec<(usize, BackendId)> =
            results.iter().map(|r| (r.scenario, r.backend)).collect();
        assert_eq!(
            order,
            vec![
                (0, BackendId::Mva),
                (0, BackendId::Gtpn),
                (1, BackendId::Mva),
                (1, BackendId::Gtpn)
            ]
        );
        assert!(results.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn repeat_batch_is_served_entirely_from_cache() {
        let engine = Engine::new().with_backend(MvaBackend);
        let scenarios = [scenario(4), scenario(8)];
        let first = engine.evaluate_batch(&scenarios);
        assert!(first.iter().all(|r| !r.result.as_ref().unwrap().provenance.cached));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));

        let second = engine.evaluate_batch(&scenarios);
        assert!(second.iter().all(|r| r.result.as_ref().unwrap().provenance.cached));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
        // Cached values equal computed ones (equality ignores the flag).
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn duplicate_jobs_in_one_batch_compute_once_and_count_as_misses() {
        let engine = Engine::new().with_backend(MvaBackend);
        let scenarios = [scenario(4), scenario(8), scenario(4)];
        let results = engine.evaluate_batch(&scenarios);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 3, 2));
        assert_eq!(results[0].key, results[2].key);
        assert_eq!(results[0].result, results[2].result);
    }

    #[test]
    fn batched_equals_one_at_a_time_at_every_thread_count() {
        let scenarios = [scenario(2), scenario(5), scenario(3), scenario(8)];
        let serial: Vec<EngineResult> = scenarios
            .iter()
            .flat_map(|s| {
                Engine::new()
                    .with_backend(MvaBackend)
                    .with_backend(ResilientMvaBackend::default())
                    .evaluate(s)
            })
            .collect();
        for threads in [1, 2, 8] {
            let engine = Engine::new()
                .with_backend(MvaBackend)
                .with_backend(ResilientMvaBackend::default())
                .with_exec(ExecOptions::with_threads(threads));
            let batched = engine.evaluate_batch(&scenarios);
            assert_eq!(batched.len(), serial.len());
            for (b, s) in batched.iter().zip(&serial) {
                assert_eq!(b.key, s.key, "{threads} threads");
                let (b, s) = (b.result.as_ref().unwrap(), s.result.as_ref().unwrap());
                assert_eq!(b.speedup.to_bits(), s.speedup.to_bits(), "{threads} threads");
                assert_eq!(b.r.to_bits(), s.r.to_bits(), "{threads} threads");
                assert_eq!(b, s, "{threads} threads");
            }
        }
    }

    #[test]
    fn mixed_backend_batch_returns_one_result_per_pair() {
        let engine = Engine::new()
            .with_backend(MvaBackend)
            .with_backend(SimBackend::default())
            .with_backend(GtpnBackend::default());
        let scenarios = [scenario(2), scenario(3)];
        let results = engine.evaluate_batch(&scenarios);
        assert_eq!(results.len(), scenarios.len() * 3);
        for (si, _) in scenarios.iter().enumerate() {
            for backend in [BackendId::Mva, BackendId::Sim, BackendId::Gtpn] {
                let matching: Vec<_> = results
                    .iter()
                    .filter(|r| r.scenario == si && r.backend == backend)
                    .collect();
                assert_eq!(matching.len(), 1, "{backend} for scenario {si}");
                assert!(matching[0].result.is_ok());
            }
        }
    }

    #[test]
    fn errors_are_reported_per_job_and_not_cached() {
        let mut tiny = scenario(3);
        tiny.gtpn.max_states = 4; // forces a state-budget failure
        let engine = Engine::new().with_backend(MvaBackend).with_backend(GtpnBackend::default());
        let results = engine.evaluate_batch(&[tiny]);
        assert!(results[0].result.is_ok());
        assert!(matches!(
            results[1].result,
            Err(EvalError::Failed { backend: BackendId::Gtpn, .. })
        ));
        // Only the MVA success was cached; the GTPN failure is retried.
        assert_eq!(engine.cache_stats().entries, 1);
        let again = engine.evaluate_batch(&[tiny]);
        assert!(again[0].result.as_ref().unwrap().provenance.cached);
        assert!(again[1].result.is_err());
    }

    #[test]
    fn preloaded_spill_serves_hits_across_engines() {
        let first = Engine::new().with_backend(MvaBackend);
        first.evaluate_batch(&[scenario(4), scenario(8)]);
        let spill = first.cache().to_json();

        let second = Engine::new().with_backend(MvaBackend);
        assert_eq!(second.cache().load_json(&spill).unwrap().loaded, 2);
        let results = second.evaluate_batch(&[scenario(4), scenario(8)]);
        assert!(results.iter().all(|r| r.result.as_ref().unwrap().provenance.cached));
        let stats = second.cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 0));
    }

    fn fresh_store_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("snoop-engine-store-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_tier_serves_bit_identical_results_across_engines() {
        let dir = fresh_store_dir("roundtrip");
        let scenarios = [scenario(4), scenario(8)];

        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let first = Engine::new().with_backend(MvaBackend).with_store(Arc::clone(&store));
        let a = first.evaluate_batch(&scenarios);
        assert_eq!(store.stats().writes, 2, "write-through persists every success");

        // A separate engine (fresh in-memory cache, fresh store handle —
        // i.e. another process) computes nothing: everything reads
        // through from disk, bit-identical.
        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let second = Engine::new().with_backend(MvaBackend).with_store(Arc::clone(&store));
        let b = second.evaluate_batch(&scenarios);
        assert_eq!(store.stats().hits, 2);
        assert_eq!(store.stats().writes, 0, "nothing recomputed");
        for (x, y) in a.iter().zip(&b) {
            let (x, y) = (x.result.as_ref().unwrap(), y.result.as_ref().unwrap());
            assert_eq!(x, y);
            assert_eq!(x.speedup.to_bits(), y.speedup.to_bits());
            assert_eq!(x.r.to_bits(), y.r.to_bits());
            assert!(y.provenance.cached, "store hits carry the cached flag");
        }

        // Within the second engine, a repeat batch hits the in-memory
        // tier, not the disk again.
        second.evaluate_batch(&scenarios);
        assert_eq!(store.stats().hits, 2);
    }

    #[test]
    fn corrupt_store_entry_is_quarantined_and_recomputed() {
        let dir = fresh_store_dir("corrupt");
        let scenarios = [scenario(4)];
        {
            let store = Arc::new(DiskStore::open(&dir).unwrap());
            let engine = Engine::new().with_backend(MvaBackend).with_store(store);
            engine.evaluate_batch(&scenarios);
        }
        // Flip one payload bit in the only entry on disk.
        let entry = walk_entries(&dir.join("shards")).pop().expect("one entry");
        let mut bytes = std::fs::read(&entry).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        std::fs::write(&entry, &bytes).unwrap();

        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let engine = Engine::new().with_backend(MvaBackend).with_store(Arc::clone(&store));
        let results = engine.evaluate_batch(&scenarios);
        assert!(results[0].result.is_ok());
        assert!(!results[0].result.as_ref().unwrap().provenance.cached, "recomputed");
        let s = store.stats();
        assert_eq!((s.quarantined, s.writes), (1, 1), "damage costs one recompute");
        // The re-published entry serves the next engine.
        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let engine = Engine::new().with_backend(MvaBackend).with_store(Arc::clone(&store));
        assert!(engine.evaluate_batch(&scenarios)[0]
            .result
            .as_ref()
            .unwrap()
            .provenance
            .cached);
    }

    fn walk_entries(shards: &std::path::Path) -> Vec<std::path::PathBuf> {
        let mut found = Vec::new();
        for shard in std::fs::read_dir(shards).unwrap() {
            for file in std::fs::read_dir(shard.unwrap().path()).unwrap() {
                let path = file.unwrap().path();
                if path.extension().is_some_and(|e| e == "entry") {
                    found.push(path);
                }
            }
        }
        found
    }

    #[test]
    fn store_publish_failures_do_not_fail_the_batch() {
        use snoop_numeric::fault::{StorageFault, StoragePlan};
        let dir = fresh_store_dir("enospc");
        let store = DiskStore::open_with(
            &dir,
            snoop_store::StoreConfig::default(),
            snoop_store::FaultyFs::real(
                StoragePlan::new().with_fault(StorageFault::Enospc { op: 1 }),
            ),
        )
        .unwrap();
        let store = Arc::new(store);
        let engine = Engine::new().with_backend(MvaBackend).with_store(Arc::clone(&store));
        let results = engine.evaluate_batch(&[scenario(4)]);
        assert!(results[0].result.is_ok(), "the result still returns in-memory");
        assert_eq!(store.stats().write_errors, 1);
        // The next batch re-persists it (the write fault was one-shot).
        let second = Engine::new().with_backend(MvaBackend).with_store(Arc::clone(&store));
        assert!(second.evaluate_batch(&[scenario(4)])[0].result.is_ok());
        assert_eq!(store.stats().writes, 1);
    }

    #[test]
    fn groups_claimed_by_a_dead_peer_are_still_computed() {
        let dir = fresh_store_dir("claims");
        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let s = scenario(4);
        // A "peer" claims the group and never publishes (died mid-work,
        // within the staleness window).
        let _held = store.try_claim(&Engine::job_key(BackendId::Mva, &s)).unwrap();
        let engine = Engine::new().with_backend(MvaBackend).with_store(Arc::clone(&store));
        let results = engine.evaluate_batch(&[s]);
        let eval = results[0].result.as_ref().unwrap();
        assert!(!eval.provenance.cached, "deferred group was computed locally");
        assert_eq!(store.stats().claims_refused, 1);
        assert_eq!(store.stats().writes, 1, "and persisted");
    }

    #[test]
    fn engine_output_is_bit_identical_across_threads_with_histograms_enabled() {
        // The telemetry plane must stay observational: collecting job
        // wall-time and cache-latency histograms from concurrently
        // executing workers cannot perturb the solve.
        let _session = snoop_numeric::probe::session();
        let scenarios = [scenario(2), scenario(4), scenario(8), scenario(16)];
        let run = |threads: usize| {
            let engine = Engine::new()
                .with_backend(MvaBackend)
                .with_exec(ExecOptions::with_threads(threads));
            engine.evaluate_batch(&scenarios)
        };
        let serial = run(1);
        for threads in [2, 8] {
            let parallel = run(threads);
            for (a, b) in serial.iter().zip(&parallel) {
                let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{threads} threads");
                assert_eq!(a.provenance.iterations, b.provenance.iterations);
            }
        }
        // And collection really ran: every computed job fed the
        // per-backend wall-time histogram (3 cold runs x 4 scenarios).
        let snap = snoop_numeric::probe::snapshot();
        let hist = snap.hists.iter().find(|(n, _)| n == "engine.job_ms.mva");
        assert!(hist.is_some_and(|(_, h)| h.count() == 12), "job histogram populated");
    }

    #[test]
    fn warm_chained_resilient_backend_is_deterministic_across_threads() {
        let scenarios = [scenario(2), scenario(4), scenario(8), scenario(16)];
        let run = |threads: usize| {
            let engine = Engine::new()
                .with_backend(ResilientMvaBackend {
                    warm_start_chains: true,
                    ..Default::default()
                })
                .with_exec(ExecOptions::with_threads(threads));
            engine.evaluate_batch(&scenarios)
        };
        let serial = run(1);
        for threads in [2, 8] {
            let parallel = run(threads);
            for (a, b) in serial.iter().zip(&parallel) {
                let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{threads} threads");
                assert_eq!(a.provenance.iterations, b.provenance.iterations);
            }
        }
    }
}
