//! The common result type every backend returns, plus backend identity
//! and the engine's error type.

use std::fmt;
use std::str::FromStr;

use snoop_numeric::json::{format_f64, JsonValue};

/// Identity of an evaluation backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendId {
    /// The customized MVA fixed point (the paper's primary model).
    Mva,
    /// The MVA behind the resilient escalation ladder.
    ResilientMva,
    /// The discrete-event simulator with independent replications.
    Sim,
    /// The generalized timed Petri net (exact for small `N`).
    Gtpn,
}

impl BackendId {
    /// Every backend, in canonical order.
    pub const ALL: [BackendId; 4] =
        [BackendId::Mva, BackendId::ResilientMva, BackendId::Sim, BackendId::Gtpn];
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendId::Mva => "mva",
            BackendId::ResilientMva => "mva-resilient",
            BackendId::Sim => "sim",
            BackendId::Gtpn => "gtpn",
        })
    }
}

impl FromStr for BackendId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "mva" => Ok(BackendId::Mva),
            "mva-resilient" | "resilient" | "resilient-mva" => Ok(BackendId::ResilientMva),
            "sim" | "simulation" => Ok(BackendId::Sim),
            "gtpn" | "petri" => Ok(BackendId::Gtpn),
            other => Err(format!(
                "unknown backend {other:?}, expected one of mva, mva-resilient, sim, gtpn"
            )),
        }
    }
}

/// Why an evaluation could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The scenario itself is malformed (bad workload, bad batch file).
    InvalidScenario(String),
    /// The backend cannot evaluate this scenario in principle.
    Unsupported {
        /// The backend that declined.
        backend: BackendId,
        /// Why it declined.
        reason: String,
    },
    /// The backend ran and failed (non-convergence, state-space blow-up…).
    Failed {
        /// The backend that failed.
        backend: BackendId,
        /// The underlying error, verbatim.
        reason: String,
    },
    /// The engine finished a batch without producing a result for a job
    /// it enumerated. This is an internal invariant violation, reported
    /// as a typed error so callers (CLI commands, the serve daemon) can
    /// surface it per job instead of panicking.
    MissingResult {
        /// The backend the job was enumerated for.
        backend: BackendId,
        /// A short description of the scenario (content hash or label).
        scenario: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidScenario(reason) => write!(f, "invalid scenario: {reason}"),
            EvalError::Unsupported { backend, reason } => {
                write!(f, "{backend} cannot evaluate this scenario: {reason}")
            }
            EvalError::Failed { backend, reason } => write!(f, "{backend} failed: {reason}"),
            EvalError::MissingResult { backend, scenario } => write!(
                f,
                "internal invariant violated: no result for scenario {scenario} on backend \
                 {backend}; please report this"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// How an [`Evaluation`] was produced.
///
/// Equality ignores `wall_ms` and `cached`: they describe the *run*, not
/// the *result*, and must not break the determinism guarantees the engine
/// tests assert.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Fixed-point iterations (MVA: total across resilient attempts;
    /// 0 for backends without an iteration count).
    pub iterations: usize,
    /// Independent simulation replications (0 for analytic backends).
    pub replications: usize,
    /// GTPN reachable states (0 for other backends).
    pub states: usize,
    /// Winning resilient strategy, when the escalation ladder ran.
    pub strategy: Option<String>,
    /// Wall-clock milliseconds the evaluation took (excluded from `==`).
    pub wall_ms: f64,
    /// Whether this value was served from the result cache (excluded
    /// from `==`).
    pub cached: bool,
    /// Milliseconds the request spent queued before a worker picked it
    /// up (serve daemon only; 0 for batch runs; excluded from `==` and
    /// from the canonical JSON form — it describes the run, not the
    /// result).
    pub queue_wait_ms: f64,
}

impl PartialEq for Provenance {
    fn eq(&self, other: &Self) -> bool {
        self.iterations == other.iterations
            && self.replications == other.replications
            && self.states == other.states
            && self.strategy == other.strategy
    }
}

impl Provenance {
    /// A provenance with only the deterministic cost counters set.
    pub fn new(iterations: usize, replications: usize, states: usize) -> Self {
        Provenance {
            iterations,
            replications,
            states,
            strategy: None,
            wall_ms: 0.0,
            cached: false,
            queue_wait_ms: 0.0,
        }
    }
}

/// The common currency of the engine: one backend's steady-state answer
/// for one [`crate::engine::Scenario`].
///
/// Fields every backend can produce are plain; measures only some
/// backends report are `Option`s (`None` means "this backend does not
/// estimate that quantity", never "zero").
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The backend that produced this value.
    pub backend: BackendId,
    /// Number of processors the scenario was evaluated at.
    pub n: usize,
    /// Mean time between memory requests `R` (cycles).
    pub r: f64,
    /// Speedup `N·(τ + T_supply)/R`.
    pub speedup: f64,
    /// Student-t half-width on the speedup (simulation only).
    pub speedup_half_width: Option<f64>,
    /// Bus utilization.
    pub bus_utilization: f64,
    /// Memory-module utilization (MVA and simulation).
    pub memory_utilization: Option<f64>,
    /// Mean bus waiting time (MVA and simulation).
    pub w_bus: Option<f64>,
    /// Mean memory waiting time (MVA only).
    pub w_mem: Option<f64>,
    /// Mean bus queue length (MVA and GTPN).
    pub q_bus: Option<f64>,
    /// How the value was produced.
    pub provenance: Provenance,
}

impl Evaluation {
    /// One deterministic summary line (no timings, no cache state), used
    /// by `snoop eval` so repeated runs are byte-identical.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{:<13} N={:<4} speedup={:.6} U_bus={:.6} R={:.6}",
            self.backend, self.n, self.speedup, self.bus_utilization, self.r
        );
        if let Some(hw) = self.speedup_half_width {
            line.push_str(&format!(" ±{hw:.6}"));
        }
        if let Some(u) = self.memory_utilization {
            line.push_str(&format!(" U_mem={u:.6}"));
        }
        if let Some(q) = self.q_bus {
            line.push_str(&format!(" Q_bus={q:.6}"));
        }
        if self.provenance.states > 0 {
            line.push_str(&format!(" states={}", self.provenance.states));
        }
        line
    }

    /// Canonical JSON form, used by the cache spill file. Floats use the
    /// shortest round-trip form, so `from_json` restores them bit-exactly.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(v) => format_f64(v),
            None => "null".to_string(),
        };
        let strategy = match &self.provenance.strategy {
            Some(s) => format!("{:?}", s),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"backend\":\"{}\",\"n\":{},\"r\":{},\"speedup\":{},",
                "\"speedup_half_width\":{},\"bus_utilization\":{},",
                "\"memory_utilization\":{},\"w_bus\":{},\"w_mem\":{},\"q_bus\":{},",
                "\"iterations\":{},\"replications\":{},\"states\":{},\"strategy\":{}}}"
            ),
            self.backend,
            self.n,
            format_f64(self.r),
            format_f64(self.speedup),
            opt(self.speedup_half_width),
            format_f64(self.bus_utilization),
            opt(self.memory_utilization),
            opt(self.w_bus),
            opt(self.w_mem),
            opt(self.q_bus),
            self.provenance.iterations,
            self.provenance.replications,
            self.provenance.states,
            strategy,
        )
    }

    /// Parses the output of [`Evaluation::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(value: &JsonValue) -> Result<Evaluation, String> {
        let field = |name: &str| value.get(name).ok_or_else(|| format!("missing \"{name}\""));
        let req_f64 = |name: &str| {
            field(name)?.as_f64().ok_or_else(|| format!("\"{name}\" must be a number"))
        };
        let req_usize = |name: &str| {
            field(name)?
                .as_usize()
                .ok_or_else(|| format!("\"{name}\" must be a non-negative integer"))
        };
        let opt_f64 = |name: &str| -> Result<Option<f64>, String> {
            match field(name)? {
                JsonValue::Null => Ok(None),
                v => v.as_f64().map(Some).ok_or_else(|| format!("\"{name}\" must be a number")),
            }
        };
        let backend: BackendId = field("backend")?
            .as_str()
            .ok_or("\"backend\" must be a string")?
            .parse()?;
        let strategy = match field("strategy")? {
            JsonValue::Null => None,
            v => Some(v.as_str().ok_or("\"strategy\" must be a string")?.to_string()),
        };
        Ok(Evaluation {
            backend,
            n: req_usize("n")?,
            r: req_f64("r")?,
            speedup: req_f64("speedup")?,
            speedup_half_width: opt_f64("speedup_half_width")?,
            bus_utilization: req_f64("bus_utilization")?,
            memory_utilization: opt_f64("memory_utilization")?,
            w_bus: opt_f64("w_bus")?,
            w_mem: opt_f64("w_mem")?,
            q_bus: opt_f64("q_bus")?,
            provenance: Provenance {
                iterations: req_usize("iterations")?,
                replications: req_usize("replications")?,
                states: req_usize("states")?,
                strategy,
                wall_ms: 0.0,
                cached: false,
                queue_wait_ms: 0.0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Evaluation {
        Evaluation {
            backend: BackendId::Mva,
            n: 10,
            r: 6.602_5,
            speedup: 5.299_123_456_789,
            speedup_half_width: None,
            bus_utilization: 0.871_2,
            memory_utilization: Some(0.205),
            w_bus: Some(1.31),
            w_mem: Some(0.04),
            q_bus: Some(1.77),
            provenance: Provenance {
                iterations: 42,
                replications: 0,
                states: 0,
                strategy: Some("plain".to_string()),
                wall_ms: 0.135,
                cached: false,
                queue_wait_ms: 0.0,
            },
        }
    }

    #[test]
    fn backend_ids_round_trip_through_display() {
        for id in BackendId::ALL {
            assert_eq!(id.to_string().parse::<BackendId>().unwrap(), id);
        }
        assert_eq!("resilient".parse::<BackendId>().unwrap(), BackendId::ResilientMva);
        assert!("bogus".parse::<BackendId>().is_err());
    }

    #[test]
    fn equality_ignores_wall_time_and_cache_state() {
        let a = sample();
        let mut b = sample();
        b.provenance.wall_ms = 99.0;
        b.provenance.cached = true;
        assert_eq!(a, b);
        b.provenance.iterations += 1;
        assert_ne!(a, b);
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        for eval in [
            sample(),
            Evaluation {
                backend: BackendId::Sim,
                speedup_half_width: Some(0.023_4),
                w_mem: None,
                q_bus: None,
                provenance: Provenance::new(0, 5, 0),
                ..sample()
            },
        ] {
            let text = eval.to_json();
            let parsed = Evaluation::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, eval);
            assert_eq!(parsed.speedup.to_bits(), eval.speedup.to_bits());
            assert_eq!(parsed.to_json(), text);
        }
    }

    #[test]
    fn summary_is_deterministic_and_readable() {
        let line = sample().summary();
        assert!(line.contains("mva"), "{line}");
        assert!(line.contains("speedup=5.299123"), "{line}");
        assert!(!line.contains("ms"), "{line}");
        assert_eq!(line, sample().summary());
    }

    #[test]
    fn errors_render_their_backend() {
        let e = EvalError::Failed { backend: BackendId::Gtpn, reason: "state explosion".into() };
        assert_eq!(e.to_string(), "gtpn failed: state explosion");
        let u = EvalError::Unsupported {
            backend: BackendId::Sim,
            reason: "needs two replications".into(),
        };
        assert!(u.to_string().contains("sim cannot evaluate"));
    }
}
