//! Series of engine [`Evaluation`]s and the table/CSV/gnuplot renderers
//! the CLI's `table`, `figure` and `sweep` commands print.
//!
//! The renderers here are byte-identical to the legacy
//! [`crate::report`] renderers over [`crate::sweep::SpeedupSeries`] for
//! MVA-produced points, so rewiring the CLI onto the engine changed no
//! output.

use std::fmt::Write as _;

use snoop_protocol::ModSet;
use snoop_workload::params::SharingLevel;

use super::evaluation::Evaluation;

/// Evaluations of one (protocol, sharing level) across system sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationSeries {
    /// The protocol evaluated.
    pub mods: ModSet,
    /// The sharing level the workload came from.
    pub sharing: SharingLevel,
    /// One evaluation per system size, in sweep order.
    pub points: Vec<Evaluation>,
}

/// Renders series as a Table-4.1-style fixed-width table: one row per
/// (sharing level, protocol) with speedups across `N`.
pub fn speedup_table(title: &str, series: &[EvaluationSeries]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if series.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let _ = write!(out, "{:<10} {:<10}", "sharing", "protocol");
    for p in &series[0].points {
        let _ = write!(out, " {:>7}", p.n);
    }
    let _ = writeln!(out);
    for s in series {
        let _ = write!(out, "{:<10} {:<10}", s.sharing.to_string(), s.mods.to_string());
        for p in &s.points {
            let _ = write!(out, " {:>7.3}", p.speedup);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders series as CSV:
/// `protocol,sharing,n,speedup,bus_utilization,memory_utilization,w_bus,r`.
///
/// Measures a backend does not report render as `NaN` (the MVA fills
/// every column).
pub fn speedup_csv(series: &[EvaluationSeries]) -> String {
    let mut out =
        String::from("protocol,sharing,n,speedup,bus_utilization,memory_utilization,w_bus,r\n");
    for s in series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
                s.mods,
                s.sharing,
                p.n,
                p.speedup,
                p.bus_utilization,
                p.memory_utilization.unwrap_or(f64::NAN),
                p.w_bus.unwrap_or(f64::NAN),
                p.r
            );
        }
    }
    out
}

/// Renders a gnuplot script (with inline data blocks) that draws the
/// series as a Figure-4.1-style plot.
pub fn gnuplot_script(title: &str, series: &[EvaluationSeries]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "set terminal svg size 800,560 dynamic");
    let _ = writeln!(out, "set output 'figure.svg'");
    let _ = writeln!(out, "set title {title:?}");
    let _ = writeln!(out, "set xlabel 'Number of processors'");
    let _ = writeln!(out, "set ylabel 'Speedup'");
    let _ = writeln!(out, "set key bottom right");
    let _ = writeln!(out, "set grid");
    for (i, s) in series.iter().enumerate() {
        let _ = writeln!(out, "$data{i} << EOD");
        for p in &s.points {
            let _ = writeln!(out, "{} {}", p.n, p.speedup);
        }
        let _ = writeln!(out, "EOD");
    }
    let plots: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!("$data{i} using 1:2 with linespoints title '{} {}'", s.mods, s.sharing)
        })
        .collect();
    let _ = writeln!(out, "plot {}", plots.join(", \\\n     "));
    out
}

#[cfg(test)]
mod tests {
    use super::super::backends::MvaBackend;
    use super::super::batch::Engine;
    use super::super::scenario::Scenario;
    use super::*;
    use crate::report;
    use crate::solver::SolverOptions;
    use crate::sweep::speedup_series;

    /// Builds the same series through the legacy sweep and the engine.
    fn both_paths(sizes: &[usize]) -> (Vec<crate::sweep::SpeedupSeries>, Vec<EvaluationSeries>) {
        let legacy = vec![speedup_series(
            ModSet::new(),
            SharingLevel::Five,
            sizes,
            &SolverOptions::default(),
        )
        .unwrap()];
        let engine = Engine::new().with_backend(MvaBackend);
        let scenarios: Vec<Scenario> = sizes
            .iter()
            .map(|&n| Scenario::appendix_a(ModSet::new(), SharingLevel::Five, n))
            .collect();
        let points = engine.evaluate_batch_ok(&scenarios);
        assert_eq!(points.len(), sizes.len());
        let series =
            vec![EvaluationSeries { mods: ModSet::new(), sharing: SharingLevel::Five, points }];
        (legacy, series)
    }

    #[test]
    fn table_matches_the_legacy_renderer_byte_for_byte() {
        let (legacy, engine) = both_paths(&[1, 5, 10]);
        assert_eq!(
            report::speedup_table("Table 4.1(a)", &legacy),
            speedup_table("Table 4.1(a)", &engine)
        );
    }

    #[test]
    fn csv_matches_the_legacy_renderer_byte_for_byte() {
        let (legacy, engine) = both_paths(&[1, 5, 10]);
        assert_eq!(report::speedup_csv(&legacy), speedup_csv(&engine));
    }

    #[test]
    fn gnuplot_matches_the_legacy_renderer_byte_for_byte() {
        let (legacy, engine) = both_paths(&[1, 5, 10]);
        assert_eq!(
            report::gnuplot_script("Figure 4.1", &legacy),
            gnuplot_script("Figure 4.1", &engine)
        );
    }

    #[test]
    fn empty_series_render_a_placeholder() {
        assert!(speedup_table("t", &[]).contains("(no data)"));
    }
}
