//! [`Scenario`]: the single blessed description of one evaluation.
//!
//! Every model in the repository — the MVA equations, the discrete-event
//! simulator, the GTPN — answers the same question: *given a protocol, a
//! workload and a system size, what are the steady-state performance
//! measures?* A `Scenario` captures that question once, with a **stable
//! canonical serialization** (schema [`SCHEMA`]) and a 64-bit FNV-1a
//! **content hash** over it, so results can be cached, deduplicated and
//! compared across backends. The three `to_*` conversions here are the
//! only blessed paths from a scenario to a concrete model configuration.

use snoop_gtpn::models::coherence::CoherenceNet;
use snoop_numeric::json::{format_f64, JsonValue};
use snoop_protocol::ModSet;
use snoop_sim::SimConfig;
use snoop_workload::params::{SharingLevel, WorkloadParams};

use super::evaluation::{BackendId, EvalError};
use crate::solver::{MvaModel, SolverOptions};

/// Schema identifier of the scenario batch-file format and of the
/// canonical serialization the content hash is computed over.
pub const SCHEMA: &str = "snoop-scenario-v1";

/// Solver knobs carried by a scenario (they parameterize the MVA
/// fixed-point iteration and are part of the content hash).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverSettings {
    /// Maximum fixed-point iterations.
    pub max_iterations: usize,
    /// Relative convergence tolerance on `[w_bus, w_mem, R]`.
    pub tolerance: f64,
    /// Damping factor in `(0, 1]`.
    pub damping: f64,
}

impl Default for SolverSettings {
    fn default() -> Self {
        let o = SolverOptions::default();
        SolverSettings {
            max_iterations: o.max_iterations,
            tolerance: o.tolerance,
            damping: o.damping,
        }
    }
}

/// Simulation knobs carried by a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSettings {
    /// Root RNG seed (replication seeds are derived from it). Scenario
    /// files store it as a JSON number, so values must stay ≤ 2^53.
    pub seed: u64,
    /// Warm-up references per processor.
    pub warmup_references: usize,
    /// Measured references per processor.
    pub measured_references: usize,
    /// Independent replications to aggregate.
    pub replications: usize,
    /// Confidence level of the Student-t intervals, in `(0, 1)`.
    pub confidence: f64,
}

impl Default for SimSettings {
    fn default() -> Self {
        // Mirrors `SimConfig::for_protocol` plus the validate/bench
        // convention of three replications at 95%.
        SimSettings {
            seed: 0x5eed_cafe,
            warmup_references: 2_000,
            measured_references: 30_000,
            replications: 3,
            confidence: 0.95,
        }
    }
}

/// GTPN knobs carried by a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtpnSettings {
    /// Maximum reachable states before the expansion gives up.
    pub max_states: usize,
}

impl Default for GtpnSettings {
    fn default() -> Self {
        GtpnSettings { max_states: 200_000 }
    }
}

/// A full description of one evaluation: protocol, workload, system size
/// and per-backend knobs.
///
/// Construct with [`Scenario::appendix_a`] (the paper's workload preset)
/// or [`Scenario::with_params`] (a custom workload), then adjust the
/// public fields. The canonical serialization covers *every* field, so
/// two scenarios hash equal exactly when every backend would produce the
/// same answer for both.
///
/// # Example
///
/// ```
/// use snoop_mva::engine::Scenario;
/// use snoop_protocol::ModSet;
/// use snoop_workload::params::SharingLevel;
///
/// let a = Scenario::appendix_a("WO+1+3".parse::<ModSet>().unwrap(), SharingLevel::Five, 10);
/// let b = Scenario::appendix_a("WO+3+1".parse::<ModSet>().unwrap(), SharingLevel::Five, 10);
/// // Mod-set spelling is canonicalized, so the content hashes agree.
/// assert_eq!(a.content_hash(), b.content_hash());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Protocol modification set (canonicalized by construction).
    pub protocol: ModSet,
    /// The sharing level the workload was derived from, when it came from
    /// the Appendix-A preset (`None` for fully custom parameters).
    pub sharing: Option<SharingLevel>,
    /// The workload parameters (before per-modification adjustment; the
    /// blessed conversions apply the paper's adjustments).
    pub params: WorkloadParams,
    /// Number of processors.
    pub n: usize,
    /// MVA solver knobs.
    pub solver: SolverSettings,
    /// Simulation knobs.
    pub sim: SimSettings,
    /// GTPN knobs.
    pub gtpn: GtpnSettings,
}

impl Scenario {
    /// A scenario on the paper's Appendix-A workload preset.
    pub fn appendix_a(protocol: ModSet, sharing: SharingLevel, n: usize) -> Self {
        Scenario {
            protocol,
            sharing: Some(sharing),
            params: WorkloadParams::appendix_a(sharing),
            n,
            solver: SolverSettings::default(),
            sim: SimSettings::default(),
            gtpn: GtpnSettings::default(),
        }
    }

    /// A scenario on a custom workload.
    pub fn with_params(protocol: ModSet, params: WorkloadParams, n: usize) -> Self {
        Scenario {
            protocol,
            sharing: None,
            params,
            n,
            solver: SolverSettings::default(),
            sim: SimSettings::default(),
            gtpn: GtpnSettings::default(),
        }
    }

    /// The canonical serialization: one compact JSON object with a fixed
    /// field order, mod-set spelling canonicalized through [`ModSet`]'s
    /// `Display`, and floats in shortest round-trip form. Equal scenarios
    /// produce byte-identical serializations regardless of how they were
    /// constructed or spelled in a batch file.
    pub fn canonical_json(&self) -> String {
        let mut s = String::with_capacity(640);
        s.push_str("{\"schema\":\"");
        s.push_str(SCHEMA);
        s.push_str("\",\"protocol\":\"");
        s.push_str(&self.protocol.to_string());
        s.push_str("\",\"sharing\":");
        match self.sharing {
            Some(level) => {
                s.push('"');
                s.push_str(sharing_code(level));
                s.push('"');
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"n\":");
        s.push_str(&self.n.to_string());
        s.push_str(",\"params\":{");
        for (i, (name, value)) in param_fields(&self.params).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(name);
            s.push_str("\":");
            s.push_str(&format_f64(*value));
        }
        s.push_str("},\"solver\":{\"max_iterations\":");
        s.push_str(&self.solver.max_iterations.to_string());
        s.push_str(",\"tolerance\":");
        s.push_str(&format_f64(self.solver.tolerance));
        s.push_str(",\"damping\":");
        s.push_str(&format_f64(self.solver.damping));
        s.push_str("},\"sim\":{\"seed\":");
        s.push_str(&self.sim.seed.to_string());
        s.push_str(",\"warmup\":");
        s.push_str(&self.sim.warmup_references.to_string());
        s.push_str(",\"measured\":");
        s.push_str(&self.sim.measured_references.to_string());
        s.push_str(",\"replications\":");
        s.push_str(&self.sim.replications.to_string());
        s.push_str(",\"confidence\":");
        s.push_str(&format_f64(self.sim.confidence));
        s.push_str("},\"gtpn\":{\"max_states\":");
        s.push_str(&self.gtpn.max_states.to_string());
        s.push_str("}}");
        s
    }

    /// 64-bit FNV-1a hash of the canonical serialization — the cache and
    /// dedup key (combined with a backend id by the engine).
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.canonical_json().as_bytes())
    }

    /// Like [`Scenario::content_hash`] with the system size masked out:
    /// scenarios with equal family hashes describe the same model at
    /// different `N`, so a batch planner can evaluate them as one
    /// sweep-adjacent group (shared model construction, warm starts).
    pub fn family_hash(&self) -> u64 {
        let mut family = *self;
        family.n = 0;
        family.content_hash()
    }

    /// The [`SolverOptions`] equivalent of the carried solver settings.
    pub fn solver_options(&self) -> SolverOptions {
        SolverOptions {
            max_iterations: self.solver.max_iterations,
            tolerance: self.solver.tolerance,
            damping: self.solver.damping,
        }
    }

    /// Blessed conversion to an MVA model (applies the paper's Appendix-A
    /// per-modification parameter adjustments).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidScenario`] when the workload fails
    /// validation.
    pub fn to_mva_model(&self) -> Result<MvaModel, EvalError> {
        MvaModel::for_protocol(&self.params, self.protocol)
            .map_err(|e| EvalError::InvalidScenario(e.to_string()))
    }

    /// Blessed conversion to a simulator configuration: the same paper
    /// adjustments as [`Scenario::to_mva_model`], with the scenario's
    /// seed and run lengths applied.
    pub fn to_sim_config(&self) -> SimConfig {
        let mut config = SimConfig::for_protocol(self.n, self.params, self.protocol);
        config.seed = self.sim.seed;
        config.warmup_references = self.sim.warmup_references;
        config.measured_references = self.sim.measured_references;
        config
    }

    /// Blessed conversion to a coherence GTPN (built from the same derived
    /// model inputs as the MVA).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidScenario`] for invalid workloads and
    /// [`EvalError::Failed`] when net construction fails.
    pub fn to_coherence_net(&self) -> Result<CoherenceNet, EvalError> {
        let model = self.to_mva_model()?;
        CoherenceNet::build(model.inputs(), self.n).map_err(|e| EvalError::Failed {
            backend: BackendId::Gtpn,
            reason: e.to_string(),
        })
    }

    /// Parses a scenario batch file (schema [`SCHEMA`]): an object with
    /// `"schema"` and a `"scenarios"` array. Each scenario needs
    /// `"protocol"` and `"n"`; `"sharing"` (default `"5"`), `"params"`
    /// (paper-name overrides on the Appendix-A preset), `"solver"`,
    /// `"sim"` and `"gtpn"` are optional. Unknown keys are rejected so
    /// typos fail loudly instead of silently evaluating the default.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidScenario`] naming the offending
    /// scenario index and field.
    pub fn parse_batch(text: &str) -> Result<Vec<Scenario>, EvalError> {
        let invalid = |message: String| EvalError::InvalidScenario(message);
        let doc = JsonValue::parse(text).map_err(|e| invalid(e.to_string()))?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(SCHEMA) => {}
            Some(other) => {
                return Err(invalid(format!(
                    "unsupported schema {other:?}, expected {SCHEMA:?}"
                )))
            }
            None => return Err(invalid(format!("missing \"schema\": {SCHEMA:?}"))),
        }
        for (key, _) in doc.as_object().unwrap_or(&[]) {
            if !matches!(key.as_str(), "schema" | "scenarios" | "comment") {
                return Err(invalid(format!("unknown top-level key {key:?}")));
            }
        }
        let list = doc
            .get("scenarios")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| invalid("missing \"scenarios\" array".to_string()))?;
        if list.is_empty() {
            return Err(invalid("\"scenarios\" array is empty".to_string()));
        }
        list.iter()
            .enumerate()
            .map(|(i, item)| {
                Scenario::from_json(item).map_err(|e| invalid(format!("scenario {i}: {e}")))
            })
            .collect()
    }

    /// Serializes scenarios as a batch file ([`SCHEMA`]), one canonical
    /// scenario object per line. `parse_batch` inverts it exactly.
    pub fn batch_to_json(scenarios: &[Scenario]) -> String {
        let mut out = String::from("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\",\"scenarios\":[\n");
        for (i, s) in scenarios.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&s.canonical_json());
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses one scenario object.
    fn from_json(item: &JsonValue) -> Result<Scenario, String> {
        let pairs = item.as_object().ok_or("expected an object")?;
        for (key, _) in pairs {
            if !matches!(
                key.as_str(),
                "schema" | "protocol" | "sharing" | "n" | "params" | "solver" | "sim" | "gtpn"
                    | "comment"
            ) {
                return Err(format!("unknown key {key:?}"));
            }
        }
        // Canonical scenario objects embed the schema tag; when present it
        // must match.
        if let Some(tag) = item.get("schema") {
            match tag.as_str() {
                Some(SCHEMA) => {}
                _ => return Err(format!("schema must be {SCHEMA:?}")),
            }
        }
        let protocol: ModSet = item
            .get("protocol")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"protocol\" string")?
            .parse()
            .map_err(|e: snoop_protocol::ProtocolError| e.to_string())?;
        // Absent defaults to the paper's 5%; an explicit null means "the
        // params are custom, not an Appendix-A preset".
        let sharing = match item.get("sharing") {
            None => Some(SharingLevel::Five),
            Some(JsonValue::Null) => None,
            Some(v) => Some(parse_sharing(v)?),
        };
        let n = item
            .get("n")
            .and_then(JsonValue::as_usize)
            .ok_or("missing or invalid \"n\" (positive integer)")?;
        if n == 0 {
            return Err("\"n\" must be at least 1".to_string());
        }
        let mut scenario =
            Scenario::appendix_a(protocol, sharing.unwrap_or(SharingLevel::Five), n);
        scenario.sharing = sharing;
        if let Some(overrides) = item.get("params") {
            apply_param_overrides(&mut scenario.params, overrides)?;
            scenario
                .params
                .validate()
                .map_err(|e| format!("params: {e}"))?;
        }
        if let Some(solver) = item.get("solver") {
            let s = &mut scenario.solver;
            read_object(solver, "solver", &mut [
                ("max_iterations", Slot::Usize(&mut s.max_iterations)),
                ("tolerance", Slot::F64(&mut s.tolerance)),
                ("damping", Slot::F64(&mut s.damping)),
            ])?;
        }
        if let Some(sim) = item.get("sim") {
            let s = &mut scenario.sim;
            read_object(sim, "sim", &mut [
                ("seed", Slot::U64(&mut s.seed)),
                ("warmup", Slot::Usize(&mut s.warmup_references)),
                ("measured", Slot::Usize(&mut s.measured_references)),
                ("replications", Slot::Usize(&mut s.replications)),
                ("confidence", Slot::F64(&mut s.confidence)),
            ])?;
        }
        if let Some(gtpn) = item.get("gtpn") {
            let s = &mut scenario.gtpn;
            read_object(gtpn, "gtpn", &mut [("max_states", Slot::Usize(&mut s.max_states))])?;
        }
        Ok(scenario)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.sharing {
            Some(level) => write!(f, "{} at {} sharing, N = {}", self.protocol, level, self.n),
            None => write!(f, "{} (custom workload), N = {}", self.protocol, self.n),
        }
    }
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The canonical short code of a sharing level (`"1"`, `"5"`, `"20"`).
fn sharing_code(level: SharingLevel) -> &'static str {
    match level {
        SharingLevel::One => "1",
        SharingLevel::Five => "5",
        SharingLevel::Twenty => "20",
    }
}

fn parse_sharing(v: &JsonValue) -> Result<SharingLevel, String> {
    let code = match v {
        JsonValue::String(s) => s.trim_end_matches('%').to_string(),
        JsonValue::Number(_) => v
            .as_usize()
            .map(|u| u.to_string())
            .ok_or("invalid \"sharing\" number")?,
        _ => return Err("\"sharing\" must be \"1\", \"5\" or \"20\"".to_string()),
    };
    match code.as_str() {
        "1" => Ok(SharingLevel::One),
        "5" => Ok(SharingLevel::Five),
        "20" => Ok(SharingLevel::Twenty),
        other => Err(format!("unknown sharing level {other:?}, expected 1, 5 or 20")),
    }
}

/// The workload parameters in canonical (paper) order, matching
/// `snoop_workload::file`.
fn param_fields(p: &WorkloadParams) -> [(&'static str, f64); 16] {
    [
        ("tau", p.tau),
        ("p_private", p.p_private),
        ("p_sro", p.p_sro),
        ("p_sw", p.p_sw),
        ("h_private", p.h_private),
        ("h_sro", p.h_sro),
        ("h_sw", p.h_sw),
        ("r_private", p.r_private),
        ("r_sw", p.r_sw),
        ("amod_private", p.amod_private),
        ("amod_sw", p.amod_sw),
        ("csupply_sro", p.csupply_sro),
        ("csupply_sw", p.csupply_sw),
        ("wb_csupply", p.wb_csupply),
        ("rep_p", p.rep_p),
        ("rep_sw", p.rep_sw),
    ]
}

fn apply_param_overrides(params: &mut WorkloadParams, overrides: &JsonValue) -> Result<(), String> {
    let pairs = overrides.as_object().ok_or("\"params\" must be an object")?;
    for (name, value) in pairs {
        let value = value
            .as_f64()
            .ok_or_else(|| format!("params.{name} must be a number"))?;
        let slot = match name.as_str() {
            "tau" => &mut params.tau,
            "p_private" => &mut params.p_private,
            "p_sro" => &mut params.p_sro,
            "p_sw" => &mut params.p_sw,
            "h_private" => &mut params.h_private,
            "h_sro" => &mut params.h_sro,
            "h_sw" => &mut params.h_sw,
            "r_private" => &mut params.r_private,
            "r_sw" => &mut params.r_sw,
            "amod_private" => &mut params.amod_private,
            "amod_sw" => &mut params.amod_sw,
            "csupply_sro" => &mut params.csupply_sro,
            "csupply_sw" => &mut params.csupply_sw,
            "wb_csupply" => &mut params.wb_csupply,
            "rep_p" => &mut params.rep_p,
            "rep_sw" => &mut params.rep_sw,
            other => return Err(format!("unknown parameter {other:?}")),
        };
        *slot = value;
    }
    Ok(())
}

/// A typed destination for one optional object field.
enum Slot<'a> {
    Usize(&'a mut usize),
    U64(&'a mut u64),
    F64(&'a mut f64),
}

/// Reads the known fields of a settings object, rejecting unknown keys.
fn read_object(
    value: &JsonValue,
    section: &str,
    slots: &mut [(&str, Slot<'_>)],
) -> Result<(), String> {
    let pairs = value
        .as_object()
        .ok_or_else(|| format!("\"{section}\" must be an object"))?;
    for (key, v) in pairs {
        let Some((_, slot)) = slots.iter_mut().find(|(name, _)| name == key) else {
            return Err(format!("unknown key {section}.{key}"));
        };
        match slot {
            Slot::Usize(dest) => {
                **dest = v
                    .as_usize()
                    .ok_or_else(|| format!("{section}.{key} must be a non-negative integer"))?;
            }
            Slot::U64(dest) => {
                **dest = v
                    .as_u64()
                    .ok_or_else(|| format!("{section}.{key} must be a non-negative integer"))?;
            }
            Slot::F64(dest) => {
                **dest = v
                    .as_f64()
                    .ok_or_else(|| format!("{section}.{key} must be a number"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wo5(n: usize) -> Scenario {
        Scenario::appendix_a(ModSet::new(), SharingLevel::Five, n)
    }

    #[test]
    fn canonical_json_is_stable_and_parses() {
        let s = wo5(10);
        let json = s.canonical_json();
        assert!(json.starts_with("{\"schema\":\"snoop-scenario-v1\""));
        // The canonical form is itself valid JSON.
        JsonValue::parse(&json).unwrap();
        assert_eq!(json, wo5(10).canonical_json());
    }

    #[test]
    fn content_hash_distinguishes_fields() {
        let base = wo5(10);
        assert_eq!(base.content_hash(), wo5(10).content_hash());
        assert_ne!(base.content_hash(), wo5(11).content_hash());
        let mut other = base;
        other.sim.seed += 1;
        assert_ne!(base.content_hash(), other.content_hash());
        let mut tol = base;
        tol.solver.tolerance = 1e-9;
        assert_ne!(base.content_hash(), tol.content_hash());
    }

    #[test]
    fn family_hash_masks_system_size_only() {
        assert_eq!(wo5(2).family_hash(), wo5(100).family_hash());
        let other_sharing = Scenario::appendix_a(ModSet::new(), SharingLevel::Twenty, 2);
        assert_ne!(wo5(2).family_hash(), other_sharing.family_hash());
    }

    #[test]
    fn batch_round_trips_through_canonical_form() {
        let mut custom = Scenario::appendix_a(
            "dragon".parse().unwrap(),
            SharingLevel::Twenty,
            8,
        );
        custom.sim.replications = 5;
        custom.solver.tolerance = 1e-9;
        // A fully custom workload (sharing = None) must survive too.
        let bespoke = Scenario::with_params(
            "WO+2".parse().unwrap(),
            WorkloadParams::appendix_a(SharingLevel::One),
            6,
        );
        let scenarios = vec![wo5(4), custom, bespoke];
        let text = Scenario::batch_to_json(&scenarios);
        let parsed = Scenario::parse_batch(&text).unwrap();
        assert_eq!(parsed, scenarios);
        assert_eq!(parsed[1].content_hash(), custom.content_hash());
        assert_eq!(parsed[2].sharing, None);
        assert_eq!(parsed[2].content_hash(), bespoke.content_hash());
    }

    #[test]
    fn hash_is_stable_across_field_reordering_in_the_file() {
        let a = Scenario::parse_batch(
            r#"{"schema":"snoop-scenario-v1","scenarios":[
                {"protocol":"WO+1","sharing":"5","n":10,"sim":{"seed":7,"replications":4}}
            ]}"#,
        )
        .unwrap();
        let b = Scenario::parse_batch(
            r#"{"scenarios":[
                {"n":10,"sim":{"replications":4,"seed":7},"protocol":"wo+1","sharing":5}
            ],"schema":"snoop-scenario-v1"}"#,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0].content_hash(), b[0].content_hash());
    }

    #[test]
    fn mod_set_spelling_cannot_poison_the_hash() {
        let batch = |spelling: &str| {
            Scenario::parse_batch(&format!(
                r#"{{"schema":"snoop-scenario-v1","scenarios":[{{"protocol":"{spelling}","n":4}}]}}"#
            ))
            .unwrap()[0]
        };
        let canonical = batch("WO+1+3");
        let reversed = batch("WO+3+1");
        let named = batch("rwb"); // different set, must differ
        assert_eq!(canonical.content_hash(), reversed.content_hash());
        assert!(canonical.canonical_json().contains("\"WO+1+3\""));
        assert_ne!(canonical.content_hash(), named.content_hash());
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_values() {
        let bad = |text: &str| Scenario::parse_batch(text).unwrap_err().to_string();
        assert!(bad(r#"{"scenarios":[]}"#).contains("schema"));
        assert!(bad(r#"{"schema":"snoop-scenario-v1","scenarios":[]}"#).contains("empty"));
        assert!(bad(
            r#"{"schema":"snoop-scenario-v1","scenarios":[{"protocol":"WO","n":0}]}"#
        )
        .contains("at least 1"));
        assert!(bad(
            r#"{"schema":"snoop-scenario-v1","scenarios":[{"protocol":"WO","n":2,"typo":1}]}"#
        )
        .contains("typo"));
        assert!(bad(
            r#"{"schema":"snoop-scenario-v1","scenarios":[{"protocol":"WO","n":2,"params":{"bogus":1}}]}"#
        )
        .contains("bogus"));
        assert!(bad(
            r#"{"schema":"snoop-scenario-v1","scenarios":[{"protocol":"WO","n":2,"params":{"h_private":1.5}}]}"#
        )
        .contains("params"));
        assert!(bad(
            r#"{"schema":"snoop-scenario-v1","scenarios":[{"protocol":"WO","n":2,"sharing":"7"}]}"#
        )
        .contains("sharing"));
    }

    #[test]
    fn conversions_agree_with_the_legacy_construction_paths() {
        let s = Scenario::appendix_a("WO+1".parse().unwrap(), SharingLevel::Five, 8);
        let legacy_model = MvaModel::for_protocol(
            &WorkloadParams::appendix_a(SharingLevel::Five),
            s.protocol,
        )
        .unwrap();
        assert_eq!(s.to_mva_model().unwrap(), legacy_model);
        let legacy_config = SimConfig::for_protocol(
            8,
            WorkloadParams::appendix_a(SharingLevel::Five),
            s.protocol,
        );
        assert_eq!(s.to_sim_config(), legacy_config);
        let net = s.to_coherence_net().unwrap();
        assert_eq!(net.n, 8);
    }

    #[test]
    fn display_labels_are_readable() {
        assert_eq!(wo5(10).to_string(), "WO at 5% sharing, N = 10");
        let custom = Scenario::with_params(ModSet::new(), WorkloadParams::default(), 4);
        assert!(custom.to_string().contains("custom workload"));
    }
}
