//! A bounded, thread-safe, content-addressed result cache with an
//! optional JSON spill format.
//!
//! Keys are `"<backend>:<content-hash>"` strings built by the engine from
//! [`super::Scenario::content_hash`], so a cached value is valid for
//! exactly the scenarios that would recompute it. Only successful
//! evaluations are cached — errors are recomputed every time, so a
//! transient failure (e.g. a deadline) cannot poison later runs.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use snoop_numeric::json::JsonValue;

use super::evaluation::Evaluation;

/// Schema identifier of the cache spill file.
pub const CACHE_SCHEMA: &str = "snoop-eval-cache-v1";

/// Default capacity (entries) of a [`ResultCache`].
pub const DEFAULT_CAPACITY: usize = 16_384;

/// Hit/miss accounting of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to be computed.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (`0.0` when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Evaluation>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded thread-safe map from content keys to [`Evaluation`]s.
///
/// Eviction is FIFO: when full, the oldest *inserted* entry leaves first.
/// (Recency tracking would make `get` reorder state and perturb nothing
/// but benchmarks; sweep workloads are scans, where FIFO ≡ LRU.)
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(DEFAULT_CAPACITY)
    }
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache { inner: Mutex::new(Inner::default()), capacity: capacity.max(1) }
    }

    /// Looks up `key`, counting a hit or a miss. A returned clone has
    /// `provenance.cached = true`.
    pub fn get(&self, key: &str) -> Option<Evaluation> {
        let mut inner = self.inner.lock().expect("cache lock");
        match inner.map.get(key).cloned() {
            Some(mut eval) => {
                inner.hits += 1;
                eval.provenance.cached = true;
                Some(eval)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `evaluation` under `key` (no hit/miss accounting). Inserting
    /// an existing key refreshes the value without growing the cache.
    pub fn insert(&self, key: &str, evaluation: Evaluation) {
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.insert(key.to_string(), evaluation).is_none() {
            inner.order.push_back(key.to_string());
            while inner.map.len() > self.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.map.remove(&oldest);
                    inner.evictions += 1;
                }
            }
        }
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            evictions: inner.evictions,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes every entry as a [`CACHE_SCHEMA`] document, sorted by
    /// key so the spill file is deterministic.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("cache lock");
        let mut keys: Vec<&String> = inner.map.keys().collect();
        keys.sort();
        let mut out = format!("{{\"schema\":\"{CACHE_SCHEMA}\",\"entries\":[\n");
        for (i, key) in keys.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("{\"key\":\"");
            out.push_str(key);
            out.push_str("\",\"evaluation\":");
            out.push_str(&inner.map[*key].to_json());
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Merges entries from a [`CACHE_SCHEMA`] document produced by
    /// [`ResultCache::to_json`]. Loaded entries do not count as hits or
    /// misses; existing keys are kept (the live value wins). Returns the
    /// number of entries merged in.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed document or entry.
    pub fn load_json(&self, text: &str) -> Result<usize, String> {
        let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(CACHE_SCHEMA) => {}
            other => {
                return Err(format!(
                    "unsupported cache schema {other:?}, expected {CACHE_SCHEMA:?}"
                ))
            }
        }
        let entries = doc
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("missing \"entries\" array")?;
        let mut loaded = 0;
        let mut inner = self.inner.lock().expect("cache lock");
        for (i, entry) in entries.iter().enumerate() {
            let key = entry
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("entry {i}: missing \"key\""))?;
            let evaluation = entry
                .get("evaluation")
                .ok_or_else(|| format!("entry {i}: missing \"evaluation\""))
                .and_then(|v| {
                    Evaluation::from_json(v).map_err(|e| format!("entry {i}: {e}"))
                })?;
            if inner.map.len() >= self.capacity && !inner.map.contains_key(key) {
                // Respect the bound even when the file outgrew it.
                continue;
            }
            if inner.map.insert(key.to_string(), evaluation).is_none() {
                inner.order.push_back(key.to_string());
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Writes the spill document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Merges the spill document at `path` if it exists; a missing file
    /// loads zero entries (first run of a warm-cache workflow).
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable or malformed files.
    pub fn load_file(&self, path: &std::path::Path) -> Result<usize, String> {
        if !path.exists() {
            return Ok(0);
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        self.load_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::evaluation::{BackendId, Evaluation, Provenance};
    use super::*;

    fn eval(n: usize) -> Evaluation {
        Evaluation {
            backend: BackendId::Mva,
            n,
            r: 6.5 + n as f64,
            speedup: 0.8 * n as f64,
            speedup_half_width: None,
            bus_utilization: 0.5,
            memory_utilization: Some(0.1),
            w_bus: Some(1.0),
            w_mem: Some(0.1),
            q_bus: Some(1.2),
            provenance: Provenance::new(9, 0, 0),
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ResultCache::default();
        assert!(cache.get("mva:1").is_none());
        cache.insert("mva:1", eval(4));
        let hit = cache.get("mva:1").unwrap();
        assert!(hit.provenance.cached);
        assert_eq!(hit, eval(4)); // equality ignores the cached flag
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = ResultCache::new(2);
        cache.insert("a", eval(1));
        cache.insert("b", eval(2));
        cache.insert("c", eval(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none(), "oldest entry should have left");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_a_key_refreshes_without_growth() {
        let cache = ResultCache::new(2);
        cache.insert("a", eval(1));
        cache.insert("a", eval(5));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("a").unwrap().n, 5);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn spill_round_trips_deterministically() {
        let cache = ResultCache::default();
        cache.insert("mva:b", eval(8));
        cache.insert("mva:a", eval(4));
        let text = cache.to_json();
        assert!(text.contains(CACHE_SCHEMA));
        // Sorted by key regardless of insertion order.
        assert!(text.find("mva:a").unwrap() < text.find("mva:b").unwrap());

        let restored = ResultCache::default();
        assert_eq!(restored.load_json(&text).unwrap(), 2);
        assert_eq!(restored.get("mva:a").unwrap(), eval(4));
        assert_eq!(restored.to_json(), text);
        // Loading counts no hits/misses (the get above counted one hit).
        assert_eq!(restored.stats().misses, 0);
    }

    #[test]
    fn load_rejects_other_schemas() {
        let cache = ResultCache::default();
        let err = cache.load_json(r#"{"schema":"nope","entries":[]}"#).unwrap_err();
        assert!(err.contains("snoop-eval-cache-v1"), "{err}");
    }

    #[test]
    fn missing_spill_file_is_empty_not_an_error() {
        let cache = ResultCache::default();
        let loaded =
            cache.load_file(std::path::Path::new("/nonexistent/spill.json")).unwrap();
        assert_eq!(loaded, 0);
    }
}
