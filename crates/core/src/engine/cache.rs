//! A bounded, thread-safe, content-addressed result cache with an
//! optional JSON spill format.
//!
//! Keys are `"<backend>:<content-hash>"` strings built by the engine from
//! [`super::Scenario::content_hash`], so a cached value is valid for
//! exactly the scenarios that would recompute it. Only successful
//! evaluations are cached — errors are recomputed every time, so a
//! transient failure (e.g. a deadline) cannot poison later runs.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use snoop_numeric::json::JsonValue;

use super::evaluation::Evaluation;

/// Schema identifier written to cache spill files.
pub const CACHE_SCHEMA: &str = "snoop-cache-v1";

/// Schema identifier written by earlier releases; still accepted on load
/// (the entry format is unchanged, only the tag was renamed).
pub const LEGACY_CACHE_SCHEMA: &str = "snoop-eval-cache-v1";

/// Default capacity (entries) of a [`ResultCache`].
pub const DEFAULT_CAPACITY: usize = 16_384;

/// Why a spill document was rejected outright (entry-level damage does
/// not reject the document — damaged entries are counted in
/// [`LoadOutcome::rejected`] and the rest load).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLoadError {
    /// The document is not valid JSON.
    Parse {
        /// Byte offset of the first parse failure.
        offset: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// The document carries no `"schema"` string.
    MissingSchema,
    /// The document's schema tag is not one this build reads.
    UnsupportedSchema {
        /// The tag found in the document.
        found: String,
    },
    /// The document has no `"entries"` array.
    MissingEntries,
}

impl std::fmt::Display for CacheLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLoadError::Parse { offset, message } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            CacheLoadError::MissingSchema => {
                write!(f, "missing \"schema\" tag, expected {CACHE_SCHEMA:?}")
            }
            CacheLoadError::UnsupportedSchema { found } => {
                write!(f, "unsupported cache schema {found:?}, expected {CACHE_SCHEMA:?}")
            }
            CacheLoadError::MissingEntries => write!(f, "missing \"entries\" array"),
        }
    }
}

impl std::error::Error for CacheLoadError {}

/// What a spill load did: entries merged in, entries refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadOutcome {
    /// Entries merged into the cache.
    pub loaded: usize,
    /// Entries rejected (malformed key or evaluation). The document
    /// still loads: one damaged entry costs that entry, not the spill.
    pub rejected: usize,
}

/// Hit/miss accounting of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to be computed.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (`0.0` when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Evaluation>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded thread-safe map from content keys to [`Evaluation`]s.
///
/// Eviction is FIFO: when full, the oldest *inserted* entry leaves first.
/// (Recency tracking would make `get` reorder state and perturb nothing
/// but benchmarks; sweep workloads are scans, where FIFO ≡ LRU.)
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(DEFAULT_CAPACITY)
    }
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache { inner: Mutex::new(Inner::default()), capacity: capacity.max(1) }
    }

    /// Looks up `key`, counting a hit or a miss. A returned clone has
    /// `provenance.cached = true`.
    pub fn get(&self, key: &str) -> Option<Evaluation> {
        let mut inner = self.inner.lock().expect("cache lock");
        match inner.map.get(key).cloned() {
            Some(mut eval) => {
                inner.hits += 1;
                eval.provenance.cached = true;
                Some(eval)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `evaluation` under `key` (no hit/miss accounting). Inserting
    /// an existing key refreshes the value without growing the cache.
    pub fn insert(&self, key: &str, evaluation: Evaluation) {
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.insert(key.to_string(), evaluation).is_none() {
            inner.order.push_back(key.to_string());
            while inner.map.len() > self.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.map.remove(&oldest);
                    inner.evictions += 1;
                }
            }
        }
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            evictions: inner.evictions,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes every entry as a [`CACHE_SCHEMA`] document, sorted by
    /// key so the spill file is deterministic.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("cache lock");
        let mut keys: Vec<&String> = inner.map.keys().collect();
        keys.sort();
        let mut out = format!("{{\"schema\":\"{CACHE_SCHEMA}\",\"entries\":[\n");
        for (i, key) in keys.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("{\"key\":\"");
            out.push_str(key);
            out.push_str("\",\"evaluation\":");
            out.push_str(&inner.map[*key].to_json());
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Merges entries from a [`CACHE_SCHEMA`] (or [`LEGACY_CACHE_SCHEMA`])
    /// document produced by [`ResultCache::to_json`]. Loaded entries do
    /// not count as hits or misses; existing keys are kept (the live
    /// value wins). Malformed *entries* are counted in
    /// [`LoadOutcome::rejected`] and skipped — one damaged entry costs
    /// that entry, never the document.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CacheLoadError`] for document-level problems:
    /// unparseable JSON, a missing or unknown schema tag, or a missing
    /// entries array.
    pub fn load_json(&self, text: &str) -> Result<LoadOutcome, CacheLoadError> {
        let doc = JsonValue::parse(text)
            .map_err(|e| CacheLoadError::Parse { offset: e.offset, message: e.message })?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(CACHE_SCHEMA) | Some(LEGACY_CACHE_SCHEMA) => {}
            Some(found) => {
                return Err(CacheLoadError::UnsupportedSchema { found: found.to_string() })
            }
            None => return Err(CacheLoadError::MissingSchema),
        }
        let entries = doc
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or(CacheLoadError::MissingEntries)?;
        let mut outcome = LoadOutcome::default();
        let mut inner = self.inner.lock().expect("cache lock");
        for entry in entries {
            let key = entry.get("key").and_then(JsonValue::as_str);
            let evaluation =
                entry.get("evaluation").and_then(|v| Evaluation::from_json(v).ok());
            let (Some(key), Some(evaluation)) = (key, evaluation) else {
                outcome.rejected += 1;
                continue;
            };
            if inner.map.len() >= self.capacity && !inner.map.contains_key(key) {
                // Respect the bound even when the file outgrew it.
                continue;
            }
            if inner.map.insert(key.to_string(), evaluation).is_none() {
                inner.order.push_back(key.to_string());
                outcome.loaded += 1;
            }
        }
        Ok(outcome)
    }

    /// Writes the spill document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Merges the spill document at `path` if it exists; a missing file
    /// loads zero entries (first run of a warm-cache workflow).
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable or malformed files.
    pub fn load_file(&self, path: &std::path::Path) -> Result<LoadOutcome, String> {
        if !path.exists() {
            return Ok(LoadOutcome::default());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        self.load_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::evaluation::{BackendId, Evaluation, Provenance};
    use super::*;

    fn eval(n: usize) -> Evaluation {
        Evaluation {
            backend: BackendId::Mva,
            n,
            r: 6.5 + n as f64,
            speedup: 0.8 * n as f64,
            speedup_half_width: None,
            bus_utilization: 0.5,
            memory_utilization: Some(0.1),
            w_bus: Some(1.0),
            w_mem: Some(0.1),
            q_bus: Some(1.2),
            provenance: Provenance::new(9, 0, 0),
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ResultCache::default();
        assert!(cache.get("mva:1").is_none());
        cache.insert("mva:1", eval(4));
        let hit = cache.get("mva:1").unwrap();
        assert!(hit.provenance.cached);
        assert_eq!(hit, eval(4)); // equality ignores the cached flag
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = ResultCache::new(2);
        cache.insert("a", eval(1));
        cache.insert("b", eval(2));
        cache.insert("c", eval(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none(), "oldest entry should have left");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_a_key_refreshes_without_growth() {
        let cache = ResultCache::new(2);
        cache.insert("a", eval(1));
        cache.insert("a", eval(5));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("a").unwrap().n, 5);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn spill_round_trips_deterministically() {
        let cache = ResultCache::default();
        cache.insert("mva:b", eval(8));
        cache.insert("mva:a", eval(4));
        let text = cache.to_json();
        assert!(text.contains(CACHE_SCHEMA));
        // Sorted by key regardless of insertion order.
        assert!(text.find("mva:a").unwrap() < text.find("mva:b").unwrap());

        let restored = ResultCache::default();
        assert_eq!(restored.load_json(&text).unwrap(), LoadOutcome { loaded: 2, rejected: 0 });
        assert_eq!(restored.get("mva:a").unwrap(), eval(4));
        assert_eq!(restored.to_json(), text);
        // Loading counts no hits/misses (the get above counted one hit).
        assert_eq!(restored.stats().misses, 0);
    }

    #[test]
    fn load_rejects_other_schemas_with_typed_errors() {
        let cache = ResultCache::default();
        assert_eq!(
            cache.load_json(r#"{"schema":"nope","entries":[]}"#),
            Err(CacheLoadError::UnsupportedSchema { found: "nope".into() })
        );
        assert_eq!(
            cache.load_json(r#"{"entries":[]}"#),
            Err(CacheLoadError::MissingSchema)
        );
        assert_eq!(
            cache.load_json(&format!(r#"{{"schema":"{CACHE_SCHEMA}"}}"#)),
            Err(CacheLoadError::MissingEntries)
        );
        assert!(matches!(
            cache.load_json("{not json"),
            Err(CacheLoadError::Parse { .. })
        ));
        // The schema tags show up in the rendered diagnostics.
        let err = cache.load_json(r#"{"schema":"nope","entries":[]}"#).unwrap_err();
        assert!(err.to_string().contains("snoop-cache-v1"), "{err}");
    }

    #[test]
    fn legacy_schema_tag_still_loads() {
        let cache = ResultCache::default();
        cache.insert("mva:x", eval(2));
        let legacy = cache.to_json().replace(CACHE_SCHEMA, LEGACY_CACHE_SCHEMA);
        let restored = ResultCache::default();
        assert_eq!(
            restored.load_json(&legacy).unwrap(),
            LoadOutcome { loaded: 1, rejected: 0 }
        );
        // New spills carry the new tag.
        assert!(restored.to_json().contains("\"schema\":\"snoop-cache-v1\""));
    }

    #[test]
    fn damaged_entries_are_counted_and_skipped_not_fatal() {
        let cache = ResultCache::default();
        cache.insert("mva:good", eval(3));
        let spill = cache.to_json();
        // Splice in two damaged entries around the good one: one with no
        // key, one whose evaluation is not an object.
        let damaged = spill.replace(
            "\"entries\":[\n",
            "\"entries\":[\n{\"evaluation\":{}},{\"key\":\"mva:bad\",\"evaluation\":7},\n",
        );
        let restored = ResultCache::default();
        assert_eq!(
            restored.load_json(&damaged).unwrap(),
            LoadOutcome { loaded: 1, rejected: 2 }
        );
        assert_eq!(restored.get("mva:good").unwrap(), eval(3));
        assert!(restored.get("mva:bad").is_none());
    }

    #[test]
    fn missing_spill_file_is_empty_not_an_error() {
        let cache = ResultCache::default();
        let loaded =
            cache.load_file(std::path::Path::new("/nonexistent/spill.json")).unwrap();
        assert_eq!(loaded, LoadOutcome::default());
    }
}
