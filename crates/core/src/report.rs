//! Text rendering of result tables (the paper's Table 4.1 layout) and CSV
//! export for the figure data.

use std::fmt::Write as _;

use crate::sweep::SpeedupSeries;

/// Renders a family of series as a Table-4.1-style fixed-width table:
/// one row per (sharing level, protocol) with speedups across `N`.
pub fn speedup_table(title: &str, series: &[SpeedupSeries]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if series.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let _ = write!(out, "{:<10} {:<10}", "sharing", "protocol");
    for p in &series[0].points {
        let _ = write!(out, " {:>7}", p.n);
    }
    let _ = writeln!(out);
    for s in series {
        let _ = write!(out, "{:<10} {:<10}", s.sharing.to_string(), s.mods.to_string());
        for p in &s.points {
            let _ = write!(out, " {:>7.3}", p.speedup);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders series as CSV: `protocol,sharing,n,speedup,u_bus,u_mem,w_bus,r`.
pub fn speedup_csv(series: &[SpeedupSeries]) -> String {
    let mut out = String::from("protocol,sharing,n,speedup,bus_utilization,memory_utilization,w_bus,r\n");
    for s in series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
                s.mods,
                s.sharing,
                p.n,
                p.speedup,
                p.bus_utilization,
                p.memory_utilization,
                p.w_bus,
                p.r
            );
        }
    }
    out
}

/// Renders a gnuplot script (with inline data blocks) that draws the
/// series as a Figure-4.1-style plot. Pipe into `gnuplot -persist`, or
/// write to a file and run `gnuplot file.gp` to produce `figure.svg`.
pub fn gnuplot_script(title: &str, series: &[SpeedupSeries]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "set terminal svg size 800,560 dynamic");
    let _ = writeln!(out, "set output 'figure.svg'");
    let _ = writeln!(out, "set title {title:?}");
    let _ = writeln!(out, "set xlabel 'Number of processors'");
    let _ = writeln!(out, "set ylabel 'Speedup'");
    let _ = writeln!(out, "set key bottom right");
    let _ = writeln!(out, "set grid");
    for (i, s) in series.iter().enumerate() {
        let _ = writeln!(out, "$data{i} << EOD");
        for p in &s.points {
            let _ = writeln!(out, "{} {}", p.n, p.speedup);
        }
        let _ = writeln!(out, "EOD");
    }
    let plots: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!("$data{i} using 1:2 with linespoints title '{} {}'", s.mods, s.sharing)
        })
        .collect();
    let _ = writeln!(out, "plot {}", plots.join(", \\\n     "));
    out
}

/// Renders a paper-vs-model comparison table with relative errors; rows are
/// `(label, paper_value, model_value)`.
pub fn comparison_table(title: &str, rows: &[(String, f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:<28} {:>9} {:>9} {:>8}", "case", "paper", "model", "err%");
    let mut worst: f64 = 0.0;
    for (label, paper, model) in rows {
        let err = if *paper != 0.0 { (model - paper) / paper * 100.0 } else { f64::NAN };
        worst = worst.max(err.abs());
        let _ = writeln!(out, "{label:<28} {paper:>9.3} {model:>9.3} {err:>+8.2}");
    }
    let _ = writeln!(out, "maximum |error|: {worst:.2}%");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverOptions;
    use crate::sweep::speedup_series;
    use snoop_protocol::ModSet;
    use snoop_workload::params::SharingLevel;

    fn sample_series() -> Vec<SpeedupSeries> {
        vec![speedup_series(
            ModSet::new(),
            SharingLevel::Five,
            &[1, 10],
            &SolverOptions::default(),
        )
        .unwrap()]
    }

    #[test]
    fn table_contains_headers_and_values() {
        let t = speedup_table("Table 4.1(a)", &sample_series());
        assert!(t.contains("Table 4.1(a)"));
        assert!(t.contains("5%"));
        assert!(t.contains("WO"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn empty_table_is_handled() {
        let t = speedup_table("empty", &[]);
        assert!(t.contains("(no data)"));
    }

    #[test]
    fn csv_has_one_line_per_point_plus_header() {
        let csv = speedup_csv(&sample_series());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("protocol,sharing,n,"));
        assert!(csv.contains("WO,5%,1,"));
    }

    #[test]
    fn gnuplot_script_is_well_formed() {
        let script = gnuplot_script("Figure 4.1", &sample_series());
        assert!(script.contains("set output"));
        assert!(script.contains("$data0 << EOD"));
        assert!(script.contains("plot "));
        // One data block per series, terminated.
        assert_eq!(script.matches("<< EOD").count(), 1);
        assert_eq!(script.matches("\nEOD\n").count(), 1);
        // Data rows: n and speedup per point.
        assert!(script.contains("\n1 "));
        assert!(script.contains("\n10 "));
    }

    #[test]
    fn comparison_table_reports_worst_error() {
        let rows = vec![
            ("a".to_string(), 1.0, 1.01),
            ("b".to_string(), 2.0, 1.9),
        ];
        let t = comparison_table("cmp", &rows);
        assert!(t.contains("maximum |error|: 5.00%"));
        assert!(t.contains("+1.00"));
        assert!(t.contains("-5.00"));
    }
}
