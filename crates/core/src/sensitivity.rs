//! Parameter sensitivity analysis.
//!
//! The paper closes by noting the model "can be put to good use for
//! evaluating the protocols more thoroughly — all that is needed are
//! workload measurement studies to aid in the assignment of parameter
//! values". Sensitivities tell the measurement effort where to go: a
//! parameter with elasticity near zero does not need a precise estimate.
//!
//! [`sensitivities`] computes, by central finite differences, the
//! *elasticity* of speedup with respect to each basic workload parameter:
//! `(∂S/S) / (∂θ/θ)` — the percent change in speedup per percent change in
//! the parameter.

use snoop_numeric::exec::{par_map, ExecOptions};
use snoop_protocol::ModSet;
use snoop_workload::params::WorkloadParams;

use crate::solver::{MvaModel, SolverOptions};
use crate::MvaError;

/// Elasticity of speedup with respect to one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Parameter name as in the paper.
    pub parameter: &'static str,
    /// Base value of the parameter.
    pub value: f64,
    /// Elasticity `d ln S / d ln θ`; `None` when the parameter is zero
    /// (elasticity undefined) or perturbation leaves the valid domain.
    pub elasticity: Option<f64>,
}

/// The perturbable parameters, with accessors.
type Field = (&'static str, fn(&WorkloadParams) -> f64, fn(&mut WorkloadParams, f64));

fn fields() -> Vec<Field> {
    vec![
        ("tau", |p| p.tau, |p, v| p.tau = v),
        ("h_private", |p| p.h_private, |p, v| p.h_private = v),
        ("h_sro", |p| p.h_sro, |p, v| p.h_sro = v),
        ("h_sw", |p| p.h_sw, |p, v| p.h_sw = v),
        ("r_private", |p| p.r_private, |p, v| p.r_private = v),
        ("r_sw", |p| p.r_sw, |p, v| p.r_sw = v),
        ("amod_private", |p| p.amod_private, |p, v| p.amod_private = v),
        ("amod_sw", |p| p.amod_sw, |p, v| p.amod_sw = v),
        ("csupply_sro", |p| p.csupply_sro, |p, v| p.csupply_sro = v),
        ("csupply_sw", |p| p.csupply_sw, |p, v| p.csupply_sw = v),
        ("wb_csupply", |p| p.wb_csupply, |p, v| p.wb_csupply = v),
        ("rep_p", |p| p.rep_p, |p, v| p.rep_p = v),
        ("rep_sw", |p| p.rep_sw, |p, v| p.rep_sw = v),
    ]
}

fn speedup(params: &WorkloadParams, mods: ModSet, n: usize) -> Result<f64, MvaError> {
    Ok(MvaModel::for_protocol(params, mods)?.solve(n, &SolverOptions::default())?.speedup)
}

/// Computes speedup elasticities for every basic parameter at the given
/// operating point, using a relative step of `step` (e.g. `0.01` = ±1%).
///
/// # Errors
///
/// Propagates model errors at the base point; individual perturbations
/// that leave the valid domain yield `elasticity: None` instead of
/// failing the whole analysis.
pub fn sensitivities(
    base: &WorkloadParams,
    mods: ModSet,
    n: usize,
    step: f64,
) -> Result<Vec<Sensitivity>, MvaError> {
    sensitivities_exec(base, mods, n, step, &ExecOptions::SERIAL)
}

/// [`sensitivities`] with the per-parameter perturbations evaluated in
/// parallel. Each parameter's ± pair of solves is one independent work
/// item, so the result — including row order after the magnitude sort,
/// which is stable — is bit-identical to the serial path for any thread
/// count.
///
/// # Errors
///
/// See [`sensitivities`].
pub fn sensitivities_exec(
    base: &WorkloadParams,
    mods: ModSet,
    n: usize,
    step: f64,
    exec: &ExecOptions,
) -> Result<Vec<Sensitivity>, MvaError> {
    let s0 = speedup(base, mods, n)?;
    let mut out = par_map(&fields(), exec, |&(name, get, set)| {
        let v = get(base);
        if v == 0.0 || s0 == 0.0 {
            return Sensitivity { parameter: name, value: v, elasticity: None };
        }
        let dv = v * step;
        let mut up = *base;
        set(&mut up, v + dv);
        let mut down = *base;
        set(&mut down, v - dv);
        let elasticity = match (speedup(&up, mods, n), speedup(&down, mods, n)) {
            (Ok(su), Ok(sd)) => Some(((su - sd) / (2.0 * dv)) * (v / s0)),
            _ => None, // perturbation left the valid domain
        };
        Sensitivity { parameter: name, value: v, elasticity }
    });
    // Most influential first.
    out.sort_by(|a, b| {
        let ka = a.elasticity.map_or(-1.0, f64::abs);
        let kb = b.elasticity.map_or(-1.0, f64::abs);
        kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

/// Renders a sensitivity report.
pub fn render(rows: &[Sensitivity]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<14} {:>8} {:>12}", "parameter", "value", "elasticity");
    for r in rows {
        match r.elasticity {
            Some(e) => {
                let _ = writeln!(out, "{:<14} {:>8.3} {:>+12.4}", r.parameter, r.value, e);
            }
            None => {
                let _ = writeln!(out, "{:<14} {:>8.3} {:>12}", r.parameter, r.value, "-");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_workload::params::SharingLevel;

    fn run(n: usize) -> Vec<Sensitivity> {
        sensitivities(
            &WorkloadParams::appendix_a(SharingLevel::Five),
            ModSet::new(),
            n,
            0.01,
        )
        .unwrap()
    }

    #[test]
    fn covers_every_parameter() {
        let rows = run(10);
        assert_eq!(rows.len(), 13);
        let mut names: Vec<_> = rows.iter().map(|r| r.parameter).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn hit_rates_dominate() {
        // The private hit rate is the workload's most influential knob at
        // saturation (misses are the bus traffic).
        let rows = run(20);
        let top: Vec<_> = rows.iter().take(3).map(|r| r.parameter).collect();
        assert!(top.contains(&"h_private"), "top 3: {top:?}");
    }

    #[test]
    fn hit_rate_elasticity_is_positive_replacements_negative() {
        let rows = run(10);
        let by_name = |n: &str| {
            rows.iter().find(|r| r.parameter == n).unwrap().elasticity.unwrap()
        };
        assert!(by_name("h_private") > 0.0);
        assert!(by_name("rep_p") < 0.0);
        assert!(by_name("rep_sw") < 0.0);
    }

    #[test]
    fn tau_elasticity_small_at_single_processor() {
        // At N = 1 speedup = (τ+1)/R with R ≈ τ + overheads: raising τ
        // *helps* the ratio slightly (overhead amortized).
        let rows = sensitivities(
            &WorkloadParams::appendix_a(SharingLevel::Five),
            ModSet::new(),
            1,
            0.01,
        )
        .unwrap();
        let tau = rows.iter().find(|r| r.parameter == "tau").unwrap();
        assert!(tau.elasticity.unwrap().abs() < 0.3);
    }

    #[test]
    fn boundary_parameters_yield_none_or_value() {
        // h_private at 1.0: +1% perturbation is invalid, elasticity None.
        let params = WorkloadParams::builder().h_private(1.0).build().unwrap();
        let rows = sensitivities(&params, ModSet::new(), 4, 0.01).unwrap();
        let h = rows.iter().find(|r| r.parameter == "h_private").unwrap();
        assert!(h.elasticity.is_none());
    }

    #[test]
    fn render_is_table_shaped() {
        let text = render(&run(10));
        assert!(text.contains("elasticity"));
        assert_eq!(text.lines().count(), 14);
    }

    #[test]
    fn parallel_rows_are_bit_identical_to_serial() {
        let base = WorkloadParams::appendix_a(SharingLevel::Twenty);
        let serial =
            sensitivities_exec(&base, ModSet::new(), 10, 0.01, &ExecOptions::SERIAL).unwrap();
        for threads in [2, 8] {
            let parallel = sensitivities_exec(
                &base,
                ModSet::new(),
                10,
                0.01,
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn rows_sorted_by_magnitude() {
        let rows = run(10);
        let mags: Vec<f64> =
            rows.iter().filter_map(|r| r.elasticity).map(f64::abs).collect();
        for w in mags.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "{mags:?}");
        }
    }
}
