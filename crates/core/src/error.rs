use std::fmt;

use snoop_numeric::NumericError;
use snoop_workload::WorkloadError;

use crate::resilient::SolveDiagnostics;

/// Error type of the MVA model crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MvaError {
    /// The workload parameters or timing model were invalid.
    Workload(WorkloadError),
    /// The fixed-point iteration failed (non-convergence or a numerical
    /// breakdown).
    Numeric(NumericError),
    /// The requested system size is invalid (at least one processor is
    /// required).
    InvalidSystemSize(usize),
    /// Every strategy on the resilient escalation ladder failed.
    ///
    /// Carries the full per-attempt [`SolveDiagnostics`]: which strategies
    /// ran, how many iterations each spent, and the typed failure of each.
    SolveExhausted(Box<SolveDiagnostics>),
}

impl fmt::Display for MvaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvaError::Workload(e) => write!(f, "workload error: {e}"),
            MvaError::Numeric(e) => write!(f, "numeric error: {e}"),
            MvaError::InvalidSystemSize(n) => {
                write!(f, "invalid system size {n}, need at least one processor")
            }
            MvaError::SolveExhausted(diagnostics) => {
                write!(f, "every solve strategy failed ({diagnostics})")
            }
        }
    }
}

impl std::error::Error for MvaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MvaError::Workload(e) => Some(e),
            MvaError::Numeric(e) => Some(e),
            MvaError::InvalidSystemSize(_) => None,
            MvaError::SolveExhausted(_) => None,
        }
    }
}

impl From<WorkloadError> for MvaError {
    fn from(e: WorkloadError) -> Self {
        MvaError::Workload(e)
    }
}

impl From<NumericError> for MvaError {
    fn from(e: NumericError) -> Self {
        MvaError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error as _;
        let e = MvaError::InvalidSystemSize(0);
        assert!(e.to_string().contains("0"));
        assert!(e.source().is_none());

        let e = MvaError::from(NumericError::SingularMatrix { pivot: 1 });
        assert!(e.to_string().contains("numeric"));
        assert!(e.source().is_some());

        let e = MvaError::from(WorkloadError::InvalidParameter { name: "tau", value: -1.0 });
        assert!(e.to_string().contains("tau"));
    }
}
