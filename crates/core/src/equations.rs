//! The mean-value equations of Section 3.1, one function per equation.
//!
//! All functions are pure: they map the current iterates (waiting times,
//! response time) and the static model inputs to the quantity the paper's
//! equation defines. The fixed-point loop in [`crate::solver`] composes
//! them; keeping them separate makes each equation independently testable
//! against hand calculations.

use snoop_workload::derived::ModelInputs;

/// Effective memory wait attached to a broadcast: broadcasts that skip main
/// memory (modification 3) never wait for a module.
pub fn effective_w_mem(inputs: &ModelInputs, w_mem: f64) -> f64 {
    if inputs.bc_updates_memory {
        w_mem
    } else {
        0.0
    }
}

/// Equation (3): weighted mean response time of broadcast operations,
/// `R_broadcast = p_bc · (w_bus + w_mem + T_write)`.
pub fn r_broadcast(inputs: &ModelInputs, w_bus: f64, w_mem: f64) -> f64 {
    inputs.p_bc * (w_bus + effective_w_mem(inputs, w_mem) + inputs.t_write)
}

/// Equation (4): weighted mean response time of remote reads,
/// `R_RemoteRead = p_rr · (w_bus + t_read)`.
pub fn r_remote_read(inputs: &ModelInputs, w_bus: f64) -> f64 {
    inputs.p_rr * (w_bus + inputs.t_read)
}

/// Equation (1): mean time between memory requests,
/// `R = τ + R_local + R_broadcast + R_RemoteRead + T_supply`.
pub fn response_time(inputs: &ModelInputs, r_local: f64, r_bc: f64, r_rr: f64) -> f64 {
    inputs.tau + r_local + r_bc + r_rr + inputs.t_supply
}

/// Equation (6): mean bus queue length seen by an arrival,
/// `Q̄_bus = (N−1) · (R_bc + R_rr) / R`.
///
/// "the mean queue length seen by an arriving request is estimated by the
/// steady state mean queue length in the system if the requesting cache
/// were removed" — the arrival-theorem approximation of Product Form
/// queueing networks.
///
/// ```
/// use snoop_mva::equations::bus_queue_length;
/// // 10 processors each spending 2 of every 8 cycles in a bus phase: an
/// // arrival sees the other nine's expected population, 9 · 2/8.
/// assert_eq!(bus_queue_length(10, 1.5, 0.5, 8.0), 2.25);
/// assert_eq!(bus_queue_length(1, 1.5, 0.5, 8.0), 0.0);
/// ```
pub fn bus_queue_length(n: usize, r_bc: f64, r_rr: f64, r: f64) -> f64 {
    debug_assert!(n >= 1);
    ((n - 1) as f64) * (r_bc + r_rr) / r
}

/// Equation (7): bus utilization,
/// `U_bus = N · [p_bc·(w_mem + T_write) + p_rr·t_read] / R`, clamped to
/// `[0, 1]` (intermediate iterates can momentarily overshoot).
pub fn bus_utilization(inputs: &ModelInputs, n: usize, w_mem: f64, r: f64) -> f64 {
    let per_request = inputs.p_bc * (effective_w_mem(inputs, w_mem) + inputs.t_write)
        + inputs.p_rr * inputs.t_read;
    (n as f64 * per_request / r).clamp(0.0, 1.0)
}

/// Equation (8): probability an arrival finds the server busy,
/// `p_busy = (U − U/N) / (1 − U/N)`.
///
/// This removes the arriving cache's own contribution from the utilization,
/// the same one-customer-removed correction as Eq. (6). Shared by the bus
/// and the memory modules.
///
/// ```
/// use snoop_mva::equations::p_busy;
/// // A single customer never queues behind itself…
/// assert_eq!(p_busy(0.7, 1), 0.0);
/// // …while for many customers the correction vanishes.
/// assert!((p_busy(0.7, 10_000) - 0.7).abs() < 1e-3);
/// ```
pub fn p_busy(utilization: f64, n: usize) -> f64 {
    debug_assert!(n >= 1);
    let share = utilization / n as f64;
    if 1.0 - share <= 0.0 {
        return 1.0;
    }
    ((utilization - share) / (1.0 - share)).clamp(0.0, 1.0)
}

/// Equation (9): mean bus access time over both request classes,
/// `t_bus = [p_bc/(p_bc+p_rr)]·(T_write + w_mem) + [p_rr/(p_bc+p_rr)]·t_read`.
pub fn mean_bus_access(inputs: &ModelInputs, w_mem: f64) -> f64 {
    let total = inputs.p_bc + inputs.p_rr;
    if total <= 0.0 {
        return 0.0;
    }
    let t_bc = inputs.t_write + effective_w_mem(inputs, w_mem);
    (inputs.p_bc * t_bc + inputs.p_rr * inputs.t_read) / total
}

/// Equation (10): mean residual life of the bus request in service.
///
/// The request found in service is a broadcast with probability
/// proportional to the *time* broadcasts occupy the bus (length-biased
/// sampling), and its mean remaining time is half its duration —
/// deterministic access times, hence `x/2` rather than the exponential `x`.
pub fn bus_residual_life(inputs: &ModelInputs, w_mem: f64) -> f64 {
    let t_bc = inputs.t_write + effective_w_mem(inputs, w_mem);
    let time_bc = inputs.p_bc * t_bc;
    let time_rr = inputs.p_rr * inputs.t_read;
    let total = time_bc + time_rr;
    if total <= 0.0 {
        return 0.0;
    }
    (time_bc * (t_bc / 2.0) + time_rr * (inputs.t_read / 2.0)) / total
}

/// Equation (5): mean bus waiting time,
/// `w_bus = (Q̄ − p_busy)·t_bus + p_busy·t_res`.
///
/// An arrival waits for the residual life of the request in service plus a
/// full access time for every other queued request. Clamped at zero: early
/// iterates can make `Q̄ < p_busy`.
pub fn bus_waiting_time(q_bus: f64, p_busy_bus: f64, t_bus: f64, t_res: f64) -> f64 {
    ((q_bus - p_busy_bus) * t_bus + p_busy_bus * t_res).max(0.0)
}

/// Equation (12): memory-module utilization,
/// `U_mem = N · (1/m) · [p_bc + p_rr·(p_csupwb|rr + p_reqwb|rr)] · d_mem / R`,
/// clamped to `[0, 1]`.
///
/// Broadcasts hit one of the `m` interleaved modules; block write-backs
/// (supplier or requester) occupy the modules too. Under modification 3 the
/// broadcast term vanishes ("the term for broadcast writes is removed from
/// equation (12)").
pub fn memory_utilization(inputs: &ModelInputs, n: usize, r: f64) -> f64 {
    let bc_term = if inputs.bc_updates_memory { inputs.p_bc } else { 0.0 };
    let mass = bc_term + inputs.p_rr * (inputs.p_csupwb_rr + inputs.p_reqwb_rr);
    let m = f64::from(inputs.memory_modules);
    (n as f64 / m * mass * inputs.d_mem / r).clamp(0.0, 1.0)
}

/// Equation (11): mean memory waiting time,
/// `w_mem = p_busy,mem · d_mem / 2`.
pub fn memory_waiting_time(inputs: &ModelInputs, p_busy_mem: f64) -> f64 {
    p_busy_mem * inputs.d_mem / 2.0
}

/// Equation (2): weighted response-time contribution of locally satisfied
/// requests, `R_local = p_local · n_interference · t_interference`.
pub fn r_local(inputs: &ModelInputs, n_interference: f64, t_interference: f64) -> f64 {
    inputs.p_local * n_interference * t_interference
}

/// The speedup measure of Section 4: `N · (τ + T_supply) / R`.
///
/// ```
/// use snoop_mva::equations::speedup;
/// use snoop_protocol::ModSet;
/// use snoop_workload::derived::ModelInputs;
/// use snoop_workload::params::WorkloadParams;
/// use snoop_workload::timing::TimingModel;
///
/// # fn main() -> Result<(), snoop_workload::WorkloadError> {
/// let i = ModelInputs::derive(&WorkloadParams::default(), ModSet::new(),
///                             &TimingModel::default())?;
/// // If each processor needed exactly τ + T_supply per request (no
/// // contention, no misses), speedup would be N.
/// assert_eq!(speedup(&i, 8, i.tau + i.t_supply), 8.0);
/// # Ok(())
/// # }
/// ```
pub fn speedup(inputs: &ModelInputs, n: usize, r: f64) -> f64 {
    n as f64 * (inputs.tau + inputs.t_supply) / r
}

/// Processing power (Section 4.4): the sum of processor utilizations,
/// `N · τ / R`.
pub fn processing_power(inputs: &ModelInputs, n: usize, r: f64) -> f64 {
    n as f64 * inputs.tau / r
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};
    use snoop_workload::timing::TimingModel;

    fn inputs() -> ModelInputs {
        ModelInputs::derive(
            &WorkloadParams::appendix_a(SharingLevel::Five),
            ModSet::new(),
            &TimingModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn zero_wait_response_time() {
        let i = inputs();
        let r_bc = r_broadcast(&i, 0.0, 0.0);
        let r_rr = r_remote_read(&i, 0.0);
        let r = response_time(&i, 0.0, r_bc, r_rr);
        // τ + T_supply + p_bc·T_write + p_rr·t_read ≈ 4.096 (hand-computed).
        assert!((r - 4.096).abs() < 0.01, "R = {r}");
        // Single processor: speedup = 3.5 / R ≈ 0.854 (Table 4.1(a): 0.855).
        assert!((speedup(&i, 1, r) - 0.855).abs() < 0.005);
    }

    #[test]
    fn bus_queue_is_zero_for_single_processor() {
        assert_eq!(bus_queue_length(1, 0.5, 0.5, 4.0), 0.0);
        assert!(bus_queue_length(10, 0.5, 0.5, 4.0) > 0.0);
    }

    #[test]
    fn p_busy_removes_own_share() {
        // N = 1: an arrival can never find the bus busy with another request.
        assert_eq!(p_busy(0.7, 1), 0.0);
        // Large N: approaches the raw utilization.
        assert!((p_busy(0.7, 10_000) - 0.7).abs() < 1e-3);
        // Saturation edge.
        assert_eq!(p_busy(1.0, 1), 1.0);
    }

    #[test]
    fn mean_access_between_classes() {
        let i = inputs();
        let t = mean_bus_access(&i, 0.0);
        // Between T_write = 1 and t_read ≈ 8.7.
        assert!(t > 1.0 && t < i.t_read, "t_bus = {t}");
    }

    #[test]
    fn residual_life_is_length_biased() {
        let i = inputs();
        let t_res = bus_residual_life(&i, 0.0);
        let t_bus = mean_bus_access(&i, 0.0);
        // For deterministic services, the residual exceeds half the mean
        // access time whenever long requests dominate the time axis.
        assert!(t_res > t_bus / 2.0, "t_res = {t_res}, t_bus = {t_bus}");
        assert!(t_res < i.t_read / 2.0 + 1e-9);
    }

    #[test]
    fn waiting_time_never_negative() {
        // Q̄ < p_busy (possible on early iterates) must clamp to zero.
        assert_eq!(bus_waiting_time(0.1, 0.9, 5.0, 0.1), 0.0);
        // Normal case: (Q̄ − p_busy)·t_bus + p_busy·t_res.
        let w = bus_waiting_time(2.0, 0.5, 5.0, 2.0);
        assert!((w - (1.5 * 5.0 + 0.5 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamps() {
        let i = inputs();
        assert!(bus_utilization(&i, 1_000_000, 0.0, 4.0) <= 1.0);
        assert!(memory_utilization(&i, 1_000_000, 4.0) <= 1.0);
        assert!(bus_utilization(&i, 1, 0.0, 1e12) >= 0.0);
    }

    #[test]
    fn memory_utilization_drops_under_mod3() {
        let base = inputs();
        let mod3 = ModelInputs::derive(
            &WorkloadParams::appendix_a(SharingLevel::Five),
            ModSet::from_numbers(&[3]).unwrap(),
            &TimingModel::default(),
        )
        .unwrap();
        let r = 4.1;
        assert!(memory_utilization(&mod3, 10, r) < memory_utilization(&base, 10, r));
    }

    #[test]
    fn speedup_and_power_relation() {
        // Processing power = speedup · τ/(τ + T_supply) (Section 4.4).
        let i = inputs();
        let r = 5.0;
        let s = speedup(&i, 9, r);
        let p = processing_power(&i, 9, r);
        assert!((p - s * i.tau / (i.tau + i.t_supply)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_no_traffic_inputs() {
        let p = WorkloadParams::builder()
            .h_private(1.0)
            .h_sro(1.0)
            .h_sw(1.0)
            .amod_private(1.0)
            .amod_sw(1.0)
            .build()
            .unwrap();
        let i = ModelInputs::derive(&p, ModSet::new(), &TimingModel::default()).unwrap();
        assert_eq!(mean_bus_access(&i, 0.0), 0.0);
        assert_eq!(bus_residual_life(&i, 0.0), 0.0);
        let r = response_time(&i, 0.0, r_broadcast(&i, 0.0, 0.0), r_remote_read(&i, 0.0));
        assert!((r - (i.tau + i.t_supply)).abs() < 1e-12);
        // Perfect caching: speedup = N.
        assert!((speedup(&i, 7, r) - 7.0).abs() < 1e-12);
    }
}
