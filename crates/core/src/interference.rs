//! The cache-interference submodel (Section 3.1 "Cache Interference" and
//! Appendix B).
//!
//! Bus requests have priority over processor requests in a cache; dual
//! directories mean only requests that *require action* delay the
//! processor. The submodel estimates, for a request that could be handled
//! locally, how many consecutive bus requests delay it
//! (`n_interference`, Eq. 13) and for how long each (`t_interference`).
//!
//! Appendix B gives the two building blocks:
//!
//! * `p`  — probability a bus request issued by another cache requires some
//!   action in this cache (invalidation, update, or supply),
//! * `p′ ≤ p` — probability it occupies this cache *for the entire bus
//!   transaction* (supplying data or receiving a broadcast word, as opposed
//!   to a quick invalidation).
//!
//! Reconstruction notes (the appendix is partially ambiguous): a bus
//! request is a read/read-mod with probability `p_rr/(p_rr + p_bc)`. Given
//! that, it concerns this cache if it targets a shared block this cache
//! holds — the paper approximates "holds a copy" by the constant 0.5.
//! Given it holds a copy, this cache is *the supplier* with probability
//! `2/(N−1)` (a supplied block "is equally likely to be supplied by any of
//! the other caches", of which `(N−1)·0.5` are expected to hold it), if the
//! block is cache-suppliable (`csupply`-weighted share) and still resident
//! (the retention factor `1 − (rep_p·p_private + rep_sw·p_sw)`).

use snoop_workload::derived::ModelInputs;

/// Probability that a given other cache holds a copy of a referenced shared
/// block — the Appendix-B constant 0.5.
const HOLDS_COPY: f64 = 0.5;

/// The interference probabilities and times for one system size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interference {
    /// `p`: probability a snooped bus request requires action here.
    pub p: f64,
    /// `p′`: probability it occupies the cache for the whole transaction.
    pub p_prime: f64,
    /// Mean cache occupancy per interfering request (cycles).
    pub t_interference: f64,
}

impl Interference {
    /// Computes `p`, `p′` and `t_interference` from the workload masses for
    /// an `n`-processor system.
    pub fn compute(inputs: &ModelInputs, n: usize) -> Self {
        let total_bus = inputs.p_bc + inputs.p_rr;
        if total_bus <= 0.0 || n < 2 {
            return Interference { p: 0.0, p_prime: 0.0, t_interference: 0.0 };
        }

        // Appendix B: p = p_a + p_b.
        // p_a: read/read-mod to a shared block this cache holds.
        let p_a = HOLDS_COPY * inputs.shared_miss_mass / total_bus;
        // p_b: broadcast to a shared-writable block this cache holds
        // (private broadcasts never concern other caches).
        let p_b = HOLDS_COPY * inputs.sw_broadcast_mass / total_bus;
        let p = p_a + p_b;

        // P(this cache supplies | it holds a copy of the missed block):
        // chosen among the (N−1)·0.5 expected holders, weighted by the
        // cache-suppliable share and the retention factor.
        let suppliable_share = if inputs.shared_miss_mass > 0.0 {
            inputs.csupply_weighted_mass / inputs.shared_miss_mass
        } else {
            0.0
        };
        let supplies = (2.0 / ((n - 1) as f64)).min(1.0) * suppliable_share * inputs.retention;

        // p′: broadcasts occupy the cache fully (update or word delivery);
        // reads occupy fully only when this cache supplies.
        let p_prime = p_b + p_a * supplies;

        // Mean occupancy per interfering request: 1 cycle for the action
        // itself, plus — when this cache is the supplier — the block
        // transfer and, if the supply also writes memory (Write-Once dirty
        // supply), a second block time.
        let t_interference = if p > 0.0 {
            let wb_share = if inputs.csupply_weighted_mass > 0.0 {
                inputs.dirty_supply_mass / inputs.csupply_weighted_mass
            } else {
                0.0
            };
            1.0 + (p_a / p)
                * supplies
                * (inputs.block_cycles + wb_share * inputs.block_cycles)
        } else {
            0.0
        };

        Interference { p, p_prime, t_interference }
    }

    /// Equation (13): mean number of consecutive bus requests that delay a
    /// processor request, given the mean bus queue length `q_bus`:
    ///
    /// `n_interference = p · (1 − p′^Q̄) / (1 − p′)`.
    ///
    /// The closed form sums the geometric chain of full-duration holds
    /// capped at the queue length.
    pub fn n_interference(&self, q_bus: f64) -> f64 {
        if self.p <= 0.0 || q_bus <= 0.0 {
            return 0.0;
        }
        if self.p_prime >= 1.0 {
            // Degenerate limit of Eq. 13 as p′ → 1.
            return self.p * q_bus;
        }
        self.p * (1.0 - self.p_prime.powf(q_bus)) / (1.0 - self.p_prime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};
    use snoop_workload::timing::TimingModel;

    fn inputs(params: &WorkloadParams, mods: ModSet) -> ModelInputs {
        ModelInputs::derive_adjusted(params, mods, &TimingModel::default()).unwrap()
    }

    #[test]
    fn p_prime_never_exceeds_p() {
        for level in SharingLevel::ALL {
            for mods in ModSet::power_set() {
                let i = inputs(&WorkloadParams::appendix_a(level), mods);
                for n in [2, 4, 10, 100] {
                    let f = Interference::compute(&i, n);
                    assert!(
                        f.p_prime <= f.p + 1e-12,
                        "{level} {mods} N={n}: p'={} > p={}",
                        f.p_prime,
                        f.p
                    );
                    assert!(f.p <= 1.0 && f.p >= 0.0);
                }
            }
        }
    }

    #[test]
    fn single_processor_has_no_interference() {
        let i = inputs(&WorkloadParams::default(), ModSet::new());
        let f = Interference::compute(&i, 1);
        assert_eq!(f.p, 0.0);
        assert_eq!(f.n_interference(5.0), 0.0);
    }

    #[test]
    fn interference_is_small_for_appendix_a() {
        // Realistic workloads: cache interference is a minor effect.
        let i = inputs(&WorkloadParams::appendix_a(SharingLevel::Five), ModSet::new());
        let f = Interference::compute(&i, 10);
        assert!(f.p < 0.1, "p = {}", f.p);
        assert!(f.t_interference >= 1.0);
    }

    #[test]
    fn stress_workload_interferes_heavily() {
        // Section 4.3: csupply = 1, p_sw = 0.2, h_sw = 0.1 maximizes cache
        // interference.
        let normal = inputs(&WorkloadParams::appendix_a(SharingLevel::Five), ModSet::new());
        let stress = inputs(&WorkloadParams::stress(), ModSet::new());
        let fn_ = Interference::compute(&normal, 10);
        let fs = Interference::compute(&stress, 10);
        assert!(fs.p > 3.0 * fn_.p, "stress p = {}, normal p = {}", fs.p, fn_.p);
        assert!(fs.t_interference > fn_.t_interference);
    }

    #[test]
    fn n_interference_closed_form_limits() {
        let f = Interference { p: 0.4, p_prime: 0.0, t_interference: 1.0 };
        // p′ = 0: exactly one interfering request can hold the cache.
        assert!((f.n_interference(5.0) - 0.4).abs() < 1e-12);

        let f = Interference { p: 0.4, p_prime: 1.0, t_interference: 1.0 };
        // p′ = 1: every queued request chains.
        assert!((f.n_interference(5.0) - 2.0).abs() < 1e-12);

        let f = Interference { p: 0.4, p_prime: 0.5, t_interference: 1.0 };
        let expected = 0.4 * (1.0 - 0.5f64.powf(3.0)) / 0.5;
        assert!((f.n_interference(3.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn n_interference_monotone_in_queue_length() {
        let f = Interference { p: 0.3, p_prime: 0.4, t_interference: 1.5 };
        let mut last = 0.0;
        for q in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let v = f.n_interference(q);
            assert!(v >= last);
            last = v;
        }
        // Bounded by the geometric series limit p/(1−p′).
        assert!(last <= 0.3 / 0.6 + 1e-12);
    }

    #[test]
    fn mod4_raises_broadcast_interference() {
        let base = inputs(&WorkloadParams::appendix_a(SharingLevel::Twenty), ModSet::new());
        let m14 = inputs(
            &WorkloadParams::appendix_a(SharingLevel::Twenty),
            ModSet::from_numbers(&[1, 4]).unwrap(),
        );
        let fb = Interference::compute(&base, 10);
        let f14 = Interference::compute(&m14, 10);
        // Updates occupy caches fully: p′ share grows under mod 4.
        assert!(
            f14.p_prime / f14.p.max(1e-12) > fb.p_prime / fb.p.max(1e-12),
            "mod4 p'/p = {}, base = {}",
            f14.p_prime / f14.p,
            fb.p_prime / fb.p
        );
    }

    #[test]
    fn mod2_shortens_interference_time() {
        // "the calculations of t_contention no longer includes the term for
        // cache supply write-back".
        let base = inputs(&WorkloadParams::appendix_a(SharingLevel::Twenty), ModSet::new());
        let m2 = inputs(
            &WorkloadParams::appendix_a(SharingLevel::Twenty),
            ModSet::from_numbers(&[2]).unwrap(),
        );
        let fb = Interference::compute(&base, 10);
        let f2 = Interference::compute(&m2, 10);
        assert!(f2.t_interference < fb.t_interference);
    }

    #[test]
    fn supplies_probability_shrinks_with_system_size() {
        let i = inputs(&WorkloadParams::stress(), ModSet::new());
        let small = Interference::compute(&i, 3);
        let large = Interference::compute(&i, 30);
        assert!(large.p_prime < small.p_prime);
        // p itself is size-independent.
        assert!((large.p - small.p).abs() < 1e-12);
    }
}
