//! Parameter sweeps: speedup curves over system size, protocols and
//! sharing levels — the data behind Figure 4.1 and Table 4.1.
//!
//! [`resilient_speedup_series`] is the production entry point: each system
//! size is solved through the escalation ladder of [`crate::resilient`],
//! **warm-started** from the previous size's converged state (with a cold
//! retry on failure), and a size that defeats the whole ladder is reported
//! as [`SweepPoint::Failed`] instead of aborting the sweep.

use std::fmt;

use snoop_numeric::exec::{par_map, ExecOptions};
use snoop_protocol::ModSet;
use snoop_workload::params::{SharingLevel, WorkloadParams};

use crate::resilient::{ResilientOptions, ResilientSolution};
use crate::solver::{MvaModel, SolverOptions};
use crate::{MvaError, MvaSolution};

/// The processor counts of Table 4.1.
pub const TABLE_4_1_N: [usize; 9] = [1, 2, 4, 6, 8, 10, 15, 20, 100];

/// One speedup-vs-N series for a (protocol, sharing level) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupSeries {
    /// Modification set of the protocol.
    pub mods: ModSet,
    /// Sharing level of the workload.
    pub sharing: SharingLevel,
    /// Solutions, parallel to the requested `n` values.
    pub points: Vec<MvaSolution>,
}

impl SpeedupSeries {
    /// The speedups of the series.
    pub fn speedups(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.speedup).collect()
    }
}

/// One point of a resilient sweep: solved with diagnostics, or failed with
/// a reason — never a panic, never a silently-missing entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepPoint {
    /// The ladder converged at this size.
    Solved(ResilientSolution),
    /// Every strategy failed at this size; the sweep carried on.
    Failed {
        /// System size of the failed point.
        n: usize,
        /// The error that defeated the ladder (its display includes the
        /// per-attempt diagnostics).
        reason: String,
    },
}

impl SweepPoint {
    /// The system size of the point.
    pub fn n(&self) -> usize {
        match self {
            SweepPoint::Solved(r) => r.solution.n,
            SweepPoint::Failed { n, .. } => *n,
        }
    }

    /// The solution, when the point converged.
    pub fn solution(&self) -> Option<&MvaSolution> {
        match self {
            SweepPoint::Solved(r) => Some(&r.solution),
            SweepPoint::Failed { .. } => None,
        }
    }
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepPoint::Solved(r) => {
                write!(f, "N={}: speedup {:.3}", r.solution.n, r.solution.speedup)
            }
            SweepPoint::Failed { n, reason } => write!(f, "N={n}: FAILED ({reason})"),
        }
    }
}

/// A resilient speedup-vs-N series: one [`SweepPoint`] per requested size.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientSweep {
    /// Modification set of the protocol.
    pub mods: ModSet,
    /// Sharing level of the workload.
    pub sharing: SharingLevel,
    /// One point per requested size, solved or failed.
    pub points: Vec<SweepPoint>,
}

impl ResilientSweep {
    /// Number of failed points.
    pub fn failures(&self) -> usize {
        self.points.iter().filter(|p| matches!(p, SweepPoint::Failed { .. })).count()
    }

    /// Iterations summed over every attempt of every point — the metric
    /// that warm-starting is meant to shrink.
    pub fn total_iterations(&self) -> usize {
        self.points
            .iter()
            .filter_map(|p| match p {
                SweepPoint::Solved(r) => Some(r.diagnostics.total_iterations()),
                SweepPoint::Failed { .. } => None,
            })
            .sum()
    }
}

/// Solves one (protocol, sharing) series through the escalation ladder,
/// warm-starting each size from the previous size's converged state.
///
/// The warm seed is dropped (cold start) after a failed point. When
/// `warm_start` is false every point starts cold — useful for measuring
/// what warm-starting buys.
///
/// # Errors
///
/// Returns `Err` only if the workload itself is invalid (model
/// construction); solver failures degrade to [`SweepPoint::Failed`].
pub fn resilient_speedup_series(
    mods: ModSet,
    sharing: SharingLevel,
    sizes: &[usize],
    options: &ResilientOptions,
    warm_start: bool,
) -> Result<ResilientSweep, MvaError> {
    let model = MvaModel::for_protocol(&WorkloadParams::appendix_a(sharing), mods)?;
    Ok(ResilientSweep { mods, sharing, points: resilient_sweep(&model, sizes, options, warm_start) })
}

/// Sweeps an already-built model over `sizes` with warm-starting and
/// graceful degradation (the engine under [`resilient_speedup_series`]).
pub fn resilient_sweep(
    model: &MvaModel,
    sizes: &[usize],
    options: &ResilientOptions,
    warm_start: bool,
) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(sizes.len());
    let mut seed: Option<[f64; 3]> = None;
    for &n in sizes {
        let warm = seed.filter(|_| warm_start);
        let result = model.solve_resilient_seeded(n, warm, options).or_else(|e| {
            // A poisoned warm seed must not fail the point: retry cold.
            if warm.is_some() && !matches!(e, MvaError::InvalidSystemSize(_)) {
                model.solve_resilient(n, options)
            } else {
                Err(e)
            }
        });
        match result {
            Ok(resilient) => {
                let s = &resilient.solution;
                seed = Some([s.w_bus, s.w_mem, s.r]);
                points.push(SweepPoint::Solved(resilient));
            }
            Err(e) => {
                seed = None;
                points.push(SweepPoint::Failed { n, reason: e.to_string() });
            }
        }
    }
    points
}

/// Solves one (protocol, sharing) series over the given system sizes.
///
/// # Errors
///
/// Propagates model construction and solver errors.
pub fn speedup_series(
    mods: ModSet,
    sharing: SharingLevel,
    sizes: &[usize],
    options: &SolverOptions,
) -> Result<SpeedupSeries, MvaError> {
    let model = MvaModel::for_protocol(&WorkloadParams::appendix_a(sharing), mods)?;
    let points =
        sizes.iter().map(|&n| model.solve(n, options)).collect::<Result<Vec<_>, _>>()?;
    Ok(SpeedupSeries { mods, sharing, points })
}

/// The (protocol, sharing) grid of Figure 4.1: the three protocols the
/// paper plots (Write-Once, modification 1, modifications 1+4), each at
/// the three sharing levels, in plot order.
pub fn figure_4_1_grid() -> Vec<(ModSet, SharingLevel)> {
    use snoop_protocol::Modification;
    let protocols = [
        ModSet::new(),
        ModSet::new().with(Modification::ExclusiveLoad),
        ModSet::new().with(Modification::ExclusiveLoad).with(Modification::DistributedWrite),
    ];
    let mut grid = Vec::with_capacity(protocols.len() * SharingLevel::ALL.len());
    for mods in protocols {
        for sharing in SharingLevel::ALL {
            grid.push((mods, sharing));
        }
    }
    grid
}

/// Solves the full Figure 4.1 family serially (see
/// [`figure_4_1_family_exec`] for the parallel form).
///
/// # Errors
///
/// Propagates model construction and solver errors.
pub fn figure_4_1_family(
    sizes: &[usize],
    options: &SolverOptions,
) -> Result<Vec<SpeedupSeries>, MvaError> {
    figure_4_1_family_exec(sizes, options, &ExecOptions::SERIAL)
}

/// Solves the full Figure 4.1 family with the grid cells evaluated in
/// parallel: each (protocol, sharing) series is an independent work item,
/// and within a series the sizes remain sequential. Results are
/// bit-identical to the serial evaluation for any thread count.
///
/// # Errors
///
/// Propagates model construction and solver errors (the first failing
/// cell in grid order, matching the serial evaluation).
pub fn figure_4_1_family_exec(
    sizes: &[usize],
    options: &SolverOptions,
    exec: &ExecOptions,
) -> Result<Vec<SpeedupSeries>, MvaError> {
    par_map(&figure_4_1_grid(), exec, |&(mods, sharing)| {
        speedup_series(mods, sharing, sizes, options)
    })
    .into_iter()
    .collect()
}

/// Solves the Figure 4.1 family through the resilient escalation ladder,
/// one grid cell per work item: series run concurrently while
/// warm-starting stays *within* each series (sequential over N, exactly
/// as in [`resilient_speedup_series`]). Results are bit-identical to the
/// serial evaluation for any thread count.
///
/// # Errors
///
/// Returns `Err` only for invalid workloads (model construction); solver
/// failures degrade to [`SweepPoint::Failed`] entries.
pub fn resilient_figure_4_1_family(
    sizes: &[usize],
    options: &ResilientOptions,
    warm_start: bool,
    exec: &ExecOptions,
) -> Result<Vec<ResilientSweep>, MvaError> {
    par_map(&figure_4_1_grid(), exec, |&(mods, sharing)| {
        resilient_speedup_series(mods, sharing, sizes, options, warm_start)
    })
    .into_iter()
    .collect()
}

/// Solves one series with the size-dependent sharing refinement (the
/// \[GrMi87\] improvement the paper's Section 2.3 calls for), anchored so
/// the Appendix-A `csupply` values hold exactly at `reference_n`.
///
/// Unlike [`speedup_series`], the derived inputs change with `N`: the
/// probability that some other cache can supply a shared block grows as
/// `1 − (1 − q)^(N−1)`.
///
/// # Errors
///
/// Propagates model construction and solver errors.
pub fn refined_speedup_series(
    mods: ModSet,
    sharing: SharingLevel,
    sizes: &[usize],
    options: &SolverOptions,
    reference_n: usize,
) -> Result<SpeedupSeries, MvaError> {
    let base = WorkloadParams::appendix_a(sharing);
    let refinement =
        snoop_workload::sharing::SizeDependentSharing::anchored(&base, reference_n)?;
    let points = sizes
        .iter()
        .map(|&n| {
            let params = refinement.at_size(&base, n);
            MvaModel::for_protocol(&params, mods)?.solve(n, options)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SpeedupSeries { mods, sharing, points })
}

/// Sweeps one scalar workload parameter, returning `(value, speedup)`
/// pairs. `set` mutates a copy of `base` for each swept value.
///
/// # Errors
///
/// Propagates model construction and solver errors (e.g. an invalid swept
/// value).
pub fn parameter_sweep<F>(
    base: &WorkloadParams,
    mods: ModSet,
    n: usize,
    values: &[f64],
    options: &SolverOptions,
    mut set: F,
) -> Result<Vec<(f64, MvaSolution)>, MvaError>
where
    F: FnMut(&mut WorkloadParams, f64),
{
    values
        .iter()
        .map(|&v| {
            let mut params = *base;
            set(&mut params, v);
            let model = MvaModel::for_protocol(&params, mods)?;
            Ok((v, model.solve(n, options)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_has_one_point_per_size() {
        let s = speedup_series(
            ModSet::new(),
            SharingLevel::Five,
            &TABLE_4_1_N,
            &SolverOptions::default(),
        )
        .unwrap();
        assert_eq!(s.points.len(), 9);
        assert_eq!(s.speedups().len(), 9);
        assert_eq!(s.points[0].n, 1);
        assert_eq!(s.points[8].n, 100);
    }

    #[test]
    fn figure_family_has_nine_series() {
        let family = figure_4_1_family(&[1, 10], &SolverOptions::default()).unwrap();
        assert_eq!(family.len(), 9);
        // Distinct protocol/sharing combinations.
        let mut keys: Vec<String> =
            family.iter().map(|s| format!("{}/{}", s.mods, s.sharing)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 9);
    }

    #[test]
    fn refined_series_anchors_at_reference() {
        let fixed = speedup_series(
            ModSet::new(),
            SharingLevel::Twenty,
            &[2, 10, 50],
            &SolverOptions::default(),
        )
        .unwrap();
        let refined = refined_speedup_series(
            ModSet::new(),
            SharingLevel::Twenty,
            &[2, 10, 50],
            &SolverOptions::default(),
            10,
        )
        .unwrap();
        // At the anchor the two models coincide.
        assert!(
            (fixed.points[1].speedup - refined.points[1].speedup).abs() < 1e-9,
            "anchor mismatch: {} vs {}",
            fixed.points[1].speedup,
            refined.points[1].speedup
        );
        // Away from it they differ (csupply moved).
        assert!((fixed.points[0].speedup - refined.points[0].speedup).abs() > 1e-6);
        assert!((fixed.points[2].speedup - refined.points[2].speedup).abs() > 1e-6);
    }

    #[test]
    fn refinement_helps_at_scale_for_write_once() {
        // More caches holding copies means more cache-supplied (fast)
        // misses at large N — with Write-Once partially offset by extra
        // supplier write-backs; the net effect is positive for the
        // Appendix-A workload.
        let fixed = speedup_series(
            ModSet::new(),
            SharingLevel::Twenty,
            &[100],
            &SolverOptions::default(),
        )
        .unwrap();
        let refined = refined_speedup_series(
            ModSet::new(),
            SharingLevel::Twenty,
            &[100],
            &SolverOptions::default(),
            10,
        )
        .unwrap();
        assert!(
            refined.points[0].speedup > fixed.points[0].speedup,
            "refined {} vs fixed {}",
            refined.points[0].speedup,
            fixed.points[0].speedup
        );
    }

    #[test]
    fn resilient_series_matches_plain_series() {
        let plain = speedup_series(
            ModSet::new(),
            SharingLevel::Five,
            &TABLE_4_1_N,
            &SolverOptions::default(),
        )
        .unwrap();
        let resilient = resilient_speedup_series(
            ModSet::new(),
            SharingLevel::Five,
            &TABLE_4_1_N,
            &ResilientOptions::default(),
            true,
        )
        .unwrap();
        assert_eq!(resilient.failures(), 0);
        for (p, q) in plain.points.iter().zip(&resilient.points) {
            let s = q.solution().expect("solved");
            assert!(
                (p.speedup - s.speedup).abs() < 1e-6 * p.speedup.max(1.0),
                "N={}: plain {} vs resilient {}",
                p.n,
                p.speedup,
                s.speedup
            );
        }
    }

    #[test]
    fn warm_start_beats_cold_on_table_4_1_configs() {
        // The ISSUE's acceptance criterion: over the paper's Table 4.1
        // protocol/sharing grid, warm-started sweeps spend strictly fewer
        // total iterations than cold-started ones.
        use snoop_protocol::Modification;
        let protocols = [
            ModSet::new(),
            ModSet::new().with(Modification::ExclusiveLoad),
            ModSet::new().with(Modification::ExclusiveLoad).with(Modification::DistributedWrite),
        ];
        for mods in protocols {
            for sharing in SharingLevel::ALL {
                let options = ResilientOptions::default();
                let warm = resilient_speedup_series(mods, sharing, &TABLE_4_1_N, &options, true)
                    .unwrap();
                let cold = resilient_speedup_series(mods, sharing, &TABLE_4_1_N, &options, false)
                    .unwrap();
                assert_eq!(warm.failures(), 0, "{mods} {sharing}");
                assert_eq!(cold.failures(), 0, "{mods} {sharing}");
                assert!(
                    warm.total_iterations() < cold.total_iterations(),
                    "{mods} {sharing}: warm {} vs cold {}",
                    warm.total_iterations(),
                    cold.total_iterations()
                );
            }
        }
    }

    #[test]
    fn failed_points_degrade_gracefully() {
        // An unreachable tolerance defeats every strategy at every size:
        // the sweep must still return one (failed) point per size rather
        // than aborting, and each failure must carry a reason.
        let options = ResilientOptions {
            base: SolverOptions { max_iterations: 8, tolerance: 0.0, damping: 1.0 },
            ..ResilientOptions::default()
        };
        let sweep = resilient_speedup_series(
            ModSet::new(),
            SharingLevel::Five,
            &[1, 2, 4],
            &options,
            true,
        )
        .unwrap();
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(sweep.failures(), 3);
        for p in &sweep.points {
            match p {
                SweepPoint::Failed { reason, .. } => {
                    assert!(!reason.is_empty());
                    assert!(p.solution().is_none());
                }
                SweepPoint::Solved(_) => panic!("expected failure: {p}"),
            }
        }
    }

    #[test]
    fn parallel_family_is_bit_identical_to_serial() {
        let sizes = [1, 4, 10];
        let options = ResilientOptions::default();
        let serial =
            resilient_figure_4_1_family(&sizes, &options, true, &ExecOptions::SERIAL).unwrap();
        for threads in [2, 8] {
            let parallel = resilient_figure_4_1_family(
                &sizes,
                &options,
                true,
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn grid_has_nine_distinct_cells() {
        let grid = figure_4_1_grid();
        assert_eq!(grid.len(), 9);
        let mut keys: Vec<String> =
            grid.iter().map(|(m, s)| format!("{m}/{s}")).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 9);
    }

    #[test]
    fn parameter_sweep_tracks_hit_rate() {
        let sweep = parameter_sweep(
            &WorkloadParams::default(),
            ModSet::new(),
            10,
            &[0.80, 0.90, 0.99],
            &SolverOptions::default(),
            |p, v| p.h_private = v,
        )
        .unwrap();
        assert_eq!(sweep.len(), 3);
        // Higher private hit rate, higher speedup.
        assert!(sweep[2].1.speedup > sweep[0].1.speedup);
    }

    #[test]
    fn parameter_sweep_propagates_invalid_values() {
        let err = parameter_sweep(
            &WorkloadParams::default(),
            ModSet::new(),
            4,
            &[1.5],
            &SolverOptions::default(),
            |p, v| p.h_private = v,
        );
        assert!(err.is_err());
    }
}
