//! Parameter sweeps: speedup curves over system size, protocols and
//! sharing levels — the data behind Figure 4.1 and Table 4.1.

use snoop_protocol::ModSet;
use snoop_workload::params::{SharingLevel, WorkloadParams};

use crate::solver::{MvaModel, SolverOptions};
use crate::{MvaError, MvaSolution};

/// The processor counts of Table 4.1.
pub const TABLE_4_1_N: [usize; 9] = [1, 2, 4, 6, 8, 10, 15, 20, 100];

/// One speedup-vs-N series for a (protocol, sharing level) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupSeries {
    /// Modification set of the protocol.
    pub mods: ModSet,
    /// Sharing level of the workload.
    pub sharing: SharingLevel,
    /// Solutions, parallel to the requested `n` values.
    pub points: Vec<MvaSolution>,
}

impl SpeedupSeries {
    /// The speedups of the series.
    pub fn speedups(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.speedup).collect()
    }
}

/// Solves one (protocol, sharing) series over the given system sizes.
///
/// # Errors
///
/// Propagates model construction and solver errors.
pub fn speedup_series(
    mods: ModSet,
    sharing: SharingLevel,
    sizes: &[usize],
    options: &SolverOptions,
) -> Result<SpeedupSeries, MvaError> {
    let model = MvaModel::for_protocol(&WorkloadParams::appendix_a(sharing), mods)?;
    let points =
        sizes.iter().map(|&n| model.solve(n, options)).collect::<Result<Vec<_>, _>>()?;
    Ok(SpeedupSeries { mods, sharing, points })
}

/// Solves the full Figure 4.1 family: the three protocols the paper plots
/// (Write-Once, modification 1, modifications 1+4), each at the three
/// sharing levels.
///
/// # Errors
///
/// Propagates model construction and solver errors.
pub fn figure_4_1_family(
    sizes: &[usize],
    options: &SolverOptions,
) -> Result<Vec<SpeedupSeries>, MvaError> {
    let protocols = [
        ModSet::new(),
        ModSet::from_numbers(&[1]).expect("valid"),
        ModSet::from_numbers(&[1, 4]).expect("valid"),
    ];
    let mut series = Vec::new();
    for mods in protocols {
        for sharing in SharingLevel::ALL {
            series.push(speedup_series(mods, sharing, sizes, options)?);
        }
    }
    Ok(series)
}

/// Solves one series with the size-dependent sharing refinement (the
/// \[GrMi87\] improvement the paper's Section 2.3 calls for), anchored so
/// the Appendix-A `csupply` values hold exactly at `reference_n`.
///
/// Unlike [`speedup_series`], the derived inputs change with `N`: the
/// probability that some other cache can supply a shared block grows as
/// `1 − (1 − q)^(N−1)`.
///
/// # Errors
///
/// Propagates model construction and solver errors.
pub fn refined_speedup_series(
    mods: ModSet,
    sharing: SharingLevel,
    sizes: &[usize],
    options: &SolverOptions,
    reference_n: usize,
) -> Result<SpeedupSeries, MvaError> {
    let base = WorkloadParams::appendix_a(sharing);
    let refinement =
        snoop_workload::sharing::SizeDependentSharing::anchored(&base, reference_n)?;
    let points = sizes
        .iter()
        .map(|&n| {
            let params = refinement.at_size(&base, n);
            MvaModel::for_protocol(&params, mods)?.solve(n, options)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SpeedupSeries { mods, sharing, points })
}

/// Sweeps one scalar workload parameter, returning `(value, speedup)`
/// pairs. `set` mutates a copy of `base` for each swept value.
///
/// # Errors
///
/// Propagates model construction and solver errors (e.g. an invalid swept
/// value).
pub fn parameter_sweep<F>(
    base: &WorkloadParams,
    mods: ModSet,
    n: usize,
    values: &[f64],
    options: &SolverOptions,
    mut set: F,
) -> Result<Vec<(f64, MvaSolution)>, MvaError>
where
    F: FnMut(&mut WorkloadParams, f64),
{
    values
        .iter()
        .map(|&v| {
            let mut params = *base;
            set(&mut params, v);
            let model = MvaModel::for_protocol(&params, mods)?;
            Ok((v, model.solve(n, options)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_has_one_point_per_size() {
        let s = speedup_series(
            ModSet::new(),
            SharingLevel::Five,
            &TABLE_4_1_N,
            &SolverOptions::default(),
        )
        .unwrap();
        assert_eq!(s.points.len(), 9);
        assert_eq!(s.speedups().len(), 9);
        assert_eq!(s.points[0].n, 1);
        assert_eq!(s.points[8].n, 100);
    }

    #[test]
    fn figure_family_has_nine_series() {
        let family = figure_4_1_family(&[1, 10], &SolverOptions::default()).unwrap();
        assert_eq!(family.len(), 9);
        // Distinct protocol/sharing combinations.
        let mut keys: Vec<String> =
            family.iter().map(|s| format!("{}/{}", s.mods, s.sharing)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 9);
    }

    #[test]
    fn refined_series_anchors_at_reference() {
        let fixed = speedup_series(
            ModSet::new(),
            SharingLevel::Twenty,
            &[2, 10, 50],
            &SolverOptions::default(),
        )
        .unwrap();
        let refined = refined_speedup_series(
            ModSet::new(),
            SharingLevel::Twenty,
            &[2, 10, 50],
            &SolverOptions::default(),
            10,
        )
        .unwrap();
        // At the anchor the two models coincide.
        assert!(
            (fixed.points[1].speedup - refined.points[1].speedup).abs() < 1e-9,
            "anchor mismatch: {} vs {}",
            fixed.points[1].speedup,
            refined.points[1].speedup
        );
        // Away from it they differ (csupply moved).
        assert!((fixed.points[0].speedup - refined.points[0].speedup).abs() > 1e-6);
        assert!((fixed.points[2].speedup - refined.points[2].speedup).abs() > 1e-6);
    }

    #[test]
    fn refinement_helps_at_scale_for_write_once() {
        // More caches holding copies means more cache-supplied (fast)
        // misses at large N — with Write-Once partially offset by extra
        // supplier write-backs; the net effect is positive for the
        // Appendix-A workload.
        let fixed = speedup_series(
            ModSet::new(),
            SharingLevel::Twenty,
            &[100],
            &SolverOptions::default(),
        )
        .unwrap();
        let refined = refined_speedup_series(
            ModSet::new(),
            SharingLevel::Twenty,
            &[100],
            &SolverOptions::default(),
            10,
        )
        .unwrap();
        assert!(
            refined.points[0].speedup > fixed.points[0].speedup,
            "refined {} vs fixed {}",
            refined.points[0].speedup,
            fixed.points[0].speedup
        );
    }

    #[test]
    fn parameter_sweep_tracks_hit_rate() {
        let sweep = parameter_sweep(
            &WorkloadParams::default(),
            ModSet::new(),
            10,
            &[0.80, 0.90, 0.99],
            &SolverOptions::default(),
            |p, v| p.h_private = v,
        )
        .unwrap();
        assert_eq!(sweep.len(), 3);
        // Higher private hit rate, higher speedup.
        assert!(sweep[2].1.speedup > sweep[0].1.speedup);
    }

    #[test]
    fn parameter_sweep_propagates_invalid_values() {
        let err = parameter_sweep(
            &WorkloadParams::default(),
            ModSet::new(),
            4,
            &[1.5],
            &SolverOptions::default(),
            |p, v| p.h_private = v,
        );
        assert!(err.is_err());
    }
}
