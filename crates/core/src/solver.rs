//! The fixed-point solver (Section 3.2).
//!
//! The mean-value equations are cyclically interdependent: the response
//! time `R` depends on the bus and memory waiting times, which depend on
//! the utilizations, which depend on `R`. Following the paper, the solver
//! iterates from zero waiting times until the iterates stop moving.
//!
//! The iteration state is the vector `[w_bus, w_mem, R]`; one application
//! of the map evaluates Eqs. (1)–(13) in dependency order.

use snoop_numeric::fixed_point::{FixedPoint, Options};
use snoop_protocol::ModSet;
use snoop_workload::derived::ModelInputs;
use snoop_workload::params::WorkloadParams;
use snoop_workload::timing::TimingModel;

use crate::equations as eq;
use crate::interference::Interference;
use crate::outputs::MvaSolution;
use crate::MvaError;

/// Options controlling the fixed-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Maximum iterations (the paper needs ≤ 15 at engineering tolerance;
    /// the default budget is generous for tight tolerances and stress
    /// workloads).
    pub max_iterations: usize,
    /// Relative convergence tolerance on `[w_bus, w_mem, R]`.
    pub tolerance: f64,
    /// Damping factor in `(0, 1]`; 1 is the paper's plain iteration, values
    /// below 1 stabilize pathological workloads.
    pub damping: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions { max_iterations: 10_000, tolerance: 1e-12, damping: 1.0 }
    }
}

impl SolverOptions {
    /// The paper's engineering tolerance (used by the "≤ 15 iterations"
    /// reproduction; the paper does not state its tolerance — 1e-3 on the
    /// iterates reproduces its iteration counts for the system sizes it
    /// compares against the GTPN).
    pub fn paper() -> Self {
        SolverOptions { max_iterations: 500, tolerance: 1e-3, damping: 1.0 }
    }
}

/// An MVA model instance: derived inputs, ready to solve for any `N`.
///
/// # Example
///
/// ```
/// use snoop_mva::{MvaModel, SolverOptions};
/// use snoop_protocol::ModSet;
/// use snoop_workload::params::WorkloadParams;
///
/// # fn main() -> Result<(), snoop_mva::MvaError> {
/// let model = MvaModel::for_protocol(&WorkloadParams::default(), ModSet::new())?;
/// let s4 = model.solve(4, &SolverOptions::default())?;
/// let s8 = model.solve(8, &SolverOptions::default())?;
/// assert!(s8.speedup > s4.speedup);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MvaModel {
    inputs: ModelInputs,
}

impl MvaModel {
    /// Builds a model directly from derived inputs.
    pub fn new(inputs: ModelInputs) -> Self {
        MvaModel { inputs }
    }

    /// Derives inputs for `params` under `mods` — applying the paper's
    /// Appendix-A per-modification parameter adjustments — with the default
    /// timing model.
    ///
    /// # Errors
    ///
    /// Propagates workload validation errors.
    pub fn for_protocol(params: &WorkloadParams, mods: ModSet) -> Result<Self, MvaError> {
        let inputs = ModelInputs::derive_adjusted(params, mods, &TimingModel::default())?;
        Ok(MvaModel { inputs })
    }

    /// Like [`MvaModel::for_protocol`] with an explicit timing model.
    ///
    /// # Errors
    ///
    /// Propagates workload validation errors.
    pub fn with_timing(
        params: &WorkloadParams,
        mods: ModSet,
        timing: &TimingModel,
    ) -> Result<Self, MvaError> {
        let inputs = ModelInputs::derive_adjusted(params, mods, timing)?;
        Ok(MvaModel { inputs })
    }

    /// The derived inputs.
    pub fn inputs(&self) -> &ModelInputs {
        &self.inputs
    }

    /// One application of the mean-value map: `[w_bus, w_mem, R] →
    /// [w_bus′, w_mem′, R′]`, evaluating the equations in dependency order.
    fn step(&self, n: usize, interference: &Interference, state: &[f64], out: &mut [f64]) {
        let inputs = &self.inputs;
        let (w_bus, w_mem, r_prev) = (state[0], state[1], state[2]);
        // A non-positive or non-finite R is a diverged iterate, not a
        // recoverable state: emit NaN so the fixed-point layer reports a
        // structured `Diverged` failure instead of the old behaviour of
        // clamping R to 1e-12 and producing a plausible-looking queue
        // length from garbage.
        if !r_prev.is_finite() || r_prev <= 0.0 {
            out.fill(f64::NAN);
            return;
        }

        // Response-time components (Eqs. 2–4) from current waiting times.
        let r_bc = eq::r_broadcast(inputs, w_bus, w_mem);
        let r_rr = eq::r_remote_read(inputs, w_bus);
        let q_bus = eq::bus_queue_length(n, r_bc, r_rr, r_prev);
        let n_int = interference.n_interference(q_bus);
        let r_local = eq::r_local(inputs, n_int, interference.t_interference);
        let r = eq::response_time(inputs, r_local, r_bc, r_rr);

        // Bus waiting time (Eqs. 5–10).
        let u_bus = eq::bus_utilization(inputs, n, w_mem, r);
        let p_busy_bus = eq::p_busy(u_bus, n);
        let t_bus = eq::mean_bus_access(inputs, w_mem);
        let t_res = eq::bus_residual_life(inputs, w_mem);
        let w_bus_next = eq::bus_waiting_time(q_bus, p_busy_bus, t_bus, t_res);

        // Memory waiting time (Eqs. 11–12).
        let u_mem = eq::memory_utilization(inputs, n, r);
        let p_busy_mem = eq::p_busy(u_mem, n);
        let w_mem_next = eq::memory_waiting_time(inputs, p_busy_mem);

        out[0] = w_bus_next;
        out[1] = w_mem_next;
        out[2] = r;
    }

    /// The iteration's cold-start state `[0, 0, R₀]`: zero waiting times
    /// (Section 3.2) and the zero-wait response time.
    pub(crate) fn zero_wait_state(&self) -> Vec<f64> {
        let inputs = &self.inputs;
        let r0 = eq::response_time(
            inputs,
            0.0,
            eq::r_broadcast(inputs, 0.0, 0.0),
            eq::r_remote_read(inputs, 0.0),
        );
        vec![0.0, 0.0, r0]
    }

    /// Runs the raw mean-value fixed point from an arbitrary initial state
    /// with explicit numeric options — the primitive under both
    /// [`MvaModel::solve`] and the resilient escalation ladder
    /// (which needs custom damping schedules and warm starts).
    pub(crate) fn run_map(
        &self,
        n: usize,
        initial: Vec<f64>,
        options: &Options,
    ) -> Result<snoop_numeric::fixed_point::Solution, snoop_numeric::NumericError> {
        let _probe_span = snoop_numeric::probe::span("mva_solve");
        let interference = Interference::compute(&self.inputs, n);
        FixedPoint::new(options.clone())
            .solve(initial, |x, out| self.step(n, &interference, x, out))
    }

    /// Recomputes every reported measure from a converged state so the
    /// outputs are mutually consistent, and packages them.
    pub(crate) fn package_solution(&self, n: usize, values: &[f64], iterations: usize) -> MvaSolution {
        let inputs = &self.inputs;
        let interference = Interference::compute(inputs, n);
        let (w_bus, w_mem, r_conv) = (values[0], values[1], values[2]);
        let r_bc = eq::r_broadcast(inputs, w_bus, w_mem);
        let r_rr = eq::r_remote_read(inputs, w_bus);
        let q_bus = eq::bus_queue_length(n, r_bc, r_rr, r_conv);
        let n_int = interference.n_interference(q_bus);
        let r_local = eq::r_local(inputs, n_int, interference.t_interference);
        let r = eq::response_time(inputs, r_local, r_bc, r_rr);

        MvaSolution {
            n,
            r,
            speedup: eq::speedup(inputs, n, r),
            processing_power: eq::processing_power(inputs, n, r),
            bus_utilization: eq::bus_utilization(inputs, n, w_mem, r),
            memory_utilization: eq::memory_utilization(inputs, n, r),
            w_bus,
            w_mem,
            q_bus,
            n_interference: n_int,
            t_interference: interference.t_interference,
            r_local,
            r_broadcast: r_bc,
            r_remote_read: r_rr,
            iterations,
        }
    }

    /// Solves the model and returns the full iterate trajectory
    /// `(w_bus, w_mem, R)` per iteration — the raw material of the paper's
    /// Section 3.2 convergence claim, and the data behind the CLI's
    /// `convergence` command.
    ///
    /// # Errors
    ///
    /// Same contract as [`MvaModel::solve`].
    pub fn solve_traced(
        &self,
        n: usize,
        options: &SolverOptions,
    ) -> Result<(MvaSolution, Vec<[f64; 3]>), MvaError> {
        if n == 0 {
            return Err(MvaError::InvalidSystemSize(0));
        }
        let inputs = self.inputs;
        let interference = Interference::compute(&inputs, n);
        let r0 = eq::response_time(
            &inputs,
            0.0,
            eq::r_broadcast(&inputs, 0.0, 0.0),
            eq::r_remote_read(&inputs, 0.0),
        );
        let fixed_point = FixedPoint::new(Options {
            max_iterations: options.max_iterations,
            tolerance: options.tolerance,
            damping: options.damping,
            record_history: true,
            aitken: false,
            deadline: None,
        });
        let traced = fixed_point
            .solve(vec![0.0, 0.0, r0], |x, out| self.step(n, &interference, x, out))?;
        let history: Vec<[f64; 3]> =
            traced.history.iter().map(|v| [v[0], v[1], v[2]]).collect();
        // Reuse the standard path for the consistent solution report.
        let solution = self.solve(n, options)?;
        Ok((solution, history))
    }

    /// Solves the model for `n` processors.
    ///
    /// # Errors
    ///
    /// Returns [`MvaError::InvalidSystemSize`] for `n = 0` and propagates
    /// non-convergence as [`MvaError::Numeric`].
    pub fn solve(&self, n: usize, options: &SolverOptions) -> Result<MvaSolution, MvaError> {
        if n == 0 {
            return Err(MvaError::InvalidSystemSize(0));
        }
        // Plain successive substitution, the paper's method. Near deep
        // saturation (N in the thousands) the undamped map can oscillate;
        // retry with increasing under-relaxation, which preserves the fixed
        // point. Aitken acceleration is deliberately NOT used here: the
        // clamps in Eqs. (5)/(7)/(12) make the map non-smooth and
        // extrapolation can enter limit cycles. (For per-attempt
        // diagnostics, warm starts and a wider escalation ladder, see
        // [`MvaModel::solve_resilient`].)
        let mut last_err = None;
        for damping in [options.damping, 0.5 * options.damping, 0.1 * options.damping] {
            let fp_options = Options {
                max_iterations: options.max_iterations,
                tolerance: options.tolerance,
                damping,
                record_history: false,
                aitken: false,
                deadline: None,
            };
            match self.run_map(n, self.zero_wait_state(), &fp_options) {
                Ok(s) => return Ok(self.package_solution(n, &s.values, s.iterations)),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| {
                // Unreachable: the ladder above always runs at least once.
                snoop_numeric::NumericError::InvalidArgument(
                    "damping retry ladder made no attempts".into(),
                )
            })
            .into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_workload::params::SharingLevel;

    fn solve(level: SharingLevel, mods: &[u8], n: usize) -> MvaSolution {
        MvaModel::for_protocol(
            &WorkloadParams::appendix_a(level),
            ModSet::from_numbers(mods).unwrap(),
        )
        .unwrap()
        .solve(n, &SolverOptions::default())
        .unwrap()
    }

    #[test]
    fn rejects_zero_processors() {
        let m = MvaModel::for_protocol(&WorkloadParams::default(), ModSet::new()).unwrap();
        assert!(matches!(
            m.solve(0, &SolverOptions::default()),
            Err(MvaError::InvalidSystemSize(0))
        ));
    }

    #[test]
    fn single_processor_has_no_waiting() {
        let s = solve(SharingLevel::Five, &[], 1);
        assert_eq!(s.w_bus, 0.0);
        assert_eq!(s.w_mem, 0.0);
        assert_eq!(s.q_bus, 0.0);
        // Table 4.1(a): 0.855 at N = 1, 5% sharing.
        assert!((s.speedup - 0.855).abs() < 0.005, "speedup = {}", s.speedup);
    }

    #[test]
    fn solutions_are_physical() {
        for level in SharingLevel::ALL {
            for mods in [&[][..], &[1], &[2], &[3], &[1, 4], &[1, 2, 3], &[1, 2, 3, 4]] {
                for n in [1, 2, 6, 10, 20, 100] {
                    let s = solve(level, mods, n);
                    assert!(
                        s.is_physical(2.5, 1.0),
                        "{level} {mods:?} N={n}: {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn speedup_is_nearly_monotone_in_n() {
        // Speedup grows with N until saturation, then flattens. A slight
        // decline past saturation is genuine model behaviour — the paper's
        // own Table 4.1(b) reads 7.09 at N = 20 and 7.04 at N = 100 — so a
        // 1% dip is tolerated.
        for level in SharingLevel::ALL {
            let mut last = 0.0;
            for n in [1, 2, 4, 6, 8, 10, 15, 20, 50, 100] {
                let s = solve(level, &[], n);
                assert!(
                    s.speedup >= last * 0.99,
                    "{level}: speedup dropped at N={n}: {} < {last}",
                    s.speedup
                );
                last = last.max(s.speedup);
            }
        }
    }

    #[test]
    fn bus_saturates_as_n_grows() {
        let s = solve(SharingLevel::Five, &[], 100);
        assert!(s.bus_utilization > 0.95, "U_bus = {}", s.bus_utilization);
        // The response time grows roughly linearly with N past saturation,
        // so speedup flattens.
        let s200 = solve(SharingLevel::Five, &[], 200);
        assert!((s200.speedup - s.speedup).abs() < 0.05);
    }

    #[test]
    fn more_sharing_means_less_speedup() {
        for n in [4, 10, 20] {
            let one = solve(SharingLevel::One, &[], n).speedup;
            let five = solve(SharingLevel::Five, &[], n).speedup;
            let twenty = solve(SharingLevel::Twenty, &[], n).speedup;
            assert!(one > five && five > twenty, "N={n}: {one} {five} {twenty}");
        }
    }

    #[test]
    fn modification_1_improves_speedup() {
        for level in SharingLevel::ALL {
            for n in [6, 10, 20] {
                let wo = solve(level, &[], n).speedup;
                let m1 = solve(level, &[1], n).speedup;
                assert!(m1 > wo, "{level} N={n}: mod1 {m1} ≤ WO {wo}");
            }
        }
    }

    #[test]
    fn modifications_2_and_3_have_little_effect() {
        // Section 4: "Speedups for modifications 2 and 3 are nearly
        // indistinguishable from the results for the protocols without
        // these modifications."
        for level in SharingLevel::ALL {
            let wo = solve(level, &[], 10).speedup;
            let m2 = solve(level, &[2], 10).speedup;
            let m3 = solve(level, &[3], 10).speedup;
            assert!((m2 - wo).abs() / wo < 0.03, "{level}: mod2 {m2} vs {wo}");
            assert!((m3 - wo).abs() / wo < 0.03, "{level}: mod3 {m3} vs {wo}");
        }
    }

    #[test]
    fn modification_4_helps_at_scale_and_sharing() {
        // Section 4.1: "Modification 4 is more advantageous as system size
        // and the level of sharing increase."
        let m1 = solve(SharingLevel::Twenty, &[1], 100).speedup;
        let m14 = solve(SharingLevel::Twenty, &[1, 4], 100).speedup;
        assert!(m14 > m1 + 1.0, "mod1+4 {m14} vs mod1 {m1}");
    }

    #[test]
    fn converges_within_16_iterations_at_paper_tolerance() {
        // Section 3.2: "Solution of the equations converged within 15
        // iterations in all experiments reported in this paper." Our map
        // (which carries the response time as an explicit state component)
        // needs at most 16 over the GTPN-comparison range N ≤ 10 at the
        // engineering tolerance; beyond saturation (N ≥ 15) plain
        // substitution slows as its linear rate approaches 1, which the
        // solver tolerates with its larger default budget.
        for level in SharingLevel::ALL {
            for mods in [&[][..], &[1], &[2], &[3], &[1, 4], &[1, 2, 3]] {
                for n in [1, 2, 4, 6, 8, 10] {
                    let model = MvaModel::for_protocol(
                        &WorkloadParams::appendix_a(level),
                        ModSet::from_numbers(mods).unwrap(),
                    )
                    .unwrap();
                    let s = model.solve(n, &SolverOptions::paper()).unwrap();
                    assert!(
                        s.iterations <= 16,
                        "{level} {mods:?} N={n}: {} iterations",
                        s.iterations
                    );
                }
            }
        }
    }

    #[test]
    fn traced_solve_matches_plain_solve() {
        let model = MvaModel::for_protocol(
            &WorkloadParams::appendix_a(SharingLevel::Five),
            ModSet::new(),
        )
        .unwrap();
        let plain = model.solve(10, &SolverOptions::paper()).unwrap();
        let (traced, history) = model.solve_traced(10, &SolverOptions::paper()).unwrap();
        assert!((plain.r - traced.r).abs() < 1e-12);
        // History starts at zero waits and ends at the fixed point.
        assert_eq!(history[0][0], 0.0);
        assert_eq!(history[0][1], 0.0);
        let last = history.last().unwrap();
        assert!((last[0] - traced.w_bus).abs() < 1e-3);
        // Monotone approach for this workload: R grows from its zero-wait
        // value toward the fixed point.
        assert!(history.first().unwrap()[2] <= last[2] + 1e-9);
        assert!(history.len() >= 2);
    }

    #[test]
    fn stress_workload_converges() {
        let model =
            MvaModel::for_protocol(&WorkloadParams::stress(), ModSet::new()).unwrap();
        for n in [2, 10, 50] {
            let s = model.solve(n, &SolverOptions::default()).unwrap();
            assert!(s.is_physical(2.5, 1.0), "N={n}: {s}");
        }
    }

    #[test]
    fn damping_reaches_same_fixed_point() {
        let model = MvaModel::for_protocol(
            &WorkloadParams::appendix_a(SharingLevel::Twenty),
            ModSet::new(),
        )
        .unwrap();
        let plain = model.solve(10, &SolverOptions::default()).unwrap();
        let damped = model
            .solve(10, &SolverOptions { damping: 0.5, ..SolverOptions::default() })
            .unwrap();
        assert!((plain.r - damped.r).abs() < 1e-8);
    }

    #[test]
    fn perfect_cache_gives_linear_speedup() {
        let p = WorkloadParams::builder()
            .h_private(1.0)
            .h_sro(1.0)
            .h_sw(1.0)
            .amod_private(1.0)
            .amod_sw(1.0)
            .build()
            .unwrap();
        let model = MvaModel::for_protocol(&p, ModSet::new()).unwrap();
        let s = model.solve(64, &SolverOptions::default()).unwrap();
        assert!((s.speedup - 64.0).abs() < 1e-9);
        assert_eq!(s.bus_utilization, 0.0);
    }
}
