//! Multi-class extension of the mean-value model.
//!
//! The paper closes by arguing its "customized mean value equation"
//! approach extends to "larger and more complex cache-coherent
//! multiprocessors" (Section 5). This module takes one concrete step in
//! that direction: **heterogeneous workload classes** sharing one bus —
//! e.g. a machine where some processors run an OS/interactive mix with
//! heavy sharing while others run private-data compute, or where different
//! processors run different coherence-relevant reference mixes.
//!
//! Each class `c` (with `N_c` processors and its own derived
//! [`ModelInputs`]) gets its own response-time equation; the bus and
//! memory waiting times couple the classes exactly as in the single-class
//! Eqs. (5)–(12), with class-weighted utilizations, access times and
//! residual lives. With one class the model reduces *identically* to
//! [`crate::MvaModel`] (property-tested).

use snoop_numeric::fixed_point::{FixedPoint, Options};
use snoop_workload::derived::ModelInputs;

use crate::equations as eq;
use crate::interference::Interference;
use crate::MvaError;

/// One workload class: a number of identical processors plus their
/// derived inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadClass {
    /// Number of processors of this class.
    pub count: usize,
    /// Derived model inputs for this class's workload/protocol.
    pub inputs: ModelInputs,
}

/// A solved multi-class model.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassSolution {
    /// Per-class mean time between requests.
    pub r: Vec<f64>,
    /// Per-class speedup contribution `N_c·(τ_c + T_supply)/R_c`.
    pub class_speedup: Vec<f64>,
    /// Total speedup (sum of class contributions).
    pub speedup: f64,
    /// Bus utilization.
    pub bus_utilization: f64,
    /// Memory-module utilization.
    pub memory_utilization: f64,
    /// Mean bus waiting time (common to all classes).
    pub w_bus: f64,
    /// Mean memory waiting time.
    pub w_mem: f64,
    /// Iterations to convergence.
    pub iterations: usize,
}

/// The multi-class mean-value model.
///
/// # Example
///
/// ```
/// use snoop_mva::multiclass::{MulticlassModel, WorkloadClass};
/// use snoop_protocol::ModSet;
/// use snoop_workload::derived::ModelInputs;
/// use snoop_workload::params::{SharingLevel, WorkloadParams};
/// use snoop_workload::timing::TimingModel;
///
/// # fn main() -> Result<(), snoop_mva::MvaError> {
/// let timing = TimingModel::default();
/// let light = ModelInputs::derive_adjusted(
///     &WorkloadParams::appendix_a(SharingLevel::One), ModSet::new(), &timing)?;
/// let heavy = ModelInputs::derive_adjusted(
///     &WorkloadParams::appendix_a(SharingLevel::Twenty), ModSet::new(), &timing)?;
/// let model = MulticlassModel::new(vec![
///     WorkloadClass { count: 4, inputs: light },
///     WorkloadClass { count: 4, inputs: heavy },
/// ])?;
/// let s = model.solve()?;
/// assert!(s.speedup > 3.0 && s.speedup < 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassModel {
    classes: Vec<WorkloadClass>,
}

impl MulticlassModel {
    /// Creates a model over the given classes.
    ///
    /// # Errors
    ///
    /// Returns [`MvaError::InvalidSystemSize`] if there are no classes or
    /// every class is empty.
    pub fn new(classes: Vec<WorkloadClass>) -> Result<Self, MvaError> {
        let total: usize = classes.iter().map(|c| c.count).sum();
        if classes.is_empty() || total == 0 {
            return Err(MvaError::InvalidSystemSize(0));
        }
        Ok(MulticlassModel { classes })
    }

    /// Total number of processors.
    pub fn total_processors(&self) -> usize {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Solves the coupled fixed point. State vector: `[w_bus, w_mem,
    /// R_1, …, R_C]`.
    ///
    /// # Errors
    ///
    /// Propagates non-convergence.
    pub fn solve(&self) -> Result<MulticlassSolution, MvaError> {
        let n_total = self.total_processors();
        let c_count = self.classes.len();
        let interference: Vec<Interference> =
            self.classes.iter().map(|c| Interference::compute(&c.inputs, n_total)).collect();

        // Initial state: zero waits, zero-wait response times.
        let mut initial = vec![0.0, 0.0];
        for class in &self.classes {
            let i = &class.inputs;
            initial.push(eq::response_time(
                i,
                0.0,
                eq::r_broadcast(i, 0.0, 0.0),
                eq::r_remote_read(i, 0.0),
            ));
        }

        let step = |state: &[f64], out: &mut [f64]| {
            let (w_bus, w_mem) = (state[0], state[1]);

            // Per-class response times. The arrival-seen queue for a
            // class-c request is the total expected bus-phase population
            // minus the requester's own contribution — the multi-class
            // generalization of Eq. 6's (N−1) factor.
            let mut new_r = vec![0.0; c_count];
            let q_total: f64 = self
                .classes
                .iter()
                .enumerate()
                .map(|(ci, class)| {
                    let i = &class.inputs;
                    let r_prev = state[2 + ci].max(1e-12);
                    class.count as f64
                        * (eq::r_broadcast(i, w_bus, w_mem) + eq::r_remote_read(i, w_bus))
                        / r_prev
                })
                .sum();
            for (ci, class) in self.classes.iter().enumerate() {
                let i = &class.inputs;
                let r_prev = state[2 + ci].max(1e-12);
                let r_bc = eq::r_broadcast(i, w_bus, w_mem);
                let r_rr = eq::r_remote_read(i, w_bus);
                let q_seen = (q_total - (r_bc + r_rr) / r_prev).max(0.0);
                let n_int = interference[ci].n_interference(q_seen);
                let r_local = eq::r_local(i, n_int, interference[ci].t_interference);
                new_r[ci] = eq::response_time(i, r_local, r_bc, r_rr);
            }

            // Class-weighted bus utilization, access time and residual.
            let mut u_bus = 0.0;
            let mut rate_bc = 0.0; // class-weighted broadcast rate
            let mut rate_rr = 0.0;
            let mut t_bc_mix = 0.0;
            let mut t_rr_mix = 0.0;
            let mut u_mem = 0.0;
            for (ci, class) in self.classes.iter().enumerate() {
                let i = &class.inputs;
                let nr = class.count as f64 / new_r[ci].max(1e-12);
                let w_mem_eff = eq::effective_w_mem(i, w_mem);
                let t_bc = i.t_write + w_mem_eff;
                u_bus += nr * (i.p_bc * t_bc + i.p_rr * i.t_read);
                rate_bc += nr * i.p_bc;
                rate_rr += nr * i.p_rr;
                t_bc_mix += nr * i.p_bc * t_bc;
                t_rr_mix += nr * i.p_rr * i.t_read;
                let bc_mem = if i.bc_updates_memory { i.p_bc } else { 0.0 };
                u_mem += nr
                    * (bc_mem + i.p_rr * (i.p_csupwb_rr + i.p_reqwb_rr))
                    * i.d_mem
                    / f64::from(i.memory_modules);
            }
            let u_bus = u_bus.clamp(0.0, 1.0);
            let u_mem = u_mem.clamp(0.0, 1.0);
            let total_rate = rate_bc + rate_rr;
            let (t_bus, t_res) = if total_rate > 0.0 && (t_bc_mix + t_rr_mix) > 0.0 {
                let t_bus = (t_bc_mix + t_rr_mix) / total_rate;
                let mean_bc = if rate_bc > 0.0 { t_bc_mix / rate_bc } else { 0.0 };
                let mean_rr = if rate_rr > 0.0 { t_rr_mix / rate_rr } else { 0.0 };
                let t_res = (t_bc_mix * (mean_bc / 2.0) + t_rr_mix * (mean_rr / 2.0))
                    / (t_bc_mix + t_rr_mix);
                (t_bus, t_res)
            } else {
                (0.0, 0.0)
            };

            let p_busy_bus = eq::p_busy(u_bus, n_total);
            let p_busy_mem = eq::p_busy(u_mem, n_total);

            // Arrival-seen queue, averaged over classes: the total minus
            // one processor's expected own contribution (q_total/N). With
            // one class this is exactly Eq. 6's (N−1)/N factor.
            let q_seen_avg = (q_total * (1.0 - 1.0 / n_total as f64)).max(0.0);
            out[0] = eq::bus_waiting_time(q_seen_avg, p_busy_bus, t_bus, t_res);
            // Memory wait uses the maximum d_mem across classes (identical
            // in practice — they share the physical memory).
            let d_mem = self.classes.iter().map(|c| c.inputs.d_mem).fold(0.0, f64::max);
            out[1] = p_busy_mem * d_mem / 2.0;
            out[2..2 + c_count].copy_from_slice(&new_r);
        };

        let solver = FixedPoint::new(Options {
            max_iterations: 20_000,
            tolerance: 1e-12,
            damping: 1.0,
            record_history: false,
            aitken: false,
            deadline: None,
        });
        let solution = match solver.solve(initial.clone(), step) {
            Ok(s) => s,
            Err(_) => FixedPoint::new(Options {
                max_iterations: 40_000,
                tolerance: 1e-12,
                damping: 0.3,
                record_history: false,
                aitken: false,
                deadline: None,
            })
            .solve(initial, step)?,
        };

        let (w_bus, w_mem) = (solution.values[0], solution.values[1]);
        let r: Vec<f64> = solution.values[2..].to_vec();
        let class_speedup: Vec<f64> = self
            .classes
            .iter()
            .zip(&r)
            .map(|(c, &r)| c.count as f64 * (c.inputs.tau + c.inputs.t_supply) / r)
            .collect();

        // Final utilizations from the converged state.
        let mut u_bus = 0.0;
        let mut u_mem = 0.0;
        for (class, &rc) in self.classes.iter().zip(&r) {
            let i = &class.inputs;
            let nr = class.count as f64 / rc;
            let w_mem_eff = eq::effective_w_mem(i, w_mem);
            u_bus += nr * (i.p_bc * (i.t_write + w_mem_eff) + i.p_rr * i.t_read);
            let bc_mem = if i.bc_updates_memory { i.p_bc } else { 0.0 };
            u_mem += nr
                * (bc_mem + i.p_rr * (i.p_csupwb_rr + i.p_reqwb_rr))
                * i.d_mem
                / f64::from(i.memory_modules);
        }

        Ok(MulticlassSolution {
            speedup: class_speedup.iter().sum(),
            class_speedup,
            r,
            bus_utilization: u_bus.clamp(0.0, 1.0),
            memory_utilization: u_mem.clamp(0.0, 1.0),
            w_bus,
            w_mem,
            iterations: solution.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{MvaModel, SolverOptions};
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};
    use snoop_workload::timing::TimingModel;

    fn inputs(level: SharingLevel, mods: &[u8]) -> ModelInputs {
        ModelInputs::derive_adjusted(
            &WorkloadParams::appendix_a(level),
            ModSet::from_numbers(mods).unwrap(),
            &TimingModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn single_class_reduces_to_single_class_model() {
        for level in SharingLevel::ALL {
            for n in [1usize, 4, 10, 20] {
                let i = inputs(level, &[]);
                let multi = MulticlassModel::new(vec![WorkloadClass { count: n, inputs: i }])
                    .unwrap()
                    .solve()
                    .unwrap();
                let single =
                    MvaModel::new(i).solve(n, &SolverOptions::default()).unwrap();
                assert!(
                    (multi.speedup - single.speedup).abs() < 1e-6,
                    "{level} N={n}: multi {} vs single {}",
                    multi.speedup,
                    single.speedup
                );
                assert!((multi.w_bus - single.w_bus).abs() < 1e-6);
                assert!((multi.bus_utilization - single.bus_utilization).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn identical_classes_merge() {
        let i = inputs(SharingLevel::Five, &[]);
        let split = MulticlassModel::new(vec![
            WorkloadClass { count: 3, inputs: i },
            WorkloadClass { count: 5, inputs: i },
        ])
        .unwrap()
        .solve()
        .unwrap();
        let merged = MulticlassModel::new(vec![WorkloadClass { count: 8, inputs: i }])
            .unwrap()
            .solve()
            .unwrap();
        assert!(
            (split.speedup - merged.speedup).abs() < 1e-6,
            "{} vs {}",
            split.speedup,
            merged.speedup
        );
    }

    #[test]
    fn mixed_system_sits_between_pure_systems() {
        let light = inputs(SharingLevel::One, &[]);
        let heavy = inputs(SharingLevel::Twenty, &[]);
        let pure_light = MulticlassModel::new(vec![WorkloadClass { count: 8, inputs: light }])
            .unwrap()
            .solve()
            .unwrap();
        let pure_heavy = MulticlassModel::new(vec![WorkloadClass { count: 8, inputs: heavy }])
            .unwrap()
            .solve()
            .unwrap();
        let mixed = MulticlassModel::new(vec![
            WorkloadClass { count: 4, inputs: light },
            WorkloadClass { count: 4, inputs: heavy },
        ])
        .unwrap()
        .solve()
        .unwrap();
        assert!(
            mixed.speedup < pure_light.speedup && mixed.speedup > pure_heavy.speedup,
            "light {} mixed {} heavy {}",
            pure_light.speedup,
            mixed.speedup,
            pure_heavy.speedup
        );
    }

    #[test]
    fn light_class_outperforms_heavy_class_per_processor() {
        let light = inputs(SharingLevel::One, &[]);
        let heavy = inputs(SharingLevel::Twenty, &[]);
        let mixed = MulticlassModel::new(vec![
            WorkloadClass { count: 4, inputs: light },
            WorkloadClass { count: 4, inputs: heavy },
        ])
        .unwrap()
        .solve()
        .unwrap();
        let per_light = mixed.class_speedup[0] / 4.0;
        let per_heavy = mixed.class_speedup[1] / 4.0;
        assert!(per_light > per_heavy, "{per_light} vs {per_heavy}");
    }

    #[test]
    fn heavy_neighbours_slow_you_down() {
        let light = inputs(SharingLevel::One, &[]);
        let heavy = inputs(SharingLevel::Twenty, &[]);
        let alone = MulticlassModel::new(vec![WorkloadClass { count: 4, inputs: light }])
            .unwrap()
            .solve()
            .unwrap();
        let crowded = MulticlassModel::new(vec![
            WorkloadClass { count: 4, inputs: light },
            WorkloadClass { count: 8, inputs: heavy },
        ])
        .unwrap()
        .solve()
        .unwrap();
        assert!(
            crowded.class_speedup[0] < alone.speedup,
            "{} vs {}",
            crowded.class_speedup[0],
            alone.speedup
        );
    }

    #[test]
    fn mixed_protocols_share_the_bus() {
        // Half the machine runs Write-Once, half runs mods 1+4.
        let wo = inputs(SharingLevel::Five, &[]);
        let m14 = inputs(SharingLevel::Five, &[1, 4]);
        let s = MulticlassModel::new(vec![
            WorkloadClass { count: 5, inputs: wo },
            WorkloadClass { count: 5, inputs: m14 },
        ])
        .unwrap()
        .solve()
        .unwrap();
        assert!(s.class_speedup[1] > s.class_speedup[0]);
        assert!(s.bus_utilization <= 1.0);
        assert!(s.speedup > 4.0 && s.speedup < 10.0, "{}", s.speedup);
    }

    #[test]
    fn rejects_empty() {
        assert!(MulticlassModel::new(vec![]).is_err());
        let i = inputs(SharingLevel::Five, &[]);
        assert!(MulticlassModel::new(vec![WorkloadClass { count: 0, inputs: i }]).is_err());
    }
}
