//! Bus-traffic decomposition.
//!
//! Speedup tells you *that* a modification helps; the traffic breakdown
//! tells you *why*. This module splits the expected bus occupancy per 100
//! memory references into its causes — write-through/invalidate
//! announcements, miss fetches (memory- vs cache-supplied), supplier
//! write-backs and replacement write-backs — the presentation style of the
//! original protocol papers (\[Good83\], \[PaPa84\], \[KEWP85\]).

use snoop_workload::derived::ModelInputs;

/// Expected bus operations and bus cycles per 100 memory references,
/// decomposed by cause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficBreakdown {
    /// Consistency announcements (`write-word`/`invalidate`): operations.
    pub announcements: f64,
    /// Announcement bus cycles.
    pub announcement_cycles: f64,
    /// Miss fetches supplied by memory: operations.
    pub memory_fetches: f64,
    /// Memory-fetch bus cycles.
    pub memory_fetch_cycles: f64,
    /// Miss fetches supplied by another cache: operations.
    pub cache_fetches: f64,
    /// Cache-fetch bus cycles.
    pub cache_fetch_cycles: f64,
    /// Supplier write-backs (Write-Once's dirty-snoop memory update):
    /// block transfers.
    pub supplier_writebacks: f64,
    /// Supplier write-back cycles.
    pub supplier_writeback_cycles: f64,
    /// Replacement (victim) write-backs: block transfers.
    pub replacement_writebacks: f64,
    /// Replacement write-back cycles.
    pub replacement_writeback_cycles: f64,
}

impl TrafficBreakdown {
    /// Computes the breakdown from derived model inputs, using the same
    /// timing reconstruction as `t_read` (memory fetch 8 cycles, cache
    /// fetch 4, write-back 4 with the default timing model, all scaled by
    /// the inputs' block size).
    pub fn from_inputs(inputs: &ModelInputs) -> Self {
        let per100 = 100.0;
        let block = inputs.block_cycles;
        let mem_fetch_cycles = 1.0 + inputs.d_mem + block; // addr + latency + block

        let frac_cs = if inputs.p_rr > 0.0 {
            inputs.csupply_weighted_mass / inputs.p_rr
        } else {
            0.0
        };
        let cache_fetches = inputs.p_rr * frac_cs * per100;
        let memory_fetches = inputs.p_rr * (1.0 - frac_cs) * per100;
        let supplier_wb = inputs.p_rr * inputs.p_csupwb_rr * per100;
        let replacement_wb = inputs.p_rr * inputs.p_reqwb_rr * per100;
        let announcements = inputs.p_bc * per100;

        TrafficBreakdown {
            announcements,
            announcement_cycles: announcements * inputs.t_write,
            memory_fetches,
            memory_fetch_cycles: memory_fetches * mem_fetch_cycles,
            cache_fetches,
            cache_fetch_cycles: cache_fetches * block,
            supplier_writebacks: supplier_wb,
            supplier_writeback_cycles: supplier_wb * block,
            replacement_writebacks: replacement_wb,
            replacement_writeback_cycles: replacement_wb * block,
        }
    }

    /// Total bus operations per 100 references (write-backs ride their
    /// parent transaction and are not counted as separate operations).
    pub fn total_operations(&self) -> f64 {
        self.announcements + self.memory_fetches + self.cache_fetches
    }

    /// Total bus cycles per 100 references. Consistent with the model's
    /// zero-wait bus demand: `100·(p_bc·T_write + p_rr·t_read)`.
    pub fn total_cycles(&self) -> f64 {
        self.announcement_cycles
            + self.memory_fetch_cycles
            + self.cache_fetch_cycles
            + self.supplier_writeback_cycles
            + self.replacement_writeback_cycles
    }

    /// Renders the breakdown as a fixed-width table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:>10} {:>10} {:>8}",
            "cause (per 100 refs)", "ops", "cycles", "cyc %"
        );
        let total = self.total_cycles().max(1e-12);
        let mut row = |name: &str, ops: f64, cycles: f64| {
            let _ = writeln!(
                out,
                "{name:<26} {ops:>10.3} {cycles:>10.2} {:>7.1}%",
                cycles / total * 100.0
            );
        };
        row("announcements", self.announcements, self.announcement_cycles);
        row("memory fetches", self.memory_fetches, self.memory_fetch_cycles);
        row("cache-to-cache fetches", self.cache_fetches, self.cache_fetch_cycles);
        row("supplier write-backs", self.supplier_writebacks, self.supplier_writeback_cycles);
        row(
            "replacement write-backs",
            self.replacement_writebacks,
            self.replacement_writeback_cycles,
        );
        let _ = writeln!(
            out,
            "{:<26} {:>10.3} {:>10.2} {:>7.1}%",
            "total",
            self.total_operations(),
            self.total_cycles(),
            100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};
    use snoop_workload::timing::TimingModel;

    fn breakdown(level: SharingLevel, mods: &[u8]) -> TrafficBreakdown {
        let inputs = ModelInputs::derive_adjusted(
            &WorkloadParams::appendix_a(level),
            ModSet::from_numbers(mods).unwrap(),
            &TimingModel::default(),
        )
        .unwrap();
        TrafficBreakdown::from_inputs(&inputs)
    }

    #[test]
    fn cycles_match_the_zero_wait_bus_demand() {
        // The decomposition must tile exactly the demand the MVA charges
        // the bus with (at zero memory wait).
        for level in SharingLevel::ALL {
            for mods in [&[][..], &[1], &[2], &[3], &[1, 4]] {
                let inputs = ModelInputs::derive_adjusted(
                    &WorkloadParams::appendix_a(level),
                    ModSet::from_numbers(mods).unwrap(),
                    &TimingModel::default(),
                )
                .unwrap();
                let b = TrafficBreakdown::from_inputs(&inputs);
                let demand = 100.0 * (inputs.p_bc * inputs.t_write + inputs.p_rr * inputs.t_read);
                assert!(
                    (b.total_cycles() - demand).abs() < 1e-9,
                    "{level} {mods:?}: {} vs {demand}",
                    b.total_cycles()
                );
            }
        }
    }

    #[test]
    fn mod1_eliminates_most_announcements() {
        let wo = breakdown(SharingLevel::Five, &[]);
        let m1 = breakdown(SharingLevel::Five, &[1]);
        // Write-Once's announcements are dominated by private write-throughs.
        assert!(m1.announcements < wo.announcements * 0.1);
        // Fetch traffic is nearly unchanged (slightly more replacements).
        assert!((m1.memory_fetches - wo.memory_fetches).abs() < 0.5);
    }

    #[test]
    fn mod2_eliminates_supplier_writebacks() {
        let wo = breakdown(SharingLevel::Twenty, &[]);
        let m2 = breakdown(SharingLevel::Twenty, &[2]);
        assert!(wo.supplier_writebacks > 0.0);
        assert_eq!(m2.supplier_writebacks, 0.0);
    }

    #[test]
    fn memory_fetches_dominate_cycles_for_appendix_a() {
        let b = breakdown(SharingLevel::Five, &[]);
        assert!(b.memory_fetch_cycles > b.total_cycles() * 0.5);
    }

    #[test]
    fn render_tiles_to_100_percent() {
        let text = breakdown(SharingLevel::Twenty, &[]).render();
        assert!(text.contains("total"));
        assert!(text.contains("100.0%"));
        assert_eq!(text.lines().count(), 7);
    }
}
