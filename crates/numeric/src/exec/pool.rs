//! The persistent worker pool behind [`super::par_map`].
//!
//! Before this module existed every `par_map` call paid a full
//! `thread::scope` spawn/join cycle — measurable overhead (tens of
//! microseconds per call) that dominated the ~2.5 ms batches the sweep
//! and engine layers submit many times per run. The pool amortizes that
//! cost to a one-time lazy initialization: workers are spawned on first
//! use, then parked on a condvar between jobs.
//!
//! # Architecture
//!
//! * A global [`Pool`] behind a `OnceLock` holds an injector queue of
//!   [`JobCore`]s and a count of spawned/idle workers.
//! * A *job* is a type-erased view of a caller-stack `JobData` (see
//!   `super`): a raw data pointer plus a monomorphized `run` function
//!   that claims chunks from the job's atomic cursor until it is empty.
//! * [`Pool::submit`] publishes a job with a fixed number of *attach
//!   slots*; each idle worker that dequeues it consumes one slot and
//!   runs the claim loop. The submitting thread is always a full
//!   participant: it runs the same loop inline, so a job completes even
//!   if every worker is busy elsewhere (this also makes *nested*
//!   submission deadlock-free — a worker submitting from inside a job
//!   simply does the nested work itself when no peer is free).
//! * [`Pool::detach`] revokes unconsumed attach slots and then blocks
//!   until every attached worker has left the claim loop, which is the
//!   borrow-safety boundary: `JobData` lives on the submitter's stack
//!   and no worker touches it after `detach` returns.
//!
//! # Safety argument
//!
//! The raw `data` pointer in [`JobCore`] dangles once the submitting
//! `par_map` frame returns. It is only ever dereferenced by `run`,
//! which is called exactly once per consumed attach slot, and `detach`
//! removes the job from the queue (no further slots can be consumed)
//! and waits for `active == 0` (every consumed slot has finished)
//! before the frame returns. Attach — slot consumption *and* the
//! `active` increment — happens under the pool mutex, so `detach`'s
//! queue removal under the same mutex cannot race with a half-attached
//! worker.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard ceiling on spawned pool workers. Parked threads are cheap, but a
/// runaway caller (nested submissions from many user threads) must not
/// create threads without bound.
const MAX_POOL_WORKERS: usize = 256;

/// One published unit of work: a type-erased claim loop over a
/// caller-stack `JobData`.
pub(super) struct JobCore {
    /// Points at the submitting frame's `JobData<T, U, F>`.
    data: *const (),
    /// Monomorphized claim loop; must not unwind (it catches panics).
    run: unsafe fn(*const ()),
    /// Attach slots remaining; decremented under the pool mutex.
    slots: AtomicUsize,
    /// Workers currently inside `run` (the submitter runs inline and is
    /// not counted).
    active: AtomicUsize,
    /// Pairs with `active` for the completion wait in [`Pool::detach`].
    done: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `data`/`run` are only used per the protocol documented in the
// module header; the submitter keeps the pointee alive until `detach`
// proves no worker can touch it again. The generic shim restores the
// `T: Sync`, `U: Send`, `F: Sync` bounds that make cross-thread access
// of the pointee sound.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    pub(super) fn new(data: *const (), run: unsafe fn(*const ())) -> Self {
        JobCore {
            data,
            run,
            slots: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }
}

struct PoolState {
    queue: VecDeque<Arc<JobCore>>,
    spawned: usize,
    idle: usize,
}

/// The process-wide worker pool.
pub(super) struct Pool {
    state: Mutex<PoolState>,
    work_available: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The lazily-initialized global pool. No threads are spawned until the
/// first [`Pool::submit`].
pub(super) fn global() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { queue: VecDeque::new(), spawned: 0, idle: 0 }),
        work_available: Condvar::new(),
    })
}

impl Pool {
    /// Publishes `job` with `attachers` attach slots and wakes workers,
    /// spawning new ones (up to [`MAX_POOL_WORKERS`]) when fewer than
    /// `attachers` are idle.
    pub(super) fn submit(&'static self, job: Arc<JobCore>, attachers: usize) {
        debug_assert!(attachers > 0);
        job.slots.store(attachers, Ordering::Release);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deficit = attachers.saturating_sub(state.idle);
        let headroom = MAX_POOL_WORKERS.saturating_sub(state.spawned);
        for _ in 0..deficit.min(headroom) {
            // A failed spawn is absorbed: the submitter still completes
            // the job itself.
            if std::thread::Builder::new()
                .name("snoop-exec".into())
                .spawn(move || worker_loop(global()))
                .is_ok()
            {
                state.spawned += 1;
            }
        }
        state.queue.push_back(job);
        drop(state);
        self.work_available.notify_all();
    }

    /// Revokes `job`'s unconsumed attach slots and blocks until every
    /// attached worker has finished its claim loop. After this returns,
    /// no pool thread holds a reference into the submitter's stack.
    pub(super) fn detach(&self, job: &Arc<JobCore>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = state.queue.iter().position(|queued| Arc::ptr_eq(queued, job)) {
            state.queue.remove(pos);
        }
        drop(state);
        let mut guard = job.done.lock().unwrap_or_else(|e| e.into_inner());
        while job.active.load(Ordering::Acquire) > 0 {
            guard = job.done_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Dequeues one attach slot, if any job is pending. The slot decrement
/// and the `active` increment happen under the pool mutex (see module
/// header for why).
fn try_claim(state: &mut PoolState) -> Option<Arc<JobCore>> {
    let front = state.queue.front()?;
    let job = Arc::clone(front);
    job.active.fetch_add(1, Ordering::AcqRel);
    if job.slots.fetch_sub(1, Ordering::AcqRel) == 1 {
        state.queue.pop_front();
    }
    Some(job)
}

fn worker_loop(pool: &'static Pool) {
    let mut state = pool.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if let Some(job) = try_claim(&mut state) {
            drop(state);
            // SAFETY: the attach protocol guarantees `data` is alive
            // until this worker's completion is observed by `detach`.
            unsafe { (job.run)(job.data) };
            if job.active.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = job.done.lock().unwrap_or_else(|e| e.into_inner());
                job.done_cv.notify_all();
            }
            state = pool.state.lock().unwrap_or_else(|e| e.into_inner());
        } else {
            state.idle += 1;
            state = pool.work_available.wait(state).unwrap_or_else(|e| e.into_inner());
            state.idle -= 1;
        }
    }
}
