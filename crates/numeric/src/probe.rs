//! Zero-dependency observability: span timers, counters and bounded
//! event recorders behind a global thread-safe registry.
//!
//! The suite is offline-first and carries no `tracing` dependency, so
//! this module hand-rolls the three primitives the solvers need:
//!
//! * **Spans** ([`span`]) — scoped wall-clock timers. Nested spans on
//!   the same thread aggregate under a `/`-joined hierarchical path
//!   (e.g. `resilient_solve/mva_solve/fixed_point_solve`), keyed by
//!   call site, with call counts and total duration.
//! * **Counters** ([`counter_add`]) — monotonic `u64` accumulators
//!   (iteration totals, event counts, escalation attempts).
//! * **Event recorders** ([`record`] / [`record_many`]) — bounded
//!   ring buffers (capacity [`ring_capacity`], default
//!   [`RING_CAPACITY`], override `SNOOP_PROBE_RING`) of `f64` samples
//!   (residual trajectories, wave sizes) with running count / sum /
//!   min / max over *all* samples, even those rotated out of the ring.
//!   Non-finite samples are dropped so every emitted statistic is
//!   finite, and counted per recorder as `dropped_non_finite`;
//!   capacity-evicted samples are counted as `dropped_capacity`. Both
//!   appear in the snapshot so silent data loss is visible.
//! * **Histograms** ([`hist_record`] / [`hist_record_many`]) —
//!   fixed-memory log-linear [`hist::Hist`] series (~1.8 KB each) with
//!   p50/p90/p99/p999, count and an exactly-summed total, for the hot
//!   seams where tails matter: per-backend job wall time, cache hit
//!   latency, fixed-point iterations-to-converge, serve queue wait.
//!
//! The child [`trace`] module adds the *timeline* view: per-thread
//! begin/end event buffers drained into Chrome trace-event JSON.
//!
//! The registry is **disabled by default** and every instrumentation
//! call is a single relaxed atomic load when disabled, so instrumented
//! hot paths cost nothing in normal runs. Metrics are strictly
//! observational — no value read from the registry ever feeds back
//! into a solver — so enabling collection cannot perturb the
//! bit-identical determinism contract in `tests/determinism.rs`.
//!
//! Worker threads spawned by [`crate::exec`] share the same global
//! registry: counters and recorders aggregate across threads under a
//! single mutex, and spans opened on a worker thread simply start a
//! fresh (empty) path stack there, so their totals land on top-level
//! paths.
//!
//! Consumers take a [`Snapshot`] and render it as stable JSON
//! ([`Snapshot::to_json`], schema [`SCHEMA`]) or as a human-readable
//! profile table ([`Snapshot::render_table`]).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

pub mod hist;
pub mod trace;

use hist::Hist;

/// Identifier of the JSON layout emitted by [`Snapshot::to_json`].
///
/// v2 is a strict superset of v1: it adds the `histograms` section and
/// the per-event `dropped_capacity` field; every v1 field is unchanged,
/// so v1 readers keep working on v2 files.
pub const SCHEMA: &str = "snoop-metrics-v2";

/// The previous snapshot schema; still accepted by every reader in the
/// workspace (`snoop perf diff`, `snoop top`).
pub const SCHEMA_V1: &str = "snoop-metrics-v1";

/// Default number of recent samples an event recorder retains; older
/// samples rotate out (their count is reported as `dropped` /
/// `dropped_capacity`) while the running count / sum / min / max keep
/// covering every sample. Override with the `SNOOP_PROBE_RING`
/// environment variable (read once per process).
pub const RING_CAPACITY: usize = 256;

/// The effective event-recorder ring capacity: `SNOOP_PROBE_RING` when
/// set to a positive integer, else [`RING_CAPACITY`]. Cached on first
/// use.
#[must_use]
pub fn ring_capacity() -> usize {
    static CAPACITY: OnceLock<usize> = OnceLock::new();
    *CAPACITY
        .get_or_init(|| parse_ring_capacity(std::env::var("SNOOP_PROBE_RING").ok().as_deref()))
}

/// Parses a `SNOOP_PROBE_RING` value; anything unset, non-numeric or
/// zero falls back to the default (a misconfigured variable must never
/// panic a solver run).
fn parse_ring_capacity(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => RING_CAPACITY,
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<State> = Mutex::new(State::new());
/// Serializes whole enable → run → snapshot sessions; see [`session`].
static SESSION: Mutex<()> = Mutex::new(());

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed span scopes on this path.
    pub count: u64,
    /// Total wall-clock time spent inside the span, in nanoseconds.
    pub total_ns: u128,
}

/// Aggregated samples of one event recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct EventStats {
    /// Most recent samples, oldest first (at most [`RING_CAPACITY`]).
    pub recent: Vec<f64>,
    /// Samples rotated out of the ring.
    pub dropped: u64,
    /// Non-finite samples rejected by [`record`] / [`record_many`];
    /// these never enter `count`, `sum`, `min` or `max`.
    pub dropped_non_finite: u64,
    /// Total finite samples recorded (recent + dropped).
    pub count: u64,
    /// Sum over all samples ever recorded.
    pub sum: f64,
    /// Minimum over all samples ever recorded.
    pub min: f64,
    /// Maximum over all samples ever recorded.
    pub max: f64,
}

impl EventStats {
    /// Mean over all samples ever recorded.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum / self.count as f64 }
    }
}

#[derive(Debug)]
struct Ring {
    values: VecDeque<f64>,
    dropped: u64,
    dropped_non_finite: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            values: VecDeque::new(),
            dropped: 0,
            dropped_non_finite: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.values.len() >= ring_capacity() {
            self.values.pop_front();
            self.dropped += 1;
        }
        self.values.push_back(value);
    }
}

#[derive(Debug)]
struct State {
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, u64>,
    events: BTreeMap<String, Ring>,
    hists: BTreeMap<String, Hist>,
}

impl State {
    const fn new() -> Self {
        State {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            events: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }
}

fn state() -> MutexGuard<'static, State> {
    // A poisoned registry only means some panicking thread held the
    // lock mid-update; the aggregates stay usable.
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Returns whether metric collection is currently on.
///
/// Callers doing non-trivial work just to *compute* a metric (e.g.
/// scanning a vector to count zero waits) should gate that work on
/// this; plain [`counter_add`] / [`record`] / [`span`] calls already
/// check it internally.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric collection on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns metric collection off (process-wide).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all recorded spans, counters, event recorders and histograms.
pub fn reset() {
    let mut st = state();
    st.spans.clear();
    st.counters.clear();
    st.events.clear();
    st.hists.clear();
}

/// An exclusive metrics-collection session: [`reset`] + [`enable`] on
/// creation, [`disable`] on drop.
///
/// Holding the session also holds a process-wide lock so concurrent
/// sessions (as happens when tests sharing this process each collect
/// metrics) cannot reset or disable each other mid-run.
#[derive(Debug)]
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for Session {
    fn drop(&mut self) {
        disable();
    }
}

/// Starts an exclusive metrics-collection session; see [`Session`].
#[must_use]
pub fn session() -> Session {
    let guard = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    enable();
    Session { _guard: guard }
}

/// Adds `delta` to the named monotonic counter (created at zero on
/// first use). No-op while collection is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut st = state();
    match st.counters.get_mut(name) {
        Some(c) => *c += delta,
        None => {
            st.counters.insert(name.to_string(), delta);
        }
    }
}

/// Records one sample into the named event ring. Non-finite samples
/// are dropped and counted in [`EventStats::dropped_non_finite`].
/// No-op while collection is disabled.
pub fn record(name: &str, value: f64) {
    record_many(name, std::slice::from_ref(&value));
}

/// Records a batch of samples into the named event ring under a single
/// registry lock. Non-finite samples are dropped and counted in
/// [`EventStats::dropped_non_finite`]. No-op while collection is
/// disabled.
pub fn record_many(name: &str, values: &[f64]) {
    if !enabled() {
        return;
    }
    let mut st = state();
    let ring = match st.events.get_mut(name) {
        Some(r) => r,
        None => st.events.entry(name.to_string()).or_insert_with(Ring::new),
    };
    for &v in values {
        if v.is_finite() {
            ring.push(v);
        } else {
            ring.dropped_non_finite += 1;
        }
    }
}

/// Records one sample into the named log-linear histogram (see
/// [`hist::Hist`]; created empty on first use). Negative and non-finite
/// samples are rejected and counted per histogram. No-op while
/// collection is disabled.
pub fn hist_record(name: &str, value: f64) {
    hist_record_many(name, std::slice::from_ref(&value));
}

/// Records a batch of samples into the named histogram under a single
/// registry lock. No-op while collection is disabled.
pub fn hist_record_many(name: &str, values: &[f64]) {
    if !enabled() {
        return;
    }
    let mut st = state();
    let h = match st.hists.get_mut(name) {
        Some(h) => h,
        None => st.hists.entry(name.to_string()).or_default(),
    };
    for &v in values {
        h.record(v);
    }
}

/// A scoped span timer; created by [`span`], records on drop.
///
/// While collection is enabled the span's name is pushed onto a
/// thread-local stack, so spans opened inside it aggregate under a
/// hierarchical `outer/inner` path.
#[derive(Debug)]
#[must_use = "a span records its duration when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    active: Option<(Instant, &'static str)>,
}

/// Opens a named span; the returned guard records the elapsed
/// wall-clock time (and increments the path's call count) when it goes
/// out of scope. Returns an inert guard while collection is disabled.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    Span { active: Some((Instant::now(), name)) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((start, name)) = self.active.take() else {
            return;
        };
        let elapsed = start.elapsed();
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop LIFO, so the top of the stack is this span.
            stack.pop();
            if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}/{}", stack.join("/"), name)
            }
        });
        let mut st = state();
        let entry = st.spans.entry(path).or_default();
        entry.count += 1;
        entry.total_ns += elapsed.as_nanos();
    }
}

/// A consistent copy of the registry at one point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Span statistics keyed by hierarchical path, sorted by path.
    pub spans: Vec<(String, SpanStats)>,
    /// Counters keyed by name, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Event statistics keyed by name, sorted by name.
    pub events: Vec<(String, EventStats)>,
    /// Log-linear histograms keyed by name, sorted by name.
    pub hists: Vec<(String, Hist)>,
}

/// Takes a consistent snapshot of every span, counter and event
/// recorder. Works whether or not collection is currently enabled.
#[must_use]
pub fn snapshot() -> Snapshot {
    let st = state();
    Snapshot {
        spans: st.spans.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        counters: st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        events: st
            .events
            .iter()
            .map(|(k, r)| {
                (
                    k.clone(),
                    EventStats {
                        recent: r.values.iter().copied().collect(),
                        dropped: r.dropped,
                        dropped_non_finite: r.dropped_non_finite,
                        count: r.count,
                        sum: r.sum,
                        min: r.min,
                        max: r.max,
                    },
                )
            })
            .collect(),
        hists: st.hists.iter().map(|(k, h)| (k.clone(), h.clone())).collect(),
    }
}

/// Escapes a metric name for inclusion in a JSON string literal.
fn json_escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Renders the snapshot as stable JSON (schema [`SCHEMA`]).
    ///
    /// Layout: `{"schema", "spans": {path: {"calls", "total_ms",
    /// "mean_ms"}}, "counters": {name: value}, "events": {name:
    /// {"count", "dropped", "dropped_capacity", "dropped_non_finite",
    /// "mean", "min", "max", "recent": [...]}}, "histograms": {name:
    /// {"count", "rejected", "sum", "mean", "min", "max", "p50",
    /// "p90", "p99", "p999", "buckets": [[le, cumulative], ...]}}}`.
    /// Keys are sorted, every duration and statistic is finite and
    /// durations are non-negative, so downstream checks can validate
    /// the file without a JSON library. `dropped_capacity` duplicates
    /// the v1 `dropped` field under its descriptive name; `buckets`
    /// lists only non-empty buckets, cumulative counts monotone.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"schema\": \"{SCHEMA}\",");
        json.push_str("  \"spans\": {\n");
        for (i, (path, s)) in self.spans.iter().enumerate() {
            let total_ms = s.total_ns as f64 / 1e6;
            let mean_ms = if s.count == 0 { 0.0 } else { total_ms / s.count as f64 };
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    \"{}\": {{\"calls\": {}, \"total_ms\": {:.6}, \"mean_ms\": {:.6}}}{}",
                json_escape(path),
                s.count,
                total_ms,
                mean_ms,
                comma
            );
        }
        json.push_str("  },\n  \"counters\": {\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(json, "    \"{}\": {value}{comma}", json_escape(name));
        }
        json.push_str("  },\n  \"events\": {\n");
        for (i, (name, e)) in self.events.iter().enumerate() {
            let comma = if i + 1 < self.events.len() { "," } else { "" };
            let (min, max) = if e.count == 0 { (0.0, 0.0) } else { (e.min, e.max) };
            let mut recent = String::new();
            for (j, v) in e.recent.iter().enumerate() {
                if j > 0 {
                    recent.push_str(", ");
                }
                let _ = write!(recent, "{v:.9e}");
            }
            let _ = writeln!(
                json,
                "    \"{}\": {{\"count\": {}, \"dropped\": {}, \
                 \"dropped_capacity\": {}, \
                 \"dropped_non_finite\": {}, \"mean\": {:.9e}, \
                 \"min\": {min:.9e}, \"max\": {max:.9e}, \"recent\": [{recent}]}}{comma}",
                json_escape(name),
                e.count,
                e.dropped,
                e.dropped,
                e.dropped_non_finite,
                e.mean()
            );
        }
        json.push_str("  },\n  \"histograms\": {\n");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            let comma = if i + 1 < self.hists.len() { "," } else { "" };
            let mut buckets = String::new();
            for (j, (le, cumulative)) in h.cumulative_buckets().enumerate() {
                if j > 0 {
                    buckets.push_str(", ");
                }
                let _ = write!(buckets, "[{le:.9e}, {cumulative}]");
            }
            let mut quantiles = String::new();
            for (label, q) in hist::SNAPSHOT_QUANTILES {
                let _ = write!(quantiles, "\"{label}\": {:.9e}, ", h.quantile(q));
            }
            let _ = writeln!(
                json,
                "    \"{}\": {{\"count\": {}, \"rejected\": {}, \
                 \"sum\": {:.9e}, \"mean\": {:.9e}, \"min\": {:.9e}, \
                 \"max\": {:.9e}, {quantiles}\"buckets\": [{buckets}]}}{comma}",
                json_escape(name),
                h.count(),
                h.rejected(),
                h.sum(),
                h.mean(),
                h.min(),
                h.max(),
            );
        }
        json.push_str("  }\n}\n");
        json
    }

    /// Renders the human-readable `snoop profile` table (the stderr
    /// companion of the `--metrics-out` JSON file).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::from("snoop profile\n");
        if !self.spans.is_empty() {
            let width =
                self.spans.iter().map(|(p, _)| p.len()).max().unwrap_or(4).max(4);
            let _ = writeln!(
                out,
                "  {:<width$}  {:>8}  {:>12}  {:>10}",
                "span", "calls", "total ms", "mean ms"
            );
            for (path, s) in &self.spans {
                let total_ms = s.total_ns as f64 / 1e6;
                let mean_ms = if s.count == 0 { 0.0 } else { total_ms / s.count as f64 };
                let _ = writeln!(
                    out,
                    "  {path:<width$}  {:>8}  {total_ms:>12.3}  {mean_ms:>10.4}",
                    s.count
                );
            }
        }
        if !self.counters.is_empty() {
            let width =
                self.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(7).max(7);
            let _ = writeln!(out, "  {:<width$}  {:>12}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value:>12}");
            }
        }
        if !self.events.is_empty() {
            let width =
                self.events.iter().map(|(n, _)| n.len()).max().unwrap_or(5).max(5);
            let _ = writeln!(
                out,
                "  {:<width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>8}  {:>8}",
                "event", "count", "mean", "min", "max", "drop-nf", "drop-cap"
            );
            for (name, e) in &self.events {
                let (min, max) = if e.count == 0 { (0.0, 0.0) } else { (e.min, e.max) };
                let _ = writeln!(
                    out,
                    "  {name:<width$}  {:>8}  {:>12.5}  {min:>12.5}  {max:>12.5}  {:>8}  {:>8}",
                    e.count,
                    e.mean(),
                    e.dropped_non_finite,
                    e.dropped
                );
            }
        }
        if !self.hists.is_empty() {
            let width =
                self.hists.iter().map(|(n, _)| n.len()).max().unwrap_or(9).max(9);
            let _ = writeln!(
                out,
                "  {:<width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}",
                "histogram", "count", "p50", "p90", "p99", "p999"
            );
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  {:>8}  {:>12.5}  {:>12.5}  {:>12.5}  {:>12.5}",
                    h.count(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.quantile(0.999)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find_span<'a>(snap: &'a Snapshot, path: &str) -> Option<&'a SpanStats> {
        snap.spans.iter().find(|(p, _)| p == path).map(|(_, s)| s)
    }

    fn find_counter(snap: &Snapshot, name: &str) -> Option<u64> {
        snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    fn find_event<'a>(snap: &'a Snapshot, name: &str) -> Option<&'a EventStats> {
        snap.events.iter().find(|(n, _)| n == name).map(|(_, e)| e)
    }

    // Instrumented solver tests running concurrently in this binary may
    // add *their* metrics while a session here is enabled, so every
    // assertion below reads only names unique to its own test.

    #[test]
    fn nested_spans_aggregate_under_hierarchical_paths() {
        let _session = session();
        {
            let _outer = span("probe_test_outer");
            let _inner = span("probe_test_inner");
        }
        {
            let _outer = span("probe_test_outer");
        }
        let snap = snapshot();
        assert_eq!(find_span(&snap, "probe_test_outer").unwrap().count, 2);
        let inner = find_span(&snap, "probe_test_outer/probe_test_inner").unwrap();
        assert_eq!(inner.count, 1);
        assert!(find_span(&snap, "probe_test_inner").is_none());
    }

    #[test]
    fn counters_aggregate_across_thread_counts() {
        let _session = session();
        for (i, threads) in [1usize, 2, 8].into_iter().enumerate() {
            let name = format!("probe_test_threads_{threads}");
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        for _ in 0..100 {
                            counter_add(&name, 1);
                        }
                        record(&name, 1.5);
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(find_counter(&snap, &name), Some(100 * threads as u64));
            let event = find_event(&snap, &name).unwrap();
            assert_eq!(event.count, threads as u64);
            assert!((event.sum - 1.5 * threads as f64).abs() < 1e-12, "round {i}");
        }
    }

    #[test]
    fn ring_buffer_truncates_but_keeps_running_statistics() {
        let _session = session();
        let samples: Vec<f64> = (0..300).map(f64::from).collect();
        record_many("probe_test_ring", &samples);
        let snap = snapshot();
        let e = find_event(&snap, "probe_test_ring").unwrap();
        assert_eq!(e.count, 300);
        assert_eq!(e.dropped, 300 - RING_CAPACITY as u64);
        assert_eq!(e.recent.len(), RING_CAPACITY);
        // Ring holds the most recent samples, oldest first.
        assert_eq!(e.recent.first().copied(), Some((300 - RING_CAPACITY) as f64));
        assert_eq!(e.recent.last().copied(), Some(299.0));
        // Running statistics still cover the rotated-out samples.
        assert_eq!(e.min, 0.0);
        assert_eq!(e.max, 299.0);
        assert!((e.mean() - 149.5).abs() < 1e-12);
    }

    #[test]
    fn non_finite_samples_are_dropped_and_counted() {
        let _session = session();
        record_many(
            "probe_test_finite",
            &[1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 2.0],
        );
        record("probe_test_finite", f64::NAN);
        let snap = snapshot();
        let e = find_event(&snap, "probe_test_finite").unwrap();
        assert_eq!(e.count, 2);
        assert_eq!(e.min, 1.0);
        assert_eq!(e.max, 2.0);
        assert_eq!(e.dropped_non_finite, 4);
        let json = snap.to_json();
        assert!(json.contains("\"dropped_non_finite\": 4"), "{json}");
        let table = snap.render_table();
        assert!(table.contains("drop-nf"), "{table}");
    }

    #[test]
    fn hist_snapshot_is_bit_identical_across_thread_counts() {
        // The same multiset of samples, recorded from 1, 2 and 8
        // threads (each taking a strided slice), must render the exact
        // same bytes: counts are order-independent and the Kulisch
        // accumulator makes the sum exact regardless of interleaving.
        let name = "probe_test_hist_thread_determinism";
        let values: Vec<f64> = (0..2000u64)
            .map(|i| ((i.wrapping_mul(2_654_435_761) % 977) as f64 + 1.0) * 0.037)
            .collect();
        let render = |threads: usize| {
            let _session = session();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let values = &values;
                    scope.spawn(move || {
                        for v in values.iter().skip(t).step_by(threads) {
                            hist_record(name, *v);
                        }
                    });
                }
            });
            let snap = snapshot();
            let (_, h) =
                snap.hists.iter().find(|(n, _)| n == name).expect("histogram exists").clone();
            assert_eq!(h.count(), values.len() as u64);
            // Render this histogram alone: concurrently running
            // instrumented tests may add unrelated series to the
            // registry, which must not fail a byte comparison.
            let solo = Snapshot {
                spans: Vec::new(),
                counters: Vec::new(),
                events: Vec::new(),
                hists: vec![(name.to_string(), h)],
            };
            solo.to_json()
        };
        let single = render(1);
        for threads in [2, 8] {
            assert_eq!(single, render(threads), "{threads}-thread snapshot diverged");
        }
    }

    #[test]
    fn concurrent_updates_from_8_threads_lose_nothing() {
        const THREADS: usize = 8;
        const OPS: u64 = 10_000;
        let _session = session();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..OPS {
                        counter_add("probe_test_contended_counter", 1);
                        record("probe_test_contended_event", (i % 16) as f64);
                    }
                });
            }
        });
        let snap = snapshot();
        assert_eq!(
            find_counter(&snap, "probe_test_contended_counter"),
            Some(THREADS as u64 * OPS)
        );
        let e = find_event(&snap, "probe_test_contended_event").unwrap();
        assert_eq!(e.count, THREADS as u64 * OPS);
        assert_eq!(e.dropped + e.recent.len() as u64, e.count);
        assert_eq!(e.min, 0.0);
        assert_eq!(e.max, 15.0);
    }

    #[test]
    fn span_stack_survives_panic_unwind() {
        let _session = session();
        let result = std::panic::catch_unwind(|| {
            let _outer = span("probe_test_unwind_outer");
            let _inner = span("probe_test_unwind_inner");
            panic!("boom");
        });
        assert!(result.is_err());
        // The unwound guards must have popped their stack entries, so a
        // fresh span lands on a *top-level* path, not nested under the
        // panicked spans.
        {
            let _after = span("probe_test_unwind_after");
        }
        let snap = snapshot();
        assert_eq!(find_span(&snap, "probe_test_unwind_after").unwrap().count, 1);
        assert!(
            snap.spans
                .iter()
                .all(|(p, _)| !p.contains("probe_test_unwind_outer/probe_test_unwind_after")),
            "span stack leaked panicked frames: {:?}",
            snap.spans.iter().map(|(p, _)| p).collect::<Vec<_>>()
        );
        // Both unwound spans still recorded their (partial) durations.
        assert_eq!(find_span(&snap, "probe_test_unwind_outer").unwrap().count, 1);
        assert_eq!(
            find_span(&snap, "probe_test_unwind_outer/probe_test_unwind_inner")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn disabled_collection_is_a_no_op() {
        let _session = session();
        disable();
        counter_add("probe_test_disabled", 7);
        record("probe_test_disabled", 1.0);
        {
            let _span = span("probe_test_disabled");
        }
        let snap = snapshot();
        assert_eq!(find_counter(&snap, "probe_test_disabled"), None);
        assert!(find_event(&snap, "probe_test_disabled").is_none());
        assert!(find_span(&snap, "probe_test_disabled").is_none());
    }

    #[test]
    fn json_and_table_cover_all_sections() {
        let _session = session();
        {
            let _span = span("probe_test_json_span");
        }
        counter_add("probe_test_json_counter", 3);
        record("probe_test_json_event", 0.25);
        hist_record("probe_test_json_hist", 1.5);
        let snap = snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"snoop-metrics-v2\""));
        assert!(json.contains("\"probe_test_json_span\": {\"calls\": 1"));
        assert!(json.contains("\"probe_test_json_counter\": 3"));
        assert!(json.contains("\"probe_test_json_event\": {\"count\": 1"));
        assert!(json.contains("\"probe_test_json_hist\": {\"count\": 1"));
        assert!(json.contains("\"p99\""), "{json}");
        let table = snap.render_table();
        assert!(table.starts_with("snoop profile\n"));
        assert!(table.contains("probe_test_json_span"));
        assert!(table.contains("probe_test_json_counter"));
        assert!(table.contains("probe_test_json_event"));
        assert!(table.contains("probe_test_json_hist"));
        assert!(table.contains("drop-cap"));
    }

    #[test]
    fn hist_records_through_the_registry_and_renders_v2_json() {
        let _session = session();
        hist_record_many("probe_test_hist_reg", &[1.0, 2.0, 4.0, f64::NAN, -3.0]);
        let snap = snapshot();
        let (_, h) = snap
            .hists
            .iter()
            .find(|(n, _)| n == "probe_test_hist_reg")
            .expect("histogram registered");
        assert_eq!(h.count(), 3);
        assert_eq!(h.rejected(), 2);
        assert_eq!(h.sum(), 7.0);
        let json = snap.to_json();
        let doc = crate::json::JsonValue::parse(&json)
            .unwrap_or_else(|e| panic!("v2 snapshot must parse: {e}\n{json}"));
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("probe_test_hist_reg"))
            .expect("histograms section");
        assert_eq!(hist.get("count").and_then(crate::json::JsonValue::as_u64), Some(3));
        assert_eq!(hist.get("rejected").and_then(crate::json::JsonValue::as_u64), Some(2));
        let buckets = hist.get("buckets").and_then(crate::json::JsonValue::as_array).unwrap();
        assert_eq!(buckets.len(), 3, "three distinct buckets");
        // v1 compatibility: the events section still carries `dropped`,
        // with `dropped_capacity` as the v2 alias.
        record("probe_test_hist_reg_event", 1.0);
        let json = snapshot().to_json();
        assert!(json.contains("\"dropped\": 0, \"dropped_capacity\": 0"), "{json}");
    }

    #[test]
    fn ring_capacity_parses_the_environment_shape() {
        assert_eq!(parse_ring_capacity(None), RING_CAPACITY);
        assert_eq!(parse_ring_capacity(Some("")), RING_CAPACITY);
        assert_eq!(parse_ring_capacity(Some("garbage")), RING_CAPACITY);
        assert_eq!(parse_ring_capacity(Some("0")), RING_CAPACITY);
        assert_eq!(parse_ring_capacity(Some("-4")), RING_CAPACITY);
        assert_eq!(parse_ring_capacity(Some("16")), 16);
        assert_eq!(parse_ring_capacity(Some(" 512 ")), 512);
    }

    #[test]
    fn json_escapes_hostile_names() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tname"), "tab\\u0009name");
        assert_eq!(json_escape("nl\nname"), "nl\\u000aname");
        assert_eq!(json_escape("cr\rname"), "cr\\u000dname");
        assert_eq!(json_escape("nul\u{0}name"), "nul\\u0000name");
    }

    #[test]
    fn snapshot_json_with_hostile_names_parses() {
        let _session = session();
        {
            let _span = span("probe_test_hostile\nspan\t\"quoted\"");
        }
        counter_add("probe_test_hostile\rcounter\\path", 1);
        record("probe_test_hostile\u{1}event", 0.5);
        let json = snapshot().to_json();
        let doc = crate::json::JsonValue::parse(&json)
            .unwrap_or_else(|e| panic!("snapshot JSON must stay parseable: {e}\n{json}"));
        assert_eq!(
            doc.get("schema").and_then(crate::json::JsonValue::as_str),
            Some(SCHEMA)
        );
        let counters = doc.get("counters").unwrap();
        assert!(
            counters.get("probe_test_hostile\rcounter\\path").is_some(),
            "escaped name must round-trip through the parser"
        );
    }
}
