//! Damped fixed-point iteration.
//!
//! The paper's mean-value equations contain cyclic interdependencies (the
//! response time `R` depends on bus and memory waiting times, which depend on
//! `R`), so they are solved by iterating from zero waiting times until the
//! iterates stop moving. This module provides that machinery in a reusable
//! form: a vector-valued map `x ← f(x)` is applied repeatedly, optionally
//! under-relaxed, until the maximum relative change across components falls
//! below a tolerance.
//!
//! # Divergence detection
//!
//! Successive substitution is only guaranteed to converge for contraction
//! mappings, and the paper's queueing map stops contracting near bus
//! saturation. Rather than grinding to `max_iterations` on a hopeless
//! trajectory, the solver watches for four failure signatures and abandons
//! the run early with a structured [`ConvergenceFailure`]:
//!
//! * **non-finite iterates** — the map produced NaN or ±∞;
//! * **overflow** — an iterate grew beyond ~1e150, the precursor to ±∞;
//! * **residual growth** — the per-iteration step norm keeps growing over a
//!   sliding window while the iterates change by ≥ 25% per step
//!   (geometric divergence such as `x ← 2x` has a *constant* relative
//!   residual, so growth is measured on absolute step norms);
//! * **limit cycles** — the iterate revisits the point from two or three
//!   steps ago essentially exactly while still far from convergence
//!   (period-2 flip cycles such as `x ← −x + c`, and period-3 orbits).
//!
//! The failure carries the trailing residual trajectory and the last finite
//! iterate so callers can retry with damping from where the run left off.
//! A wall-clock [`Options::deadline`] bounds the run in real time.

use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

use crate::NumericError;

/// Iterate magnitude beyond which the run is declared overflowing: far past
/// any physical response time, but well short of `f64::MAX` so the failure
/// still carries finite values.
const OVERFLOW_LIMIT: f64 = 1e150;
/// Sliding-window length for the residual-growth detector; the detector
/// compares the two most recent windows of this many step norms.
const GROWTH_WINDOW: usize = 16;
/// The minimum step norm of the newer window must exceed the older window's
/// by this factor to flag growth.
const GROWTH_FACTOR: f64 = 4.0;
/// Residual-growth is only flagged while the relative residual is at least
/// this large — a genuinely converging run can never be flagged, because its
/// residual drops below this long before two full windows accumulate growth.
const GROWTH_MIN_RESIDUAL: f64 = 0.25;
/// A cycle must be observed on this many consecutive iterations before the
/// run is abandoned (a single near-revisit can be coincidence).
const CYCLE_CONFIRMATIONS: usize = 2;
/// Number of trailing residuals retained in a [`ConvergenceFailure`].
const TRAJECTORY_CAP: usize = 512;

/// Options controlling a fixed-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Convergence tolerance on the maximum relative component change.
    pub tolerance: f64,
    /// Damping factor in `(0, 1]`: the next iterate is
    /// `damping * f(x) + (1 - damping) * x`. `1.0` is plain iteration.
    pub damping: f64,
    /// Record the full iterate history (for diagnostics / the paper's
    /// "converged within 15 iterations" claim).
    pub record_history: bool,
    /// Apply component-wise Aitken Δ² extrapolation every third iterate.
    ///
    /// Plain successive substitution converges linearly with a rate that
    /// can approach 1 (e.g. queueing maps near saturation); Aitken's
    /// process extrapolates the geometric tail and typically collapses
    /// hundreds of iterations into a handful. Extrapolation is skipped for
    /// components whose second difference is too small to divide by.
    pub aitken: bool,
    /// Wall-clock deadline for the whole run. When set, the iteration is
    /// abandoned with [`DivergenceReason::DeadlineExceeded`] once the
    /// elapsed time exceeds this duration. `None` (the default) means the
    /// run is bounded only by [`Options::max_iterations`].
    pub deadline: Option<Duration>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_iterations: 500,
            tolerance: 1e-12,
            damping: 1.0,
            record_history: false,
            aitken: false,
            deadline: None,
        }
    }
}

/// Why a fixed-point run was abandoned before exhausting its iteration
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceReason {
    /// The map produced NaN or ±∞ at the given component.
    NonFinite {
        /// Index of the offending component.
        component: usize,
    },
    /// An iterate's magnitude exceeded the overflow guard (~1e150) at the
    /// given component — the run would reach ±∞ within a few more steps.
    Overflow {
        /// Index of the offending component.
        component: usize,
    },
    /// The per-iteration step norm grew persistently across the sliding
    /// window while the iterates were still changing by ≥ 25% per step:
    /// geometric divergence.
    ResidualGrowth,
    /// The iterates revisit an earlier point (essentially exactly) while
    /// still far from the tolerance: a closed orbit that will never
    /// converge undamped.
    LimitCycle {
        /// Cycle length (2 or 3).
        period: usize,
    },
    /// The wall-clock [`Options::deadline`] elapsed.
    DeadlineExceeded,
}

impl fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceReason::NonFinite { component } => {
                write!(f, "non-finite iterate at component {component}")
            }
            DivergenceReason::Overflow { component } => {
                write!(f, "iterate overflow at component {component}")
            }
            DivergenceReason::ResidualGrowth => write!(f, "growing residuals (divergence)"),
            DivergenceReason::LimitCycle { period } => {
                write!(f, "period-{period} limit cycle")
            }
            DivergenceReason::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
        }
    }
}

/// Structured description of an abandoned fixed-point run.
///
/// Carried by [`NumericError::Diverged`]. Unlike a bare "no convergence"
/// error this records *why* the run was hopeless, the trailing residual
/// trajectory (up to 512 entries), and the last fully-finite iterate so a
/// caller can restart with damping from where the run left off.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceFailure {
    /// The failure signature that triggered abandonment.
    pub reason: DivergenceReason,
    /// Iterations performed before the run was abandoned.
    pub iterations: usize,
    /// Relative residual at the last completed iteration
    /// (`f64::INFINITY` if the run failed before completing one).
    pub residual: f64,
    /// Trailing relative residuals, oldest first (capped at 512 entries).
    pub residual_trajectory: Vec<f64>,
    /// The last iterate whose components were all finite. Always non-empty
    /// and always finite — suitable as a restart point.
    pub last_finite: Vec<f64>,
}

impl fmt::Display for ConvergenceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} iterations (residual {:.3e})",
            self.reason, self.iterations, self.residual
        )
    }
}

/// Result of a converged fixed-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The converged iterate.
    pub values: Vec<f64>,
    /// Number of iterations performed (a single application of the map
    /// counts as one iteration).
    pub iterations: usize,
    /// Maximum relative component change at the final iteration.
    pub residual: f64,
    /// Iterate history, present when [`Options::record_history`] was set.
    /// `history[0]` is the initial guess; the last entry equals `values`.
    pub history: Vec<Vec<f64>>,
}

/// A reusable fixed-point solver.
///
/// # Example
///
/// Solving the 2-d map `x = (y/2 + 1, x/2)` (fixed point `(4/3, 2/3)`):
///
/// ```
/// use snoop_numeric::fixed_point::{FixedPoint, Options};
///
/// let sol = FixedPoint::new(Options::default())
///     .solve(vec![0.0, 0.0], |x, out| {
///         out[0] = x[1] / 2.0 + 1.0;
///         out[1] = x[0] / 2.0;
///     })
///     .expect("contraction mapping converges");
/// assert!((sol.values[0] - 4.0 / 3.0).abs() < 1e-9);
/// assert!((sol.values[1] - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct FixedPoint {
    options: Options,
}

impl FixedPoint {
    /// Creates a solver with the given options.
    pub fn new(options: Options) -> Self {
        FixedPoint { options }
    }

    /// Runs the iteration `x ← f(x)` from `initial` until convergence.
    ///
    /// The map writes its output into the slice it is handed; it must not
    /// depend on the previous content of that slice.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NoConvergence`] if the tolerance is not met
    /// within the iteration budget, [`NumericError::Diverged`] when the run
    /// is abandoned early because it is detectably hopeless (non-finite or
    /// overflowing iterates, growing residuals, a period-2/3 limit cycle,
    /// or an elapsed [`Options::deadline`]), and
    /// [`NumericError::InvalidArgument`] if `initial` is empty or the
    /// damping factor is outside `(0, 1]`.
    pub fn solve<F>(&self, initial: Vec<f64>, mut f: F) -> Result<Solution, NumericError>
    where
        F: FnMut(&[f64], &mut [f64]),
    {
        if initial.is_empty() {
            return Err(NumericError::InvalidArgument(
                "fixed-point iteration needs at least one component".into(),
            ));
        }
        if !(self.options.damping > 0.0 && self.options.damping <= 1.0) {
            return Err(NumericError::InvalidArgument(format!(
                "damping must lie in (0, 1], got {}",
                self.options.damping
            )));
        }

        // Observational only: nothing read back from the probe registry
        // influences the iteration, so metrics cannot perturb results.
        let _probe_span = crate::probe::span("fixed_point_solve");

        let n = initial.len();
        let mut current = initial;
        let mut next = vec![0.0; n];
        let mut history = Vec::new();
        if self.options.record_history {
            history.push(current.clone());
        }
        // Two trailing iterates for Aitken extrapolation.
        let mut prev1: Vec<f64> = Vec::new();
        let mut prev2: Vec<f64> = Vec::new();

        let start = self.options.deadline.map(|_| Instant::now());
        let mut trajectory: Vec<f64> = Vec::new();
        // Per-iteration max-abs step norms, trailing 2·GROWTH_WINDOW.
        let mut step_norms: VecDeque<f64> = VecDeque::with_capacity(2 * GROWTH_WINDOW);
        // Trailing committed iterates for period-2/3 cycle detection.
        let mut recent: VecDeque<Vec<f64>> = VecDeque::with_capacity(4);
        recent.push_back(current.clone());
        let (mut cycle2, mut cycle3) = (0usize, 0usize);
        // A revisit only counts as a cycle when it is essentially exact;
        // slowly-converging oscillation (eigenvalue near −1) moves the
        // iterate by far more than this between successive periods.
        let cycle_tolerance = (self.options.tolerance * 1e-3).max(1e-15);

        let mut residual = f64::INFINITY;
        for iteration in 1..=self.options.max_iterations {
            let fail = |reason, residual, trajectory: Vec<f64>, last_finite| {
                crate::probe::counter_add("fixed_point.diverged", 1);
                crate::probe::counter_add("fixed_point.iterations", iteration as u64);
                crate::probe::record_many("fixed_point.residual_trajectory", &trajectory);
                Err(NumericError::Diverged(ConvergenceFailure {
                    reason,
                    iterations: iteration,
                    residual,
                    residual_trajectory: trajectory,
                    last_finite,
                }))
            };

            if let (Some(start), Some(deadline)) = (start, self.options.deadline) {
                if start.elapsed() > deadline {
                    return fail(DivergenceReason::DeadlineExceeded, residual, trajectory, current);
                }
            }

            f(&current, &mut next);
            // `current` is still the last fully-finite iterate here: the
            // checks below run before `next` is committed.
            if let Some(bad) = next.iter().position(|v| !v.is_finite()) {
                return fail(
                    DivergenceReason::NonFinite { component: bad },
                    residual,
                    trajectory,
                    current,
                );
            }
            if let Some(bad) = next.iter().position(|v| v.abs() > OVERFLOW_LIMIT) {
                return fail(
                    DivergenceReason::Overflow { component: bad },
                    residual,
                    trajectory,
                    current,
                );
            }

            residual = 0.0;
            let mut step_norm = 0.0f64;
            for i in 0..n {
                let damped =
                    self.options.damping * next[i] + (1.0 - self.options.damping) * current[i];
                let step = (damped - current[i]).abs();
                if step > step_norm {
                    step_norm = step;
                }
                let scale = damped.abs().max(current[i].abs()).max(1e-300);
                let change = step / scale;
                if change > residual {
                    residual = change;
                }
                current[i] = damped;
            }
            if self.options.record_history {
                history.push(current.clone());
            }
            if trajectory.len() == TRAJECTORY_CAP {
                trajectory.remove(0);
            }
            trajectory.push(residual);
            if residual < self.options.tolerance {
                crate::probe::counter_add("fixed_point.solves", 1);
                crate::probe::counter_add("fixed_point.iterations", iteration as u64);
                crate::probe::record("fixed_point.iterations_per_solve", iteration as f64);
                crate::probe::hist_record("fixed_point.iterations", iteration as f64);
                crate::probe::record("fixed_point.final_residual", residual);
                crate::probe::record_many("fixed_point.residual_trajectory", &trajectory);
                return Ok(Solution { values: current, iterations: iteration, residual, history });
            }

            // Residual growth: geometric divergence (e.g. `x ← 2x`) keeps
            // the *relative* residual constant, so growth is measured on
            // absolute step norms — the smallest step of the newer window
            // exceeding the older window's by GROWTH_FACTOR means every
            // recent step dwarfs every older one.
            if step_norms.len() == 2 * GROWTH_WINDOW {
                step_norms.pop_front();
            }
            step_norms.push_back(step_norm);
            if step_norms.len() == 2 * GROWTH_WINDOW && residual >= GROWTH_MIN_RESIDUAL {
                let older_min =
                    step_norms.iter().take(GROWTH_WINDOW).cloned().fold(f64::INFINITY, f64::min);
                let newer_min =
                    step_norms.iter().skip(GROWTH_WINDOW).cloned().fold(f64::INFINITY, f64::min);
                if newer_min > GROWTH_FACTOR * older_min {
                    return fail(DivergenceReason::ResidualGrowth, residual, trajectory, current);
                }
            }

            // Limit cycles: compare against the iterates two and three
            // steps back. The comparison is near-exact (cycle_tolerance),
            // so decaying oscillation is never flagged — only a genuinely
            // closed orbit, confirmed on consecutive iterations.
            let m = recent.len();
            if m >= 2 && max_relative_distance(&current, &recent[m - 2]) <= cycle_tolerance {
                cycle2 += 1;
            } else {
                cycle2 = 0;
            }
            if m >= 3 && max_relative_distance(&current, &recent[m - 3]) <= cycle_tolerance {
                cycle3 += 1;
            } else {
                cycle3 = 0;
            }
            if cycle2 >= CYCLE_CONFIRMATIONS {
                return fail(
                    DivergenceReason::LimitCycle { period: 2 },
                    residual,
                    trajectory,
                    current,
                );
            }
            if cycle3 >= CYCLE_CONFIRMATIONS {
                return fail(
                    DivergenceReason::LimitCycle { period: 3 },
                    residual,
                    trajectory,
                    current,
                );
            }
            if recent.len() == 4 {
                recent.pop_front();
            }
            recent.push_back(current.clone());

            if self.options.aitken {
                if prev2.len() == n && prev1.len() == n && iteration % 3 == 0 {
                    // x_acc = x2 − (x2 − x1)² / (x2 − 2·x1 + x0), per
                    // component, where x0 = prev2, x1 = prev1, x2 = current.
                    for i in 0..n {
                        let d1 = current[i] - prev1[i];
                        let d2 = current[i] - 2.0 * prev1[i] + prev2[i];
                        if d2.abs() > 1e-300 {
                            let acc = current[i] - d1 * d1 / d2;
                            if acc.is_finite() && acc.abs() <= OVERFLOW_LIMIT {
                                current[i] = acc;
                            }
                        }
                    }
                    // Keep the cycle ring aligned with the extrapolated
                    // iterate the next evaluation will actually see.
                    if let Some(back) = recent.back_mut() {
                        back.clone_from(&current);
                    }
                    prev1.clear();
                    prev2.clear();
                    continue;
                }
                prev2 = std::mem::take(&mut prev1);
                prev1 = current.clone();
            }
        }

        crate::probe::counter_add("fixed_point.no_convergence", 1);
        crate::probe::counter_add("fixed_point.iterations", self.options.max_iterations as u64);
        crate::probe::record_many("fixed_point.residual_trajectory", &trajectory);
        Err(NumericError::NoConvergence {
            iterations: self.options.max_iterations,
            residual,
        })
    }
}

/// Maximum componentwise relative distance between two equal-length
/// iterates, the metric used by the limit-cycle detector.
fn max_relative_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-300))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_cosine() {
        let sol = FixedPoint::new(Options::default())
            .solve(vec![0.0], |x, out| out[0] = x[0].cos())
            .unwrap();
        assert!((sol.values[0] - 0.739_085_133_2).abs() < 1e-9);
    }

    #[test]
    fn linear_contraction_is_fast() {
        // x <- x/2 + 1 has fixed point 2 and contracts by 1/2 per step.
        let sol = FixedPoint::new(Options::default())
            .solve(vec![0.0], |x, out| out[0] = x[0] / 2.0 + 1.0)
            .unwrap();
        assert!((sol.values[0] - 2.0).abs() < 1e-10);
        assert!(sol.iterations < 60);
    }

    #[test]
    fn damping_stabilizes_oscillation() {
        // x <- -x + 2 oscillates forever undamped: the limit-cycle detector
        // catches the closed orbit instead of burning the budget. Damping
        // 0.5 lands on the fixed point 1.
        let undamped = FixedPoint::new(Options { max_iterations: 50, ..Options::default() })
            .solve(vec![0.0], |x, out| out[0] = -x[0] + 2.0);
        match undamped {
            Err(NumericError::Diverged(failure)) => {
                assert_eq!(failure.reason, DivergenceReason::LimitCycle { period: 2 });
                assert!(failure.iterations < 50, "caught at {}", failure.iterations);
                assert!(failure.last_finite.iter().all(|v| v.is_finite()));
            }
            other => panic!("expected limit-cycle divergence, got {other:?}"),
        }

        let damped = FixedPoint::new(Options { damping: 0.5, ..Options::default() })
            .solve(vec![0.0], |x, out| out[0] = -x[0] + 2.0)
            .unwrap();
        assert!((damped.values[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn period_2_cycle_is_caught_quickly() {
        // Regression guard for the ISSUE acceptance criterion: a known
        // period-2 oscillating map must be diagnosed in < 50 iterations
        // even with a generous budget.
        let err = FixedPoint::new(Options { max_iterations: 10_000, ..Options::default() })
            .solve(vec![3.0], |x, out| out[0] = -x[0] - 4.0)
            .unwrap_err();
        match err {
            NumericError::Diverged(failure) => {
                assert_eq!(failure.reason, DivergenceReason::LimitCycle { period: 2 });
                assert!(failure.iterations < 50, "took {} iterations", failure.iterations);
                assert!(!failure.residual_trajectory.is_empty());
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn period_3_cycle_is_caught() {
        // A 3-state rotation on one component: 0 → 1 → 2 → 0 → …
        let err = FixedPoint::new(Options { max_iterations: 10_000, ..Options::default() })
            .solve(vec![0.0], |x, out| {
                out[0] = if x[0] < 0.5 {
                    1.0
                } else if x[0] < 1.5 {
                    2.0
                } else {
                    0.0
                };
            })
            .unwrap_err();
        match err {
            NumericError::Diverged(failure) => {
                assert_eq!(failure.reason, DivergenceReason::LimitCycle { period: 3 });
                assert!(failure.iterations < 50, "took {} iterations", failure.iterations);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn geometric_divergence_is_caught_early() {
        // x <- 2x keeps a constant *relative* residual (0.5), so only the
        // absolute step-norm window can see it growing.
        let err = FixedPoint::new(Options { max_iterations: 10_000, ..Options::default() })
            .solve(vec![1.0], |x, out| out[0] = 2.0 * x[0])
            .unwrap_err();
        match err {
            NumericError::Diverged(failure) => {
                assert_eq!(failure.reason, DivergenceReason::ResidualGrowth);
                assert!(failure.iterations < 100, "took {} iterations", failure.iterations);
                assert!(failure.last_finite[0].is_finite());
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn overflow_is_caught_before_infinity() {
        // x <- x² from 10 reaches 1e150 within ~9 steps and ±∞ shortly
        // after; the overflow guard fires first, keeping last_finite usable.
        let err = FixedPoint::new(Options::default())
            .solve(vec![10.0], |x, out| out[0] = x[0] * x[0])
            .unwrap_err();
        match err {
            NumericError::Diverged(failure) => {
                assert!(matches!(failure.reason, DivergenceReason::Overflow { component: 0 }));
                assert!(failure.last_finite[0].is_finite());
            }
            other => panic!("expected overflow divergence, got {other:?}"),
        }
    }

    #[test]
    fn deadline_abandons_long_runs() {
        use std::time::Duration;
        // x <- x + 1 drifts forever with constant steps: no cycle, no step
        // growth, residual 1/x never reaches the tolerance — only the
        // deadline can end the run.
        let err = FixedPoint::new(Options {
            max_iterations: usize::MAX,
            tolerance: 0.0,
            deadline: Some(Duration::from_millis(5)),
            ..Options::default()
        })
        .solve(vec![0.0], |x, out| out[0] = x[0] + 1.0)
        .unwrap_err();
        match err {
            NumericError::Diverged(failure) => {
                assert_eq!(failure.reason, DivergenceReason::DeadlineExceeded);
                assert!(failure.last_finite[0].is_finite());
            }
            other => panic!("expected deadline divergence, got {other:?}"),
        }
    }

    #[test]
    fn residual_trajectory_is_capped() {
        let err = FixedPoint::new(Options {
            max_iterations: usize::MAX,
            tolerance: 0.0,
            deadline: Some(std::time::Duration::from_millis(20)),
            ..Options::default()
        })
        .solve(vec![0.0], |x, out| out[0] = x[0] + 1.0)
        .unwrap_err();
        if let NumericError::Diverged(failure) = err {
            assert!(failure.residual_trajectory.len() <= 512);
        } else {
            panic!("expected divergence");
        }
    }

    #[test]
    fn history_is_recorded() {
        let sol = FixedPoint::new(Options { record_history: true, ..Options::default() })
            .solve(vec![0.0], |x, out| out[0] = x[0] / 2.0 + 1.0)
            .unwrap();
        assert_eq!(sol.history.len(), sol.iterations + 1);
        assert_eq!(sol.history[0], vec![0.0]);
        assert_eq!(sol.history.last().unwrap(), &sol.values);
    }

    #[test]
    fn rejects_empty_initial() {
        let err = FixedPoint::new(Options::default())
            .solve(vec![], |_, _| {})
            .unwrap_err();
        assert!(matches!(err, NumericError::InvalidArgument(_)));
    }

    #[test]
    fn rejects_bad_damping() {
        let err = FixedPoint::new(Options { damping: 0.0, ..Options::default() })
            .solve(vec![1.0], |x, out| out[0] = x[0])
            .unwrap_err();
        assert!(matches!(err, NumericError::InvalidArgument(_)));
    }

    #[test]
    fn rejects_non_finite_map() {
        let err = FixedPoint::new(Options::default())
            .solve(vec![1.0], |_, out| out[0] = f64::NAN)
            .unwrap_err();
        match err {
            NumericError::Diverged(failure) => {
                assert_eq!(failure.reason, DivergenceReason::NonFinite { component: 0 });
                assert_eq!(failure.last_finite, vec![1.0]);
            }
            other => panic!("expected non-finite divergence, got {other:?}"),
        }
    }

    #[test]
    fn aitken_accelerates_slow_linear_convergence() {
        // x <- 0.99·x + 0.01 converges to 1 at rate 0.99: plain iteration
        // needs ~2000 steps for 1e-9; Aitken collapses it.
        let slow = |x: &[f64], out: &mut [f64]| out[0] = 0.99 * x[0] + 0.01;
        let plain = FixedPoint::new(Options {
            max_iterations: 100,
            tolerance: 1e-9,
            ..Options::default()
        })
        .solve(vec![0.0], slow);
        assert!(plain.is_err(), "plain iteration should be too slow");

        let accel = FixedPoint::new(Options {
            max_iterations: 100,
            tolerance: 1e-9,
            aitken: true,
            ..Options::default()
        })
        .solve(vec![0.0], slow)
        .unwrap();
        assert!((accel.values[0] - 1.0).abs() < 1e-6);
        assert!(accel.iterations < 50);
    }

    #[test]
    fn aitken_handles_oscillation() {
        // Eigenvalue −0.95: heavy oscillation, fixed point 1.0.
        let map = |x: &[f64], out: &mut [f64]| out[0] = -0.95 * x[0] + 1.95;
        let accel = FixedPoint::new(Options {
            max_iterations: 200,
            tolerance: 1e-10,
            aitken: true,
            ..Options::default()
        })
        .solve(vec![0.0], map)
        .unwrap();
        assert!((accel.values[0] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn aitken_does_not_break_fast_convergence() {
        let sol = FixedPoint::new(Options { aitken: true, ..Options::default() })
            .solve(vec![0.0], |x, out| out[0] = x[0].cos())
            .unwrap();
        assert!((sol.values[0] - 0.739_085_133_2).abs() < 1e-9);
    }

    #[test]
    fn already_converged_input_returns_quickly() {
        let sol = FixedPoint::new(Options::default())
            .solve(vec![2.0], |x, out| out[0] = x[0] / 2.0 + 1.0)
            .unwrap();
        assert_eq!(sol.iterations, 1);
    }
}
