//! Damped fixed-point iteration.
//!
//! The paper's mean-value equations contain cyclic interdependencies (the
//! response time `R` depends on bus and memory waiting times, which depend on
//! `R`), so they are solved by iterating from zero waiting times until the
//! iterates stop moving. This module provides that machinery in a reusable
//! form: a vector-valued map `x ← f(x)` is applied repeatedly, optionally
//! under-relaxed, until the maximum relative change across components falls
//! below a tolerance.

use crate::NumericError;

/// Options controlling a fixed-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Convergence tolerance on the maximum relative component change.
    pub tolerance: f64,
    /// Damping factor in `(0, 1]`: the next iterate is
    /// `damping * f(x) + (1 - damping) * x`. `1.0` is plain iteration.
    pub damping: f64,
    /// Record the full iterate history (for diagnostics / the paper's
    /// "converged within 15 iterations" claim).
    pub record_history: bool,
    /// Apply component-wise Aitken Δ² extrapolation every third iterate.
    ///
    /// Plain successive substitution converges linearly with a rate that
    /// can approach 1 (e.g. queueing maps near saturation); Aitken's
    /// process extrapolates the geometric tail and typically collapses
    /// hundreds of iterations into a handful. Extrapolation is skipped for
    /// components whose second difference is too small to divide by.
    pub aitken: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_iterations: 500,
            tolerance: 1e-12,
            damping: 1.0,
            record_history: false,
            aitken: false,
        }
    }
}

/// Result of a converged fixed-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The converged iterate.
    pub values: Vec<f64>,
    /// Number of iterations performed (a single application of the map
    /// counts as one iteration).
    pub iterations: usize,
    /// Maximum relative component change at the final iteration.
    pub residual: f64,
    /// Iterate history, present when [`Options::record_history`] was set.
    /// `history[0]` is the initial guess; the last entry equals `values`.
    pub history: Vec<Vec<f64>>,
}

/// A reusable fixed-point solver.
///
/// # Example
///
/// Solving the 2-d map `x = (y/2 + 1, x/2)` (fixed point `(4/3, 2/3)`):
///
/// ```
/// use snoop_numeric::fixed_point::{FixedPoint, Options};
///
/// let sol = FixedPoint::new(Options::default())
///     .solve(vec![0.0, 0.0], |x, out| {
///         out[0] = x[1] / 2.0 + 1.0;
///         out[1] = x[0] / 2.0;
///     })
///     .expect("contraction mapping converges");
/// assert!((sol.values[0] - 4.0 / 3.0).abs() < 1e-9);
/// assert!((sol.values[1] - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct FixedPoint {
    options: Options,
}

impl FixedPoint {
    /// Creates a solver with the given options.
    pub fn new(options: Options) -> Self {
        FixedPoint { options }
    }

    /// Runs the iteration `x ← f(x)` from `initial` until convergence.
    ///
    /// The map writes its output into the slice it is handed; it must not
    /// depend on the previous content of that slice.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NoConvergence`] if the tolerance is not met
    /// within the iteration budget, and [`NumericError::InvalidArgument`] if
    /// `initial` is empty, the damping factor is outside `(0, 1]`, or the map
    /// produces a non-finite component.
    pub fn solve<F>(&self, initial: Vec<f64>, mut f: F) -> Result<Solution, NumericError>
    where
        F: FnMut(&[f64], &mut [f64]),
    {
        if initial.is_empty() {
            return Err(NumericError::InvalidArgument(
                "fixed-point iteration needs at least one component".into(),
            ));
        }
        if !(self.options.damping > 0.0 && self.options.damping <= 1.0) {
            return Err(NumericError::InvalidArgument(format!(
                "damping must lie in (0, 1], got {}",
                self.options.damping
            )));
        }

        let n = initial.len();
        let mut current = initial;
        let mut next = vec![0.0; n];
        let mut history = Vec::new();
        if self.options.record_history {
            history.push(current.clone());
        }
        // Two trailing iterates for Aitken extrapolation.
        let mut prev1: Vec<f64> = Vec::new();
        let mut prev2: Vec<f64> = Vec::new();

        let mut residual = f64::INFINITY;
        for iteration in 1..=self.options.max_iterations {
            f(&current, &mut next);
            if let Some(bad) = next.iter().position(|v| !v.is_finite()) {
                return Err(NumericError::InvalidArgument(format!(
                    "map produced non-finite value at component {bad} in iteration {iteration}"
                )));
            }

            residual = 0.0;
            for i in 0..n {
                let damped =
                    self.options.damping * next[i] + (1.0 - self.options.damping) * current[i];
                let scale = damped.abs().max(current[i].abs()).max(1e-300);
                let change = (damped - current[i]).abs() / scale;
                if change > residual {
                    residual = change;
                }
                current[i] = damped;
            }
            if self.options.record_history {
                history.push(current.clone());
            }
            if residual < self.options.tolerance {
                return Ok(Solution { values: current, iterations: iteration, residual, history });
            }

            if self.options.aitken {
                if prev2.len() == n && prev1.len() == n && iteration % 3 == 0 {
                    // x_acc = x2 − (x2 − x1)² / (x2 − 2·x1 + x0), per
                    // component, where x0 = prev2, x1 = prev1, x2 = current.
                    for i in 0..n {
                        let d1 = current[i] - prev1[i];
                        let d2 = current[i] - 2.0 * prev1[i] + prev2[i];
                        if d2.abs() > 1e-300 {
                            let acc = current[i] - d1 * d1 / d2;
                            if acc.is_finite() {
                                current[i] = acc;
                            }
                        }
                    }
                    prev1.clear();
                    prev2.clear();
                    continue;
                }
                prev2 = std::mem::take(&mut prev1);
                prev1 = current.clone();
            }
        }

        Err(NumericError::NoConvergence {
            iterations: self.options.max_iterations,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_cosine() {
        let sol = FixedPoint::new(Options::default())
            .solve(vec![0.0], |x, out| out[0] = x[0].cos())
            .unwrap();
        assert!((sol.values[0] - 0.739_085_133_2).abs() < 1e-9);
    }

    #[test]
    fn linear_contraction_is_fast() {
        // x <- x/2 + 1 has fixed point 2 and contracts by 1/2 per step.
        let sol = FixedPoint::new(Options::default())
            .solve(vec![0.0], |x, out| out[0] = x[0] / 2.0 + 1.0)
            .unwrap();
        assert!((sol.values[0] - 2.0).abs() < 1e-10);
        assert!(sol.iterations < 60);
    }

    #[test]
    fn damping_stabilizes_oscillation() {
        // x <- -x + 2 oscillates forever undamped; damping 0.5 lands on 1.
        let undamped = FixedPoint::new(Options { max_iterations: 50, ..Options::default() })
            .solve(vec![0.0], |x, out| out[0] = -x[0] + 2.0);
        assert!(matches!(undamped, Err(NumericError::NoConvergence { .. })));

        let damped = FixedPoint::new(Options { damping: 0.5, ..Options::default() })
            .solve(vec![0.0], |x, out| out[0] = -x[0] + 2.0)
            .unwrap();
        assert!((damped.values[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn history_is_recorded() {
        let sol = FixedPoint::new(Options { record_history: true, ..Options::default() })
            .solve(vec![0.0], |x, out| out[0] = x[0] / 2.0 + 1.0)
            .unwrap();
        assert_eq!(sol.history.len(), sol.iterations + 1);
        assert_eq!(sol.history[0], vec![0.0]);
        assert_eq!(sol.history.last().unwrap(), &sol.values);
    }

    #[test]
    fn rejects_empty_initial() {
        let err = FixedPoint::new(Options::default())
            .solve(vec![], |_, _| {})
            .unwrap_err();
        assert!(matches!(err, NumericError::InvalidArgument(_)));
    }

    #[test]
    fn rejects_bad_damping() {
        let err = FixedPoint::new(Options { damping: 0.0, ..Options::default() })
            .solve(vec![1.0], |x, out| out[0] = x[0])
            .unwrap_err();
        assert!(matches!(err, NumericError::InvalidArgument(_)));
    }

    #[test]
    fn rejects_non_finite_map() {
        let err = FixedPoint::new(Options::default())
            .solve(vec![1.0], |_, out| out[0] = f64::NAN)
            .unwrap_err();
        assert!(matches!(err, NumericError::InvalidArgument(_)));
    }

    #[test]
    fn aitken_accelerates_slow_linear_convergence() {
        // x <- 0.99·x + 0.01 converges to 1 at rate 0.99: plain iteration
        // needs ~2000 steps for 1e-9; Aitken collapses it.
        let slow = |x: &[f64], out: &mut [f64]| out[0] = 0.99 * x[0] + 0.01;
        let plain = FixedPoint::new(Options {
            max_iterations: 100,
            tolerance: 1e-9,
            ..Options::default()
        })
        .solve(vec![0.0], slow);
        assert!(plain.is_err(), "plain iteration should be too slow");

        let accel = FixedPoint::new(Options {
            max_iterations: 100,
            tolerance: 1e-9,
            aitken: true,
            ..Options::default()
        })
        .solve(vec![0.0], slow)
        .unwrap();
        assert!((accel.values[0] - 1.0).abs() < 1e-6);
        assert!(accel.iterations < 50);
    }

    #[test]
    fn aitken_handles_oscillation() {
        // Eigenvalue −0.95: heavy oscillation, fixed point 1.0.
        let map = |x: &[f64], out: &mut [f64]| out[0] = -0.95 * x[0] + 1.95;
        let accel = FixedPoint::new(Options {
            max_iterations: 200,
            tolerance: 1e-10,
            aitken: true,
            ..Options::default()
        })
        .solve(vec![0.0], map)
        .unwrap();
        assert!((accel.values[0] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn aitken_does_not_break_fast_convergence() {
        let sol = FixedPoint::new(Options { aitken: true, ..Options::default() })
            .solve(vec![0.0], |x, out| out[0] = x[0].cos())
            .unwrap();
        assert!((sol.values[0] - 0.739_085_133_2).abs() < 1e-9);
    }

    #[test]
    fn already_converged_input_returns_quickly() {
        let sol = FixedPoint::new(Options::default())
            .solve(vec![2.0], |x, out| out[0] = x[0] / 2.0 + 1.0)
            .unwrap();
        assert_eq!(sol.iterations, 1);
    }
}
