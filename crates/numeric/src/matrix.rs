//! Dense row-major matrices.
//!
//! A deliberately small dense-matrix type sufficient for the direct
//! steady-state solution of the Markov chains produced by the GTPN engine on
//! small configurations (a few thousand states at most).

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::NumericError;

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use snoop_numeric::matrix::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 1.0;
/// m[(1, 1)] = 2.0;
/// assert_eq!(m.trace(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the rows have unequal
    /// lengths, and [`NumericError::InvalidArgument`] if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, NumericError> {
        let first = rows
            .first()
            .ok_or_else(|| NumericError::InvalidArgument("matrix needs at least one row".into()))?;
        let cols = first.len();
        if cols == 0 {
            return Err(NumericError::InvalidArgument("rows must be non-empty".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(NumericError::DimensionMismatch { expected: cols, actual: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Sum of the diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Matrix-vector product `self * x`.
    ///
    /// (Index loops are used deliberately in these small dense kernels.)
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch { expected: self.cols, actual: x.len() });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Vector-matrix product `x^T * self` (row vector times matrix).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.rows {
            return Err(NumericError::DimensionMismatch { expected: self.rows, actual: x.len() });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        Ok(out)
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, NumericError> {
        if self.cols != other.rows {
            return Err(NumericError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute entry (the max norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mul_vec_is_identity() {
        let m = Matrix::identity(3);
        let v = m.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { expected: 2, actual: 1 }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
        assert_eq!(t[(2, 1)], 6.0);
    }

    #[test]
    fn matrix_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let ab = a.mul(&b).unwrap();
        assert_eq!(ab, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap());
    }

    #[test]
    fn vec_mul_matches_transpose_mul_vec() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let x = [1.0, -1.0, 2.0];
        let a = m.vec_mul(&x).unwrap();
        let b = m.transpose().mul_vec(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mul_vec_dimension_check() {
        let m = Matrix::zeros(2, 3);
        assert!(m.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn trace_and_max_abs() {
        let m = Matrix::from_rows(&[vec![1.0, -7.0], vec![2.0, 3.0]]).unwrap();
        assert_eq!(m.trace(), 4.0);
        assert_eq!(m.max_abs(), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m}").is_empty());
    }
}
