//! Fault injection for fixed-point maps.
//!
//! The resilient solve pipeline claims that a solver built on
//! [`crate::fixed_point`] never panics and never returns non-finite values,
//! no matter how the underlying map misbehaves. This module provides the
//! adversary for proving that: [`FaultyMap`] wraps any fixed-point map and
//! injects the three numeric failure modes seen in practice —
//!
//! * **NaN** — a one-shot non-finite output (e.g. `0/0` on a degenerate
//!   input), which the solver must diagnose as
//!   [`crate::DivergenceReason::NonFinite`] rather than propagate;
//! * **spikes** — periodic multiplicative perturbations (e.g. a table lookup
//!   gone wrong), which a damped solver should ride out;
//! * **stalls** — a component frozen at a stale value (e.g. a cached
//!   intermediate never invalidated), which shifts the fixed point but must
//!   still end in a finite result or a structured failure.
//!
//! Injection is scheduled purely by call count, so every run is
//! deterministic and every failure reproducible.
//!
//! # Example
//!
//! ```
//! use snoop_numeric::fault::{Fault, FaultyMap};
//! use snoop_numeric::fixed_point::{FixedPoint, Options};
//! use snoop_numeric::NumericError;
//!
//! // A benign contraction, sabotaged with a NaN on its 5th evaluation.
//! let mut faulty = FaultyMap::new(|x: &[f64], out: &mut [f64]| {
//!     out[0] = 0.5 * x[0] + 1.0;
//! })
//! .with_fault(Fault::Nan { component: 0, call: 5 });
//!
//! let err = FixedPoint::new(Options::default())
//!     .solve(vec![0.0], |x, out| faulty.apply(x, out))
//!     .unwrap_err();
//! assert!(matches!(err, NumericError::Diverged(_)));
//! ```

/// A single scheduled fault. Call counts are 1-based: the first evaluation
/// of the wrapped map is call 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Replace `component`'s output with NaN on exactly the given call.
    Nan {
        /// Index of the component to corrupt.
        component: usize,
        /// 1-based call number at which to inject.
        call: usize,
    },
    /// Multiply `component`'s output by `factor` on every call whose number
    /// is a multiple of `period` (a `period` of 0 never fires).
    Spike {
        /// Index of the component to perturb.
        component: usize,
        /// Injection period in calls.
        period: usize,
        /// Multiplicative perturbation (e.g. `100.0` or `-1.0`).
        factor: f64,
    },
    /// Freeze `component` at the value it produces on call `from`: every
    /// later call replays that stale value regardless of the input.
    Stall {
        /// Index of the component to freeze.
        component: usize,
        /// 1-based call number from which the output is frozen.
        from: usize,
    },
}

/// A fixed-point map wrapper that injects scheduled [`Fault`]s.
///
/// Wraps any `FnMut(&[f64], &mut [f64])` map; pass
/// `|x, out| faulty.apply(x, out)` to [`crate::fixed_point::FixedPoint::solve`].
/// Faults naming a component outside the map's dimension are ignored.
#[derive(Debug, Clone)]
pub struct FaultyMap<F> {
    inner: F,
    faults: Vec<Fault>,
    /// Stale values captured by `Stall` faults, parallel to `faults`.
    stall_values: Vec<Option<f64>>,
    calls: usize,
}

impl<F: FnMut(&[f64], &mut [f64])> FaultyMap<F> {
    /// Wraps `inner` with an empty fault schedule.
    pub fn new(inner: F) -> Self {
        FaultyMap { inner, faults: Vec::new(), stall_values: Vec::new(), calls: 0 }
    }

    /// Adds a fault to the schedule (builder style).
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self.stall_values.push(None);
        self
    }

    /// Number of times the wrapped map has been evaluated.
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// Evaluates the wrapped map, then applies every scheduled fault that
    /// fires on this call.
    pub fn apply(&mut self, x: &[f64], out: &mut [f64]) {
        self.calls += 1;
        (self.inner)(x, out);
        for (fault, stale) in self.faults.iter().zip(self.stall_values.iter_mut()) {
            match *fault {
                Fault::Nan { component, call } if call == self.calls => {
                    if let Some(v) = out.get_mut(component) {
                        *v = f64::NAN;
                    }
                }
                Fault::Spike { component, period, factor }
                    if period > 0 && self.calls.is_multiple_of(period) =>
                {
                    if let Some(v) = out.get_mut(component) {
                        *v *= factor;
                    }
                }
                Fault::Stall { component, from } if self.calls >= from => {
                    if let Some(v) = out.get_mut(component) {
                        *v = *stale.get_or_insert(*v);
                    }
                }
                _ => {}
            }
        }
    }
}

/// A single scheduled **storage** fault, the on-disk counterpart of
/// [`Fault`]. Operation counts are 1-based and counted *per class*: the
/// first write the store performs is write-op 1, the first read is
/// read-op 1 — so a plan is deterministic no matter how reads and writes
/// interleave.
///
/// The four variants are the classic storage failure modes a crash-safe
/// store must survive:
///
/// * **torn write** — the process (or kernel) dies mid-`write(2)`; the
///   file keeps a prefix of the intended bytes and the caller sees an
///   error (or nothing at all, if the crash takes the process with it);
/// * **ENOSPC** — the volume fills; nothing (or only a prefix) lands;
/// * **short read** — a reader sees a truncated view (concurrent
///   truncation, torn page, buggy NFS);
/// * **bit flip** — silent media corruption: the write *appears* to
///   succeed but one bit differs on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Write-op `op` persists only the first `keep` bytes, then fails.
    TornWrite {
        /// 1-based write-operation number at which to inject.
        op: usize,
        /// Bytes that make it to disk before the tear.
        keep: usize,
    },
    /// Write-op `op` fails with `ENOSPC` before persisting anything.
    Enospc {
        /// 1-based write-operation number at which to inject.
        op: usize,
    },
    /// Read-op `op` returns only the first `keep` bytes of the file.
    ShortRead {
        /// 1-based read-operation number at which to inject.
        op: usize,
        /// Bytes the reader sees.
        keep: usize,
    },
    /// Write-op `op` silently flips the lowest bit of byte `byte`
    /// (modulo the payload length) and reports success.
    BitFlip {
        /// 1-based write-operation number at which to inject.
        op: usize,
        /// Byte index to corrupt (taken modulo the payload length).
        byte: usize,
    },
}

impl StorageFault {
    /// Whether this fault fires on read operations (else on writes).
    pub fn is_read_fault(&self) -> bool {
        matches!(self, StorageFault::ShortRead { .. })
    }

    /// The 1-based operation number this fault is scheduled for.
    pub fn op(&self) -> usize {
        match *self {
            StorageFault::TornWrite { op, .. }
            | StorageFault::Enospc { op }
            | StorageFault::ShortRead { op, .. }
            | StorageFault::BitFlip { op, .. } => op,
        }
    }
}

/// A deterministic storage-fault schedule: counts read and write
/// operations independently and reports which fault (if any) fires on
/// each. The storage adversary (`snoop-store`'s `FaultyFs`) consults the
/// plan on every filesystem operation, so a given plan produces exactly
/// the same failure in every run — the same discipline [`FaultyMap`]
/// applies to numeric maps.
#[derive(Debug, Clone, Default)]
pub struct StoragePlan {
    faults: Vec<StorageFault>,
    reads: usize,
    writes: usize,
}

impl StoragePlan {
    /// An empty plan (no faults ever fire).
    pub fn new() -> Self {
        StoragePlan::default()
    }

    /// Adds a fault to the schedule (builder style).
    pub fn with_fault(mut self, fault: StorageFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Registers the next read operation and returns the fault that
    /// fires on it, if any.
    pub fn begin_read(&mut self) -> Option<StorageFault> {
        self.reads += 1;
        let n = self.reads;
        self.faults.iter().copied().find(|f| f.is_read_fault() && f.op() == n)
    }

    /// Registers the next write operation and returns the fault that
    /// fires on it, if any.
    pub fn begin_write(&mut self) -> Option<StorageFault> {
        self.writes += 1;
        let n = self.writes;
        self.faults.iter().copied().find(|f| !f.is_read_fault() && f.op() == n)
    }

    /// `(reads, writes)` seen so far.
    pub fn ops(&self) -> (usize, usize) {
        (self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{DivergenceReason, FixedPoint, Options};
    use crate::NumericError;

    /// The benign 2-d contraction used as the substrate for injection.
    fn benign(x: &[f64], out: &mut [f64]) {
        out[0] = 0.5 * x[0] + 0.25 * x[1] + 1.0;
        out[1] = 0.25 * x[0] + 0.5 * x[1] + 0.5;
    }

    #[test]
    fn clean_map_converges() {
        let mut faulty = FaultyMap::new(benign);
        let sol = FixedPoint::new(Options::default())
            .solve(vec![0.0, 0.0], |x, out| faulty.apply(x, out))
            .unwrap();
        assert!(sol.values.iter().all(|v| v.is_finite()));
        assert_eq!(faulty.calls(), sol.iterations);
    }

    #[test]
    fn nan_fault_is_diagnosed_not_propagated() {
        let mut faulty =
            FaultyMap::new(benign).with_fault(Fault::Nan { component: 1, call: 3 });
        let err = FixedPoint::new(Options::default())
            .solve(vec![0.0, 0.0], |x, out| faulty.apply(x, out))
            .unwrap_err();
        match err {
            NumericError::Diverged(failure) => {
                assert_eq!(failure.reason, DivergenceReason::NonFinite { component: 1 });
                assert_eq!(failure.iterations, 3);
                assert!(failure.last_finite.iter().all(|v| v.is_finite()));
            }
            other => panic!("expected non-finite diagnosis, got {other:?}"),
        }
    }

    #[test]
    fn spike_fault_is_ridden_out() {
        // A 10× spike every 7 calls perturbs the trajectory but the
        // contraction pulls it back: the solver still converges and the
        // result is finite.
        let mut faulty = FaultyMap::new(benign)
            .with_fault(Fault::Spike { component: 0, period: 7, factor: 10.0 });
        let sol = FixedPoint::new(Options {
            max_iterations: 5_000,
            tolerance: 1e-9,
            ..Options::default()
        })
        .solve(vec![0.0, 0.0], |x, out| faulty.apply(x, out));
        // Either it converged between spikes (finite values), or it
        // reported a structured failure — never a panic, never NaN.
        match sol {
            Ok(s) => assert!(s.values.iter().all(|v| v.is_finite())),
            Err(NumericError::Diverged(f)) => {
                assert!(f.last_finite.iter().all(|v| v.is_finite()));
            }
            Err(NumericError::NoConvergence { residual, .. }) => assert!(residual.is_finite()),
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }

    #[test]
    fn stall_fault_shifts_fixed_point_but_stays_finite() {
        let mut faulty =
            FaultyMap::new(benign).with_fault(Fault::Stall { component: 1, from: 2 });
        let sol = FixedPoint::new(Options::default())
            .solve(vec![0.0, 0.0], |x, out| faulty.apply(x, out))
            .unwrap();
        // Component 1 froze at its call-2 value; the rest of the system
        // still reaches a (shifted) fixed point with finite values.
        assert!(sol.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn out_of_range_component_is_ignored() {
        let mut faulty =
            FaultyMap::new(benign).with_fault(Fault::Nan { component: 99, call: 1 });
        let sol = FixedPoint::new(Options::default())
            .solve(vec![0.0, 0.0], |x, out| faulty.apply(x, out))
            .unwrap();
        assert!(sol.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn storage_plan_counts_reads_and_writes_independently() {
        let mut plan = StoragePlan::new()
            .with_fault(StorageFault::ShortRead { op: 2, keep: 4 })
            .with_fault(StorageFault::Enospc { op: 2 });
        // Read 1: clean. Write 1: clean. Read 2: short read fires even
        // though only one write happened. Write 2: ENOSPC fires.
        assert_eq!(plan.begin_read(), None);
        assert_eq!(plan.begin_write(), None);
        assert_eq!(plan.begin_read(), Some(StorageFault::ShortRead { op: 2, keep: 4 }));
        assert_eq!(plan.begin_write(), Some(StorageFault::Enospc { op: 2 }));
        // Later operations are clean again.
        assert_eq!(plan.begin_read(), None);
        assert_eq!(plan.begin_write(), None);
        assert_eq!(plan.ops(), (3, 3));
    }

    #[test]
    fn storage_plan_replays_identically() {
        let build = || {
            StoragePlan::new()
                .with_fault(StorageFault::TornWrite { op: 1, keep: 7 })
                .with_fault(StorageFault::BitFlip { op: 3, byte: 12 })
        };
        let run = |mut plan: StoragePlan| {
            (0..5).map(|_| plan.begin_write()).collect::<Vec<_>>()
        };
        assert_eq!(run(build()), run(build()));
        assert_eq!(
            run(build()),
            vec![
                Some(StorageFault::TornWrite { op: 1, keep: 7 }),
                None,
                Some(StorageFault::BitFlip { op: 3, byte: 12 }),
                None,
                None
            ]
        );
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || {
            let mut faulty = FaultyMap::new(benign)
                .with_fault(Fault::Spike { component: 0, period: 5, factor: -3.0 })
                .with_fault(Fault::Stall { component: 1, from: 4 });
            FixedPoint::new(Options { max_iterations: 200, ..Options::default() })
                .solve(vec![0.0, 0.0], |x, out| faulty.apply(x, out))
        };
        assert_eq!(format!("{:?}", run()), format!("{:?}", run()));
    }
}
