//! A dependency-free parallel evaluation engine.
//!
//! The evaluation layer of this suite is dominated by *embarrassingly
//! parallel* loops over independent work items: the (protocol × sharing)
//! series of a speedup sweep, the per-parameter perturbations of a
//! sensitivity analysis, the independent replications of the discrete-event
//! simulator, and the frontier of a GTPN reachability wave. This module
//! provides the one executor they all share.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — the output of [`par_map`] is *bit-identical* to the
//!    serial `items.iter().map(f).collect()` for any thread count and any
//!    grain, because each result is written to the slot of its input index
//!    and `f` itself must be a pure function of its item. Thread count and
//!    chunking change wall-clock time, never results.
//! 2. **No new crates** — the repo is offline-first, so the executor is
//!    built on a [persistent worker pool](pool) of std threads instead of
//!    rayon. Lifetime erasure inside the pool lets `f` borrow the caller's
//!    state without `'static` gymnastics, and the completion protocol
//!    guarantees no worker touches that state after `par_map` returns.
//! 3. **Amortized dispatch** — workers are spawned once per process
//!    (lazily) and parked between calls, so a `par_map` call costs a queue
//!    push plus condvar wakeups, not a `thread::scope` spawn/join cycle.
//!    Work is claimed in *chunks* from a shared atomic cursor
//!    (self-balancing: a thread that draws slow items simply claims fewer
//!    chunks), with the grain picked by [`ExecOptions::resolved_grain`] so
//!    micro-item callers (sensitivity rows, small GTPN waves) amortize
//!    cursor traffic and per-item dispatch overhead automatically.
//!
//! # Thread-count resolution
//!
//! [`ExecOptions::threads`] of `0` means *auto*: the `SNOOP_THREADS`
//! environment variable when set to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. The resolution runs **once per
//! process** (cached in a `OnceLock`) — re-reading the environment on
//! every call measurably taxed micro-batches. This gives CI a one-knob way
//! to pin the whole suite to 1 or 4 threads without plumbing a flag through
//! every binary.
//!
//! # Nesting
//!
//! `par_map` may be called from inside a `par_map` closure (the engine
//! batch layer does this when a backend parallelizes internally). Nested
//! calls are deadlock-free by construction: the submitting thread is
//! always a full participant in its own job, so a job completes even when
//! every pool worker is busy.
//!
//! # Example
//!
//! ```
//! use snoop_numeric::exec::{par_map, ExecOptions};
//!
//! let squares = par_map(&[1_u64, 2, 3, 4], &ExecOptions::with_threads(2), |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

mod pool;

use std::any::Any;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Configuration for the parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker-thread count. `0` means auto: `SNOOP_THREADS` when set,
    /// otherwise the machine's available parallelism. `1` runs inline on
    /// the calling thread (no pool dispatch at all).
    pub threads: usize,
    /// Items claimed per cursor fetch. `0` means auto:
    /// `max(1, items / (threads * 4))` — four chunks per worker balances
    /// load against cursor contention. Larger grains amortize dispatch for
    /// micro-items; grain ≥ items degenerates to serial.
    pub grain: usize,
}

impl ExecOptions {
    /// Run everything inline on the calling thread.
    pub const SERIAL: ExecOptions = ExecOptions { threads: 1, grain: 0 };

    /// An explicit thread count (`0` = auto), with auto grain.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions { threads, grain: 0 }
    }

    /// Overrides the chunk grain (`0` = auto heuristic).
    #[must_use]
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain;
        self
    }

    /// The concrete worker count this configuration resolves to.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            default_threads()
        }
    }

    /// The chunk size used for `items` work items on `threads` workers:
    /// the explicit [`ExecOptions::grain`] when set, otherwise
    /// `max(1, items / (threads * 4))`.
    pub fn resolved_grain(&self, items: usize, threads: usize) -> usize {
        if self.grain > 0 {
            self.grain
        } else {
            (items / (threads.max(1) * 4)).max(1)
        }
    }
}

impl Default for ExecOptions {
    /// Auto thread count and grain (see [module docs](self) for the
    /// resolution rules).
    fn default() -> Self {
        ExecOptions { threads: 0, grain: 0 }
    }
}

/// Test-only override for [`default_threads`]; `0` means "no override".
static DEFAULT_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Cached once-per-process resolution of the auto thread count.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Resolves the *auto* thread count: `SNOOP_THREADS` if it parses to a
/// positive integer, else [`std::thread::available_parallelism`], else 1.
///
/// The environment and the OS are consulted **once per process**; later
/// calls return the cached value. (Tests that need a different value in
/// the same process use [`set_default_threads_override`].)
pub fn default_threads() -> usize {
    let forced = DEFAULT_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    *DEFAULT_THREADS.get_or_init(|| {
        if let Ok(value) = std::env::var("SNOOP_THREADS") {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Forces [`default_threads`] to return `n` (`0` clears the override and
/// restores the cached per-process resolution). Test-only hook: the cache
/// makes the environment read once-per-process, so tests exercising the
/// resolution rule need a way to vary it after the first call.
#[doc(hidden)]
pub fn set_default_threads_override(n: usize) {
    DEFAULT_THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The machine's available parallelism, ignoring `SNOOP_THREADS`. Bench
/// metadata records this so speedup gates can tell "parallel is broken"
/// apart from "this host cannot run 4 threads at once".
pub fn hardware_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Results are returned in input order and are identical to the serial
/// `items.iter().map(f).collect()` for any thread count (determinism
/// contract — see [module docs](self)).
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread. Results already
/// produced by other workers when the panic struck are leaked, not
/// dropped (their slots are indistinguishable from uninitialized ones).
pub fn par_map<T, U, F>(items: &[T], options: &ExecOptions, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, options, |item, _| f(item))
}

/// The caller-stack payload a pool job points at. Workers restore the
/// type parameters through the monomorphized [`run_claim_loop`] shim.
struct JobData<'a, T, U, F> {
    items: &'a [T],
    f: &'a F,
    /// Preallocated output region; slot `i` is written by whichever
    /// worker claims index `i` (exactly one does).
    out: *mut MaybeUninit<U>,
    cursor: &'a AtomicUsize,
    chunk: usize,
    poisoned: &'a AtomicBool,
    panic: &'a Mutex<Option<Box<dyn Any + Send>>>,
}

/// The claim loop every participant (submitter and attached workers)
/// runs: grab `chunk` indices from the cursor, map them, write results
/// straight into the output slots. Never unwinds — a panic in `f` is
/// captured into the job's panic slot and poisons the cursor so peers
/// stop claiming.
unsafe fn run_claim_loop<T, U, F>(data: *const ())
where
    T: Sync,
    U: Send,
    F: Fn(&T, usize) -> U + Sync,
{
    let job = unsafe { &*(data as *const JobData<'_, T, U, F>) };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let len = job.items.len();
        loop {
            if job.poisoned.load(Ordering::Relaxed) {
                break;
            }
            let start = job.cursor.fetch_add(job.chunk, Ordering::Relaxed);
            if start >= len {
                break;
            }
            let end = (start + job.chunk).min(len);
            for i in start..end {
                let value = (job.f)(&job.items[i], i);
                // SAFETY: index `i` is claimed by exactly one participant,
                // and `out` has `len` slots.
                unsafe { (*job.out.add(i)).write(value) };
            }
        }
    }));
    if let Err(payload) = outcome {
        job.poisoned.store(true, Ordering::Relaxed);
        let mut slot = job.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Like [`par_map`], but `f` also receives the item's index.
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread.
pub fn par_map_indexed<T, U, F>(items: &[T], options: &ExecOptions, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T, usize) -> U + Sync,
{
    let len = items.len();
    let threads = options.resolved_threads().min(len);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(item, i)).collect();
    }
    let chunk = options.resolved_grain(len, threads);
    // One participant per chunk at most; the submitter takes one share.
    let attachers = threads.min(len.div_ceil(chunk)).saturating_sub(1);
    if attachers == 0 {
        return items.iter().enumerate().map(|(i, item)| f(item, i)).collect();
    }

    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(len);
    // SAFETY: `MaybeUninit` slots require no initialization.
    unsafe { out.set_len(len) };

    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let job_data = JobData {
        items,
        f: &f,
        out: out.as_mut_ptr(),
        cursor: &cursor,
        chunk,
        poisoned: &poisoned,
        panic: &panic_slot,
    };

    let job = Arc::new(pool::JobCore::new(
        (&raw const job_data).cast::<()>(),
        run_claim_loop::<T, U, F>,
    ));
    pool::global().submit(Arc::clone(&job), attachers);
    // The submitter is a full participant — it runs the same claim loop,
    // which is what makes nested calls deadlock-free.
    // SAFETY: `job_data` outlives this call; `detach` below is the
    // borrow-safety boundary for the pool workers.
    unsafe { run_claim_loop::<T, U, F>((&raw const job_data).cast::<()>()) };
    pool::global().detach(&job);

    if let Some(payload) = panic_slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
        // Which slots were initialized is unknowable after a poisoned
        // run; leak them rather than risk dropping uninitialized memory.
        std::mem::forget(out);
        std::panic::resume_unwind(payload);
    }

    // SAFETY: every index in 0..len was claimed exactly once and written
    // (no panic occurred), so all slots are initialized.
    unsafe {
        let ptr = out.as_mut_ptr().cast::<U>();
        let cap = out.capacity();
        std::mem::forget(out);
        Vec::from_raw_parts(ptr, len, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = par_map(&items, &ExecOptions::with_threads(threads), |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn indexed_variant_sees_input_indices() {
        let items = ["a", "b", "c"];
        let out = par_map_indexed(&items, &ExecOptions::with_threads(3), |s, i| {
            format!("{i}:{s}")
        });
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], &ExecOptions::default(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map(&[1, 2], &ExecOptions::with_threads(64), |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn single_item_runs_on_the_caller() {
        for threads in [1, 2, 3, 8] {
            let out = par_map(&[41], &ExecOptions::with_threads(threads), |&x: &i32| x + 1);
            assert_eq!(out, vec![42], "{threads} threads");
        }
    }

    #[test]
    fn serial_option_matches_parallel_bitwise() {
        // Floating-point results must be bit-identical across thread
        // counts: each slot runs the same operations on the same item.
        let items: Vec<f64> = (1..50).map(|i| f64::from(i) * 0.37).collect();
        let f = |x: &f64| (x.sin() * x.exp()).sqrt();
        let serial = par_map(&items, &ExecOptions::SERIAL, f);
        for threads in [2, 3, 8] {
            let parallel = par_map(&items, &ExecOptions::with_threads(threads), f);
            let same = serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{threads} threads diverged");
        }
    }

    #[test]
    fn explicit_grain_matches_serial_bitwise() {
        let items: Vec<f64> = (1..97).map(|i| f64::from(i) * 0.73).collect();
        let f = |x: &f64| (x.cos() + x.ln()).tan();
        let serial = par_map(&items, &ExecOptions::SERIAL, f);
        // Grains that divide the input unevenly, exceed it, and equal 1.
        for grain in [1, 5, 7, 64, 200] {
            for threads in [2, 3, 8] {
                let opts = ExecOptions::with_threads(threads).with_grain(grain);
                let parallel = par_map(&items, &opts, f);
                let same = serial
                    .iter()
                    .zip(&parallel)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "grain {grain}, {threads} threads diverged");
            }
        }
    }

    #[test]
    fn auto_grain_heuristic() {
        let opts = ExecOptions::with_threads(4);
        assert_eq!(opts.resolved_grain(1000, 4), 62); // 1000 / 16
        assert_eq!(opts.resolved_grain(9, 4), 1); // floors at 1
        assert_eq!(opts.resolved_grain(0, 4), 1);
        assert_eq!(ExecOptions::with_threads(4).with_grain(17).resolved_grain(1000, 4), 17);
    }

    #[test]
    fn borrows_caller_state() {
        let offset = 10;
        let out = par_map(&[1, 2, 3], &ExecOptions::with_threads(2), |&x: &i32| x + offset);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn auto_resolves_to_positive() {
        assert!(ExecOptions::default().resolved_threads() >= 1);
        assert_eq!(ExecOptions::with_threads(7).resolved_threads(), 7);
    }

    #[test]
    fn default_threads_is_cached_and_overridable() {
        let baseline = default_threads();
        assert!(baseline >= 1);
        // Same process, same answer: the resolution is cached.
        assert_eq!(default_threads(), baseline);
        set_default_threads_override(13);
        assert_eq!(default_threads(), 13);
        assert_eq!(ExecOptions::default().resolved_threads(), 13);
        set_default_threads_override(0);
        assert_eq!(default_threads(), baseline);
    }

    #[test]
    fn nested_par_map_completes() {
        let outer: Vec<usize> = (0..8).collect();
        let expected: Vec<usize> = outer.iter().map(|&x| x * 10 + 45).collect();
        let opts = ExecOptions::with_threads(4);
        let out = par_map(&outer, &opts, |&x| {
            let inner: Vec<usize> = (0..10).collect();
            let partial = par_map(&inner, &opts, |&y| y);
            x * 10 + partial.iter().sum::<usize>()
        });
        assert_eq!(out, expected);
    }

    #[test]
    fn non_copy_results_are_moved_intact() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, &ExecOptions::with_threads(4), |&x| vec![x; x % 5]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i % 5);
            assert!(v.iter().all(|&e| e == i));
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        par_map(&items, &ExecOptions::with_threads(4), |&x| {
            assert!(x != 7, "boom");
            x
        });
    }

    #[test]
    #[should_panic(expected = "chunked boom")]
    fn panic_inside_a_chunk_propagates() {
        let items: Vec<usize> = (0..100).collect();
        let opts = ExecOptions::with_threads(4).with_grain(8);
        par_map(&items, &opts, |&x| {
            assert!(x != 57, "chunked boom");
            x
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let items: Vec<usize> = (0..32).collect();
        let opts = ExecOptions::with_threads(4);
        let boom = std::panic::catch_unwind(|| {
            par_map(&items, &opts, |&x| {
                assert!(x != 3, "transient");
                x
            })
        });
        assert!(boom.is_err());
        // The pool must keep serving jobs after a poisoned one.
        let out = par_map(&items, &opts, |&x| x + 1);
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }
}
