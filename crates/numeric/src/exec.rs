//! A dependency-free parallel evaluation engine.
//!
//! The evaluation layer of this suite is dominated by *embarrassingly
//! parallel* loops over independent work items: the (protocol × sharing)
//! series of a speedup sweep, the per-parameter perturbations of a
//! sensitivity analysis, the independent replications of the discrete-event
//! simulator, and the frontier of a GTPN reachability wave. This module
//! provides the one executor they all share.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — the output of [`par_map`] is *bit-identical* to the
//!    serial `items.iter().map(f).collect()` for any thread count, because
//!    each result is written to the slot of its input index and `f` itself
//!    must be a pure function of its item. Thread count changes wall-clock
//!    time, never results.
//! 2. **No new crates** — the repo is offline-first, so the executor is
//!    built on [`std::thread::scope`] and an atomic work cursor instead of
//!    rayon. Scoped threads let `f` borrow the caller's state without any
//!    `'static` gymnastics.
//! 3. **Coarse-grained work** — items are claimed one at a time from a
//!    shared atomic cursor (self-balancing: a thread that draws a slow item
//!    simply claims fewer). The intended grain is "one solver run", not
//!    "one arithmetic op"; callers with micro-items should batch first or
//!    pass [`ExecOptions::SERIAL`].
//!
//! # Thread-count resolution
//!
//! [`ExecOptions::threads`] of `0` means *auto*: the `SNOOP_THREADS`
//! environment variable when set to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. This gives CI a one-knob way to
//! pin the whole suite to 1 or 4 threads without plumbing a flag through
//! every binary.
//!
//! # Example
//!
//! ```
//! use snoop_numeric::exec::{par_map, ExecOptions};
//!
//! let squares = par_map(&[1_u64, 2, 3, 4], &ExecOptions::with_threads(2), |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration for the parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker-thread count. `0` means auto: `SNOOP_THREADS` when set,
    /// otherwise the machine's available parallelism. `1` runs inline on
    /// the calling thread (no spawning at all).
    pub threads: usize,
}

impl ExecOptions {
    /// Run everything inline on the calling thread.
    pub const SERIAL: ExecOptions = ExecOptions { threads: 1 };

    /// An explicit thread count (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions { threads }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            default_threads()
        }
    }
}

impl Default for ExecOptions {
    /// Auto thread count (see [module docs](self) for the resolution rule).
    fn default() -> Self {
        ExecOptions { threads: 0 }
    }
}

/// Resolves the *auto* thread count: `SNOOP_THREADS` if it parses to a
/// positive integer, else [`std::thread::available_parallelism`], else 1.
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var("SNOOP_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Results are returned in input order and are identical to the serial
/// `items.iter().map(f).collect()` for any thread count (determinism
/// contract — see [module docs](self)).
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread.
pub fn par_map<T, U, F>(items: &[T], options: &ExecOptions, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, options, |item, _| f(item))
}

/// Like [`par_map`], but `f` also receives the item's index.
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread.
pub fn par_map_indexed<T, U, F>(items: &[T], options: &ExecOptions, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T, usize) -> U + Sync,
{
    let threads = options.resolved_threads().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(item, i)).collect();
    }

    // Claim items one at a time from a shared cursor; collect each worker's
    // (index, result) pairs locally so computation never contends on a lock.
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i], i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    // Scatter into input order; every index was claimed exactly once.
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for local in per_worker {
        for (i, value) in local {
            slots[i] = Some(value);
        }
    }
    slots.into_iter().map(|slot| slot.expect("every index claimed once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = par_map(&items, &ExecOptions::with_threads(threads), |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn indexed_variant_sees_input_indices() {
        let items = ["a", "b", "c"];
        let out = par_map_indexed(&items, &ExecOptions::with_threads(3), |s, i| {
            format!("{i}:{s}")
        });
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], &ExecOptions::default(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map(&[1, 2], &ExecOptions::with_threads(64), |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn serial_option_matches_parallel_bitwise() {
        // Floating-point results must be bit-identical across thread
        // counts: each slot runs the same operations on the same item.
        let items: Vec<f64> = (1..50).map(|i| f64::from(i) * 0.37).collect();
        let f = |x: &f64| (x.sin() * x.exp()).sqrt();
        let serial = par_map(&items, &ExecOptions::SERIAL, f);
        for threads in [2, 3, 8] {
            let parallel = par_map(&items, &ExecOptions::with_threads(threads), f);
            let same = serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{threads} threads diverged");
        }
    }

    #[test]
    fn borrows_caller_state() {
        let offset = 10;
        let out = par_map(&[1, 2, 3], &ExecOptions::with_threads(2), |&x: &i32| x + offset);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn auto_resolves_to_positive() {
        assert!(ExecOptions::default().resolved_threads() >= 1);
        assert_eq!(ExecOptions::with_threads(7).resolved_threads(), 7);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        par_map(&items, &ExecOptions::with_threads(4), |&x| {
            assert!(x != 7, "boom");
            x
        });
    }
}
