//! Bracketed scalar root finding.
//!
//! The asymptotic (N → ∞) analysis in `snoop-mva` solves for the saturation
//! point of the bus — a scalar root of a monotone function — and the
//! calibration harness inverts speedup targets. Bisection is robust and
//! plenty fast for those uses; an Illinois-variant regula falsi is provided
//! where extra speed matters.

use crate::NumericError;

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (an endpoint that is
/// already a root is returned immediately).
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the bracket is invalid or
/// does not straddle a sign change, and [`NumericError::NoConvergence`] if
/// the tolerance is not met within `max_iterations`.
///
/// # Example
///
/// ```
/// use snoop_numeric::roots::bisect;
///
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
/// ```
// `!(lo < hi)` deliberately rejects NaN brackets, which `lo >= hi`
// would let through.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn bisect<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tolerance: f64,
    max_iterations: usize,
) -> Result<f64, NumericError>
where
    F: FnMut(f64) -> f64,
{
    if !(lo < hi) {
        return Err(NumericError::InvalidArgument(format!("invalid bracket [{lo}, {hi}]")));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidArgument(format!(
            "no sign change over [{lo}, {hi}]: f(lo) = {fa}, f(hi) = {fb}"
        )));
    }

    for _ in 0..max_iterations {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || (b - a) * 0.5 < tolerance {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(NumericError::NoConvergence { iterations: max_iterations, residual: b - a })
}

/// Finds a root with the Illinois variant of regula falsi (superlinear on
/// smooth functions, still bracketed and robust).
///
/// # Errors
///
/// Same contract as [`bisect`].
// `!(lo < hi)` deliberately rejects NaN brackets, which `lo >= hi`
// would let through.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn regula_falsi<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tolerance: f64,
    max_iterations: usize,
) -> Result<f64, NumericError>
where
    F: FnMut(f64) -> f64,
{
    if !(lo < hi) {
        return Err(NumericError::InvalidArgument(format!("invalid bracket [{lo}, {hi}]")));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidArgument(format!(
            "no sign change over [{lo}, {hi}]: f(lo) = {fa}, f(hi) = {fb}"
        )));
    }

    let mut side = 0i8;
    for _ in 0..max_iterations {
        let c = (a * fb - b * fa) / (fb - fa);
        let fc = f(c);
        if fc.abs() < tolerance || (b - a).abs() < tolerance {
            return Ok(c);
        }
        if fc.signum() == fb.signum() {
            b = c;
            fb = fc;
            if side == -1 {
                fa *= 0.5; // Illinois trick: halve the stagnant endpoint.
            }
            side = -1;
        } else {
            a = c;
            fa = fc;
            if side == 1 {
                fb *= 0.5;
            }
            side = 1;
        }
    }
    Err(NumericError::NoConvergence { iterations: max_iterations, residual: (b - a).abs() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_no_sign_change() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(NumericError::InvalidArgument(_))
        ));
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x, 1.0, 0.0, 1e-12, 100).is_err());
    }

    #[test]
    fn regula_falsi_matches_bisect() {
        let f = |x: f64| x.exp() - 3.0;
        let a = bisect(f, 0.0, 2.0, 1e-13, 200).unwrap();
        let b = regula_falsi(f, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((a - b).abs() < 1e-9);
        assert!((a - 3.0_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn regula_falsi_handles_flat_side() {
        // x^10 - 0.5 is very flat near 0; Illinois must not stagnate.
        let r = regula_falsi(|x| x.powi(10) - 0.5, 0.0, 1.0, 1e-12, 500).unwrap();
        assert!((r - 0.5_f64.powf(0.1)).abs() < 1e-6);
    }

    #[test]
    fn bisect_exhausts_iterations() {
        let err = bisect(|x| x - 0.123_456_789, 0.0, 1.0, 1e-300, 5);
        assert!(matches!(err, Err(NumericError::NoConvergence { .. })));
    }
}
