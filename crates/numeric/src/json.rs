//! A minimal, dependency-free JSON reader/writer.
//!
//! The repository is offline-first (no serde): the probe layer hand-rolls
//! its metrics JSON, and the evaluation engine needs to *read* scenario
//! batch files and round-trip cached results. This module provides the
//! shared primitive: a [`JsonValue`] tree with a strict recursive-descent
//! parser and a deterministic writer.
//!
//! Design points:
//!
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map), so
//!   writing is deterministic and canonical serializations stay stable.
//! * **Numbers are `f64`** and are written with Rust's shortest round-trip
//!   formatting (`{:?}`), so `parse(write(x)) == x` bit-for-bit for every
//!   finite `f64`. Integers up to 2^53 round-trip exactly.
//! * Non-finite numbers serialize as `null` (JSON has no NaN/Inf).

use std::fmt;

/// Maximum nesting depth accepted by the parser (stack-overflow guard).
const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a JSON document (must be a single value plus whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => {
                pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions and numbers
    /// beyond exact `f64` integer range).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(v)
                if *v >= 0.0 && v.fract() == 0.0 && *v <= 9_007_199_254_740_992.0 =>
            {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The value as a `u64` (same exactness constraints as
    /// [`JsonValue::as_usize`]).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_usize().map(|v| v as u64)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs (insertion order), if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes the value compactly (no whitespace), deterministically:
    /// object pairs appear in insertion order and numbers use shortest
    /// round-trip formatting.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(v) => out.push_str(&format_f64(*v)),
            JsonValue::String(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats an `f64` as a JSON number with shortest round-trip precision;
/// non-finite values become `null`.
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // BMP only; surrogate halves are rejected (the
                            // scenario/cache formats never emit them).
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Number(v)),
            _ => Err(JsonError {
                offset: start,
                message: format!("invalid number {text:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(JsonValue::parse("-1.5e3").unwrap(), JsonValue::Number(-1500.0));
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = JsonValue::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> =
            v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v.render(), r#"{"z":1.0,"a":2.0,"m":3.0}"#);
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [0.1, 1e-12, 0.95, 2.0 / 3.0, 1592969918.0, f64::MIN_POSITIVE] {
            let text = format_f64(v);
            let back = JsonValue::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let text = r#"{"s":"q\"uo\\te","n":[1.5,-2,0],"b":true,"x":null}"#;
        let v = JsonValue::parse(text).unwrap();
        let rendered = v.render();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "{\"a\":1,\"a\":2}"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn error_reports_offset() {
        let err = JsonValue::parse("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn integer_accessors_reject_fractions() {
        assert_eq!(JsonValue::Number(7.0).as_usize(), Some(7));
        assert_eq!(JsonValue::Number(7.5).as_usize(), None);
        assert_eq!(JsonValue::Number(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Number(1592969918.0).as_u64(), Some(1_592_969_918));
    }

    #[test]
    fn non_finite_renders_as_null() {
        assert_eq!(format_f64(f64::NAN), "null");
        assert_eq!(format_f64(f64::INFINITY), "null");
    }

    #[test]
    fn control_characters_escape() {
        let v = JsonValue::String("a\u{1}b".into());
        assert_eq!(v.render(), "\"a\\u0001b\"");
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }
}
