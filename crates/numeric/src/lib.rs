//! Numeric substrate for the `snoop-mva` model suite.
//!
//! This crate provides the numerical machinery that the analytic models and
//! the detailed comparator models are built on:
//!
//! * [`fixed_point`] — a damped fixed-point iteration framework with
//!   convergence tracking and early divergence detection, used to solve the
//!   cyclic mean-value equations of the paper (its Section 3.2 reports
//!   convergence within 15 iterations).
//! * [`fault`] — a deterministic fault-injection wrapper ([`fault::FaultyMap`])
//!   for proving that solvers built on [`fixed_point`] fail cleanly under
//!   NaN, spike and stall corruption.
//! * [`exec`] — a dependency-free chunked parallel executor on scoped
//!   threads ([`exec::par_map`]), with deterministic result ordering, used
//!   by the sweep, sensitivity, simulation-replication and GTPN
//!   reachability layers.
//! * [`matrix`] / [`lu`] — dense matrices and LU decomposition with partial
//!   pivoting, used for direct steady-state solutions of small Markov chains.
//! * [`sparse`] — compressed-sparse-row matrices for the reachability-graph
//!   Markov chains produced by the GTPN engine.
//! * [`markov`] — steady-state solvers for discrete- and continuous-time
//!   Markov chains (direct for small chains, iterative for large ones).
//! * [`stats`] — streaming sample statistics, Student-t confidence intervals
//!   and batch-means analysis for the discrete-event simulator.
//! * [`probe`] — a zero-dependency observability layer (span timers,
//!   counters, bounded event recorders) behind a global registry that the
//!   solver crates instrument their hot paths with; disabled by default
//!   and strictly observational, so it cannot perturb solver output.
//! * [`roots`] — bracketed scalar root finding (bisection / regula falsi),
//!   used for asymptotic (N → ∞) analyses.
//!
//! # Example
//!
//! Solving a tiny fixed point `x = cos(x)`:
//!
//! ```
//! use snoop_numeric::fixed_point::{FixedPoint, Options};
//!
//! let solution = FixedPoint::new(Options::default())
//!     .solve(vec![0.0], |x, out| out[0] = x[0].cos())
//!     .expect("converges");
//! assert!((solution.values[0] - 0.739_085).abs() < 1e-5);
//! ```

// `deny`, not `forbid`: the one audited exception is `exec` (see below).
#![deny(unsafe_code)]
#![warn(missing_docs)]
// The dense/sparse kernels use index-based loops on purpose: they mirror
// the textbook formulations and keep row/column roles explicit.
#![allow(clippy::needless_range_loop)]

// The executor's persistent worker pool erases closure lifetimes so
// borrowed `par_map` jobs can run on long-lived threads (the same trick
// rayon uses); the safety protocol is documented in `exec::pool`. Every
// other module in this crate — and every other crate in the workspace —
// remains `unsafe`-free.
#[allow(unsafe_code)]
pub mod exec;
pub mod fault;
pub mod fixed_point;
pub mod histogram;
pub mod json;
pub mod lu;
pub mod markov;
pub mod matrix;
pub mod probe;
pub mod roots;
pub mod sparse;
pub mod stats;

mod error;

pub use error::NumericError;
pub use fixed_point::{ConvergenceFailure, DivergenceReason};
