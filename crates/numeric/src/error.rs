use std::fmt;

/// Error type for the numeric substrate.
///
/// Every fallible public function in this crate returns
/// `Result<_, NumericError>`.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// An iterative method failed to converge within its iteration budget.
    ///
    /// Carries the iteration limit and the residual at the final iterate.
    NoConvergence {
        /// The iteration budget that was exhausted.
        iterations: usize,
        /// Residual (method-specific norm) at the last iterate.
        residual: f64,
    },
    /// A matrix was singular (or numerically singular) where a solve was
    /// requested.
    SingularMatrix {
        /// Pivot column at which elimination broke down.
        pivot: usize,
    },
    /// Dimensions of the operands do not agree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// An argument was outside its documented domain.
    InvalidArgument(String),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::NoConvergence { iterations, residual } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumericError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumericError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_no_convergence() {
        let e = NumericError::NoConvergence { iterations: 10, residual: 0.5 };
        assert!(e.to_string().contains("10 iterations"));
    }

    #[test]
    fn display_singular() {
        let e = NumericError::SingularMatrix { pivot: 3 };
        assert!(e.to_string().contains("pivot column 3"));
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = NumericError::DimensionMismatch { expected: 4, actual: 2 };
        assert_eq!(e.to_string(), "dimension mismatch: expected 4, got 2");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
