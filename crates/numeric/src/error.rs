use std::fmt;

use crate::fixed_point::ConvergenceFailure;

/// Error type for the numeric substrate.
///
/// Every fallible public function in this crate returns
/// `Result<_, NumericError>`.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// An iterative method failed to converge within its iteration budget.
    ///
    /// Carries the iteration limit and the residual at the final iterate.
    NoConvergence {
        /// The iteration budget that was exhausted.
        iterations: usize,
        /// Residual (method-specific norm) at the last iterate.
        residual: f64,
    },
    /// An iterative method was abandoned early because its trajectory was
    /// detectably hopeless: non-finite or overflowing iterates, residuals
    /// growing over a sliding window, a period-2/3 limit cycle, or an
    /// elapsed wall-clock deadline.
    ///
    /// Carries the full [`ConvergenceFailure`] diagnosis, including the
    /// trailing residual trajectory and the last finite iterate (a valid
    /// restart point for a damped retry).
    Diverged(ConvergenceFailure),
    /// A matrix was singular (or numerically singular) where a solve was
    /// requested.
    SingularMatrix {
        /// Pivot column at which elimination broke down.
        pivot: usize,
    },
    /// Dimensions of the operands do not agree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A statistical estimator was given fewer observations than it
    /// needs to be meaningful (e.g. a confidence interval over a single
    /// replication, whose variance is vacuously zero and would read as
    /// perfect precision).
    InsufficientSamples {
        /// Minimum number of observations the estimator requires.
        required: usize,
        /// Number of observations actually supplied.
        actual: usize,
    },
    /// An argument was outside its documented domain.
    InvalidArgument(String),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::NoConvergence { iterations, residual } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericError::Diverged(failure) => {
                write!(f, "iteration abandoned: {failure}")
            }
            NumericError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumericError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumericError::InsufficientSamples { required, actual } => write!(
                f,
                "insufficient samples: estimator needs at least {required} observations, got {actual}"
            ),
            NumericError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_no_convergence() {
        let e = NumericError::NoConvergence { iterations: 10, residual: 0.5 };
        assert!(e.to_string().contains("10 iterations"));
    }

    #[test]
    fn display_diverged() {
        let e = NumericError::Diverged(ConvergenceFailure {
            reason: crate::fixed_point::DivergenceReason::LimitCycle { period: 2 },
            iterations: 7,
            residual: 1.0,
            residual_trajectory: vec![1.0; 7],
            last_finite: vec![0.0],
        });
        let text = e.to_string();
        assert!(text.contains("period-2 limit cycle"), "{text}");
        assert!(text.contains("7 iterations"), "{text}");
    }

    #[test]
    fn display_singular() {
        let e = NumericError::SingularMatrix { pivot: 3 };
        assert!(e.to_string().contains("pivot column 3"));
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = NumericError::DimensionMismatch { expected: 4, actual: 2 };
        assert_eq!(e.to_string(), "dimension mismatch: expected 4, got 2");
    }

    #[test]
    fn display_insufficient_samples() {
        let e = NumericError::InsufficientSamples { required: 2, actual: 1 };
        assert_eq!(
            e.to_string(),
            "insufficient samples: estimator needs at least 2 observations, got 1"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
