//! Streaming histograms and quantile estimates.
//!
//! The discrete-event simulator reports mean waiting times to compare with
//! the MVA's Eq. (5); distributions (tail quantiles of the bus wait, the
//! spread of per-processor response times) need a compact streaming
//! summary. [`Histogram`] uses fixed-width bins over a configured range
//! with overflow/underflow tracking — simple, allocation-free per sample,
//! and exact for the deterministic-ish cycle counts this suite produces.

use crate::NumericError;

/// A fixed-width-bin streaming histogram.
///
/// # Example
///
/// ```
/// use snoop_numeric::histogram::Histogram;
///
/// # fn main() -> Result<(), snoop_numeric::NumericError> {
/// let mut h = Histogram::new(0.0, 10.0, 20)?;
/// for x in [1.0, 2.0, 2.5, 3.0, 9.5] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert!((h.quantile(0.5)? - 2.5).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `bins` equal bins.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `low >= high`, the
    /// bounds are non-finite, or `bins == 0`.
    // `!(low < high)` deliberately rejects NaN bounds.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self, NumericError> {
        if !(low < high) || !low.is_finite() || !high.is_finite() {
            return Err(NumericError::InvalidArgument(format!(
                "invalid histogram range [{low}, {high})"
            )));
        }
        if bins == 0 {
            return Err(NumericError::InvalidArgument("need at least one bin".into()));
        }
        Ok(Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        })
    }

    /// Records a sample. Out-of-range samples land in the underflow or
    /// overflow counters and are excluded from [`count`](Self::count),
    /// [`mean`](Self::mean) and [`quantile`](Self::quantile) — a stray
    /// sample far outside the range must not skew the in-range summary.
    pub fn record(&mut self, x: f64) {
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            self.count += 1;
            self.sum += x;
            let width = (self.high - self.low) / self.bins.len() as f64;
            let idx = (((x - self.low) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Samples recorded within `[low, high)`.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// All samples ever recorded, including under- and overflow.
    pub fn total_count(&self) -> u64 {
        self.count + self.underflow + self.overflow
    }

    /// Mean of the in-range samples; out-of-range samples are excluded
    /// (see [`underflow`](Self::underflow) / [`overflow`](Self::overflow)).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the **in-range** samples,
    /// linearly interpolated within the containing bin. Under- and
    /// overflow samples are excluded — their exact values are unknown,
    /// so folding them onto the range edges would bias the estimate.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `q` is outside
    /// `[0, 1]`, and [`NumericError::InsufficientSamples`] if the
    /// histogram holds no in-range samples.
    pub fn quantile(&self, q: f64) -> Result<f64, NumericError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(NumericError::InvalidArgument(format!("quantile {q} not in [0, 1]")));
        }
        if self.count == 0 {
            return Err(NumericError::InsufficientSamples { required: 1, actual: 0 });
        }
        let target = q * self.count as f64;
        let mut seen = 0.0;
        let width = (self.high - self.low) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = seen + c as f64;
            if target <= next && c > 0 {
                let frac = (target - seen) / c as f64;
                return Ok(self.low + (i as f64 + frac) * width);
            }
            seen = next;
        }
        Ok(self.high)
    }

    /// Renders a compact ASCII bar chart (one line per non-empty bin).
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let bin_width = (self.high - self.low) / self.bins.len() as f64;
        if self.underflow > 0 {
            let _ = writeln!(out, "{:>10} {:>8}  (underflow)", "< low", self.underflow);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat((c as f64 / max as f64 * width as f64).ceil() as usize);
            let _ = writeln!(
                out,
                "{:>10.2} {:>8}  {bar}",
                self.low + (i as f64 + 0.5) * bin_width,
                c
            );
        }
        if self.overflow > 0 {
            let _ = writeln!(out, "{:>10} {:>8}  (overflow)", ">= high", self.overflow);
        }
        out
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend([0.5, 1.5, 1.6, 9.99]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert!((h.mean() - (0.5 + 1.5 + 1.6 + 9.99) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-1.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 0);
        assert_eq!(h.total_count(), 2);
    }

    #[test]
    fn out_of_range_excluded_from_mean_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        let mean = h.mean();
        let median = h.quantile(0.5).unwrap();
        // These used to drag the mean to ±∞-ish values and shift every
        // quantile by treating the strays as sitting on the range edges.
        h.record(-1.0e6);
        h.record(1.0e6);
        assert_eq!(h.mean(), mean);
        assert_eq!(h.quantile(0.5).unwrap(), median);
        assert_eq!(h.count(), 10);
        assert_eq!(h.total_count(), 12);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn quantile_needs_in_range_samples() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-1.0);
        h.record(2.0);
        assert_eq!(
            h.quantile(0.5),
            Err(NumericError::InsufficientSamples { required: 1, actual: 0 })
        );
    }

    #[test]
    fn quantiles_of_uniform_grid() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.quantile(0.5).unwrap() - 50.0).abs() < 1.5);
        assert!((h.quantile(0.9).unwrap() - 90.0).abs() < 1.5);
        assert!((h.quantile(0.0).unwrap() - 0.0).abs() < 1.5);
        assert!((h.quantile(1.0).unwrap() - 100.0).abs() < 1.5);
    }

    #[test]
    fn quantile_validation() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert!(h.quantile(0.5).is_err()); // empty
        let mut h = h;
        h.record(0.5);
        assert!(h.quantile(-0.1).is_err());
        assert!(h.quantile(1.1).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn render_shows_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend([0.5, 0.6, 1.5, -1.0, 5.0]);
        let r = h.render(20);
        assert!(r.contains('#'));
        assert!(r.contains("underflow"));
        assert!(r.contains("overflow"));
    }

    #[test]
    fn exact_upper_bound_is_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        h.record(1.0);
        assert_eq!(h.overflow(), 1);
    }
}
