//! LU decomposition with partial pivoting.
//!
//! Used for the direct steady-state solution of small embedded Markov chains
//! (GTPN reachability graphs for 1–4 processor configurations) and for
//! general dense linear solves in tests.

use crate::matrix::Matrix;
use crate::NumericError;

/// An LU factorization `P·A = L·U` of a square matrix, with partial
/// pivoting.
///
/// # Example
///
/// ```
/// use snoop_numeric::matrix::Matrix;
/// use snoop_numeric::lu::Lu;
///
/// # fn main() -> Result<(), snoop_numeric::NumericError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

impl Lu {
    /// Pivot threshold below which the matrix is declared singular.
    const SINGULARITY_EPS: f64 = 1e-13;

    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for non-square input and
    /// [`NumericError::SingularMatrix`] if a pivot is (numerically) zero.
    pub fn factor(a: &Matrix) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch { expected: a.rows(), actual: a.cols() });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = a.max_abs().max(1.0);

        for col in 0..n {
            // Partial pivoting: pick the largest magnitude entry in the column.
            let mut pivot_row = col;
            let mut pivot_val = m[(col, col)].abs();
            for r in col + 1..n {
                let v = m[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= Self::SINGULARITY_EPS * scale {
                return Err(NumericError::SingularMatrix { pivot: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = m[(col, c)];
                    m[(col, c)] = m[(pivot_row, c)];
                    m[(pivot_row, c)] = tmp;
                }
                perm.swap(col, pivot_row);
                perm_sign = -perm_sign;
            }

            let pivot = m[(col, col)];
            for r in col + 1..n {
                let factor = m[(r, col)] / pivot;
                m[(r, col)] = factor;
                for c in col + 1..n {
                    let sub = factor * m[(col, c)];
                    m[(r, c)] -= sub;
                }
            }
        }

        Ok(Lu { factors: m, perm, perm_sign })
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b` has the wrong
    /// length.
    // Index-based loops mirror the textbook substitution kernels.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let n = self.factors.rows();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: b.len() });
        }

        // Apply permutation, then forward-substitute L (unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back-substitute U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc / self.factors[(i, i)];
        }
        Ok(x)
    }

    /// The determinant of the factored matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.factors.rows();
        self.perm_sign * (0..n).map(|i| self.factors[(i, i)]).product::<f64>()
    }
}

/// Convenience wrapper: solves `A·x = b` in one call.
///
/// # Errors
///
/// Propagates the errors of [`Lu::factor`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericError> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .unwrap()
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_3x3() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ])
        .unwrap();
        let b = [8.0, -11.0, -3.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(NumericError::SingularMatrix { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(NumericError::DimensionMismatch { .. })));
    }

    #[test]
    fn determinant_of_permutation() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.determinant() - -1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_identity_scaled() {
        let mut a = Matrix::identity(3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.determinant() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn random_ish_system_small_residual() {
        // A fixed but non-trivial 5x5 system.
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.3, 0.0, 1.0],
            vec![1.0, 5.0, 1.0, 0.2, 0.0],
            vec![0.3, 1.0, 6.0, 1.0, 0.1],
            vec![0.0, 0.2, 1.0, 7.0, 1.0],
            vec![1.0, 0.0, 0.1, 1.0, 8.0],
        ])
        .unwrap();
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }
}
