//! Sample statistics for simulation output analysis.
//!
//! The discrete-event simulator produces speedup and utilization estimates
//! whose sampling error must be quantified before they can referee the MVA
//! model ("within 3%" claims need error bars). This module provides:
//!
//! * [`RunningStats`] — Welford's streaming mean/variance,
//! * [`confidence_interval`] — Student-t confidence half-widths,
//! * [`BatchMeans`] — the classic batch-means method for steady-state
//!   simulation output with autocorrelated observations.

use crate::NumericError;

/// Streaming mean and variance via Welford's algorithm.
///
/// # Example
///
/// ```
/// use snoop_numeric::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n - 1` denominator); 0 with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let combined_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = combined_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// Two-sided Student-t critical value `t_{df, 1 - alpha/2}`.
///
/// Exact table values for small degrees of freedom at the usual confidence
/// levels, with a Cornish-Fisher-style normal correction beyond the table.
/// Supported `alpha` values are 0.10, 0.05 and 0.01; other values fall back
/// to the normal quantile (adequate for df ≳ 30).
pub fn t_critical(df: u64, alpha: f64) -> f64 {
    const TABLE_95: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    const TABLE_90: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782,
        1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
        1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ];
    const TABLE_99: [f64; 30] = [
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055,
        3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
        2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
    ];

    if df == 0 {
        return f64::INFINITY;
    }
    let (table, z): (&[f64; 30], f64) = if (alpha - 0.05).abs() < 1e-9 {
        (&TABLE_95, 1.959_964)
    } else if (alpha - 0.10).abs() < 1e-9 {
        (&TABLE_90, 1.644_854)
    } else if (alpha - 0.01).abs() < 1e-9 {
        (&TABLE_99, 2.575_829)
    } else {
        // Normal approximation for unsupported levels.
        return normal_quantile(1.0 - alpha / 2.0);
    };
    if df <= 30 {
        table[(df - 1) as usize]
    } else {
        // Asymptotic expansion t ≈ z + (z + z^3)/(4 df).
        z + (z + z.powi(3)) / (4.0 * df as f64)
    }
}

/// Standard normal quantile via the Acklam rational approximation
/// (|relative error| < 1.15e-9 over (0, 1)).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal quantile needs p in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low() && x <= self.high()
    }

    /// Half-width as a fraction of the mean (relative precision); infinite
    /// for a zero mean.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Student-t confidence interval for the mean of the accumulated sample.
///
/// # Errors
///
/// Returns [`NumericError::InsufficientSamples`] with fewer than two
/// observations (the sample variance is vacuously zero there, so a
/// zero-width interval would masquerade as perfect precision), and
/// [`NumericError::InvalidArgument`] for a confidence level outside
/// `(0, 1)`.
pub fn confidence_interval(
    stats: &RunningStats,
    level: f64,
) -> Result<ConfidenceInterval, NumericError> {
    if stats.count() < 2 {
        return Err(NumericError::InsufficientSamples {
            required: 2,
            actual: stats.count() as usize,
        });
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(NumericError::InvalidArgument(format!(
            "confidence level must lie in (0, 1), got {level}"
        )));
    }
    let df = stats.count() - 1;
    let t = t_critical(df, 1.0 - level);
    let half_width = t * stats.sample_std_dev() / (stats.count() as f64).sqrt();
    Ok(ConfidenceInterval { mean: stats.mean(), half_width, level })
}

/// Batch-means estimator for autocorrelated steady-state output.
///
/// Observations are grouped into fixed-size batches; batch means are treated
/// as (approximately) independent samples.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current: RunningStats,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans { batch_size, current: RunningStats::new(), batch_means: Vec::new() }
    }

    /// Adds an observation, closing a batch when it fills.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() as usize == self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current = RunningStats::new();
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Grand mean over completed batches; 0 when no batch has completed.
    pub fn mean(&self) -> f64 {
        self.batch_means.iter().copied().collect::<RunningStats>().mean()
    }

    /// Confidence interval over the batch means.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InsufficientSamples`] with fewer than two
    /// completed batches.
    pub fn confidence_interval(&self, level: f64) -> Result<ConfidenceInterval, NumericError> {
        let stats: RunningStats = self.batch_means.iter().copied().collect();
        confidence_interval(&stats, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_and_variance() {
        let s: RunningStats = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.mean(), 3.0);
        assert!((s.sample_variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let b: RunningStats = [10.0, 20.0].into_iter().collect();
        a.merge(&b);
        let all: RunningStats = [1.0, 2.0, 3.0, 10.0, 20.0].into_iter().collect();
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn t_table_values() {
        assert!((t_critical(1, 0.05) - 12.706).abs() < 1e-9);
        assert!((t_critical(10, 0.05) - 2.228).abs() < 1e-9);
        assert!((t_critical(30, 0.01) - 2.750).abs() < 1e-9);
        // Large df approaches the normal quantile.
        assert!((t_critical(10_000, 0.05) - 1.96).abs() < 1e-3);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
        // Tail region exercises the rational tail branch.
        assert!((normal_quantile(0.001) + 3.090_232).abs() < 1e-4);
    }

    #[test]
    fn confidence_interval_basic() {
        let s: RunningStats = [10.0, 12.0, 9.0, 11.0, 13.0, 10.0, 11.0, 12.0].into_iter().collect();
        let ci = confidence_interval(&s, 0.95).unwrap();
        assert!(ci.contains(s.mean()));
        assert!(ci.half_width > 0.0);
        assert!(ci.low() < ci.high());
    }

    #[test]
    fn confidence_interval_needs_two() {
        let s: RunningStats = [1.0].into_iter().collect();
        // A single replication must yield a typed error, not the
        // zero-width "perfectly precise" interval it used to produce.
        assert_eq!(
            confidence_interval(&s, 0.95),
            Err(NumericError::InsufficientSamples { required: 2, actual: 1 })
        );
    }

    #[test]
    fn confidence_interval_rejects_bad_level() {
        let s: RunningStats = [1.0, 2.0].into_iter().collect();
        assert!(confidence_interval(&s, 1.5).is_err());
    }

    #[test]
    fn batch_means_grouping() {
        let mut bm = BatchMeans::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            bm.push(x);
        }
        assert_eq!(bm.batches(), 2); // the trailing 7.0 is in an open batch
        assert!((bm.mean() - 3.5).abs() < 1e-12); // (2 + 5) / 2
        assert!(bm.confidence_interval(0.95).is_ok());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn batch_means_zero_size_panics() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn relative_half_width() {
        let ci = ConfidenceInterval { mean: 10.0, half_width: 0.5, level: 0.95 };
        assert!((ci.relative_half_width() - 0.05).abs() < 1e-12);
        let zero = ConfidenceInterval { mean: 0.0, half_width: 0.5, level: 0.95 };
        assert!(zero.relative_half_width().is_infinite());
    }
}
