//! Steady-state solvers for Markov chains.
//!
//! The GTPN engine reduces a timed Petri net to a discrete-time Markov chain
//! over its tangible markings; the performance measures of the detailed
//! model are then time-weighted averages under that chain's stationary
//! distribution. Two solution paths are provided:
//!
//! * a **direct** solve (dense LU on the balance equations) for small chains,
//!   mirroring the exact solution used by the GTPN tool of \[VeHo86\], and
//! * an **iterative** power-method solve on the sparse transition matrix for
//!   chains too large to factor densely — this is what makes the detailed
//!   model's cost blow up with system size, the very point of the paper.

use crate::lu;
use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;
use crate::NumericError;

/// Verifies that `p` is row-stochastic to within `tol`.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] naming the offending row.
pub fn check_stochastic(p: &CsrMatrix, tol: f64) -> Result<(), NumericError> {
    if p.rows() != p.cols() {
        return Err(NumericError::DimensionMismatch { expected: p.rows(), actual: p.cols() });
    }
    for (row, sum) in p.row_sums().iter().enumerate() {
        if (sum - 1.0).abs() > tol {
            return Err(NumericError::InvalidArgument(format!(
                "row {row} of transition matrix sums to {sum}, not 1"
            )));
        }
    }
    Ok(())
}

/// Solves `π P = π, Σ π = 1` directly via dense LU.
///
/// Replaces the last balance equation with the normalization constraint, the
/// textbook approach for irreducible chains.
///
/// # Errors
///
/// Returns [`NumericError::SingularMatrix`] when the chain is reducible (the
/// balance system is then rank-deficient even after normalization) and
/// propagates dimension errors.
///
/// # Example
///
/// ```
/// use snoop_numeric::markov::steady_state_dense;
/// use snoop_numeric::sparse::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), snoop_numeric::NumericError> {
/// // A two-state chain: stays with prob 0.9 / 0.8.
/// let p = CsrMatrix::from_triplets(2, 2, &[
///     Triplet { row: 0, col: 0, value: 0.9 },
///     Triplet { row: 0, col: 1, value: 0.1 },
///     Triplet { row: 1, col: 0, value: 0.2 },
///     Triplet { row: 1, col: 1, value: 0.8 },
/// ])?;
/// let pi = steady_state_dense(&p)?;
/// assert!((pi[0] - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn steady_state_dense(p: &CsrMatrix) -> Result<Vec<f64>, NumericError> {
    check_stochastic(p, 1e-9)?;
    let n = p.rows();
    if n == 1 {
        return Ok(vec![1.0]);
    }

    // Build A = P^T - I with the last row replaced by all-ones (Σ π = 1).
    let mut a = Matrix::zeros(n, n);
    for r in 0..n {
        for (c, v) in p.row_entries(r) {
            a[(c, r)] += v;
        }
    }
    for i in 0..n {
        a[(i, i)] -= 1.0;
    }
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;

    let mut pi = lu::solve(&a, &b)?;
    // Clean tiny negative round-off and renormalize.
    for v in &mut pi {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
    }
    let total: f64 = pi.iter().sum();
    for v in &mut pi {
        *v /= total;
    }
    Ok(pi)
}

/// Solves `π P = π` by power iteration with uniform start.
///
/// Suitable for large sparse chains. Requires the chain to be aperiodic for
/// convergence; GTPN chains are (self-loops from deterministic holding times
/// are common), and a small uniformization shift is applied defensively.
///
/// # Errors
///
/// Returns [`NumericError::NoConvergence`] if the tolerance is not reached
/// within `max_iterations`.
pub fn steady_state_power(
    p: &CsrMatrix,
    tolerance: f64,
    max_iterations: usize,
) -> Result<Vec<f64>, NumericError> {
    check_stochastic(p, 1e-9)?;
    let n = p.rows();
    let mut pi = vec![1.0 / n as f64; n];
    // Damped update π ← α·πP + (1-α)·π removes periodicity without changing
    // the fixed point.
    const ALPHA: f64 = 0.9;

    let mut residual = f64::INFINITY;
    for iteration in 1..=max_iterations {
        let next = p.vec_mul(&pi)?;
        residual = 0.0;
        for i in 0..n {
            let updated = ALPHA * next[i] + (1.0 - ALPHA) * pi[i];
            residual = residual.max((updated - pi[i]).abs());
            pi[i] = updated;
        }
        let total: f64 = pi.iter().sum();
        for v in &mut pi {
            *v /= total;
        }
        if residual < tolerance {
            let _ = iteration;
            return Ok(pi);
        }
    }
    Err(NumericError::NoConvergence { iterations: max_iterations, residual })
}

/// Converts per-state mean holding times into time-weighted stationary
/// probabilities.
///
/// For a semi-Markov process with embedded stationary distribution `pi` and
/// mean holding time `hold[i]` in state `i`, the long-run fraction of time in
/// state `i` is `pi[i]·hold[i] / Σ_j pi[j]·hold[j]`. The GTPN performance
/// measures are computed this way.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] on length mismatch and
/// [`NumericError::InvalidArgument`] if a holding time is negative or all
/// weights vanish.
pub fn time_weighted(pi: &[f64], hold: &[f64]) -> Result<Vec<f64>, NumericError> {
    if pi.len() != hold.len() {
        return Err(NumericError::DimensionMismatch { expected: pi.len(), actual: hold.len() });
    }
    if let Some(i) = hold.iter().position(|&h| h < 0.0) {
        return Err(NumericError::InvalidArgument(format!("holding time {i} is negative")));
    }
    let weights: Vec<f64> = pi.iter().zip(hold).map(|(p, h)| p * h).collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(NumericError::InvalidArgument("all time weights are zero".into()));
    }
    Ok(weights.into_iter().map(|w| w / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplet;

    fn two_state() -> CsrMatrix {
        CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet { row: 0, col: 0, value: 0.9 },
                Triplet { row: 0, col: 1, value: 0.1 },
                Triplet { row: 1, col: 0, value: 0.2 },
                Triplet { row: 1, col: 1, value: 0.8 },
            ],
        )
        .unwrap()
    }

    /// A birth-death chain on `n` states with up-probability `p`.
    fn birth_death(n: usize, p: f64) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            if i + 1 < n {
                t.push(Triplet { row: i, col: i + 1, value: p });
            } else {
                t.push(Triplet { row: i, col: i, value: p });
            }
            if i > 0 {
                t.push(Triplet { row: i, col: i - 1, value: 1.0 - p });
            } else {
                t.push(Triplet { row: i, col: i, value: 1.0 - p });
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn dense_two_state() {
        let pi = steady_state_dense(&two_state()).unwrap();
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn power_matches_dense() {
        let p = birth_death(20, 0.4);
        let dense = steady_state_dense(&p).unwrap();
        let power = steady_state_power(&p, 1e-13, 20_000).unwrap();
        for (a, b) in dense.iter().zip(&power) {
            assert!((a - b).abs() < 1e-8, "dense {a} vs power {b}");
        }
    }

    #[test]
    fn birth_death_is_geometric() {
        // Detailed balance: pi[i+1]/pi[i] = p/(1-p).
        let p = 0.25;
        let pi = steady_state_dense(&birth_death(10, p)).unwrap();
        let ratio = p / (1.0 - p);
        for i in 0..9 {
            assert!((pi[i + 1] / pi[i] - ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn single_state_chain() {
        let p = CsrMatrix::from_triplets(1, 1, &[Triplet { row: 0, col: 0, value: 1.0 }]).unwrap();
        assert_eq!(steady_state_dense(&p).unwrap(), vec![1.0]);
    }

    #[test]
    fn non_stochastic_rejected() {
        let p = CsrMatrix::from_triplets(2, 2, &[Triplet { row: 0, col: 0, value: 0.5 }]).unwrap();
        assert!(steady_state_dense(&p).is_err());
    }

    #[test]
    fn periodic_chain_converges_with_damping() {
        // Pure swap chain is periodic; damping handles it.
        let p = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet { row: 0, col: 1, value: 1.0 },
                Triplet { row: 1, col: 0, value: 1.0 },
            ],
        )
        .unwrap();
        let pi = steady_state_power(&p, 1e-12, 10_000).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn steady_state_sums_to_one() {
        let pi = steady_state_dense(&birth_death(30, 0.45)).unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn time_weighting() {
        let pi = [0.5, 0.5];
        let hold = [1.0, 3.0];
        let tw = time_weighted(&pi, &hold).unwrap();
        assert!((tw[0] - 0.25).abs() < 1e-12);
        assert!((tw[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn time_weighting_rejects_negative_holds() {
        assert!(time_weighted(&[1.0], &[-1.0]).is_err());
    }

    #[test]
    fn time_weighting_rejects_mismatch() {
        assert!(time_weighted(&[1.0], &[1.0, 2.0]).is_err());
    }
}
