//! Steady-state solvers for Markov chains.
//!
//! The GTPN engine reduces a timed Petri net to a discrete-time Markov chain
//! over its tangible markings; the performance measures of the detailed
//! model are then time-weighted averages under that chain's stationary
//! distribution. Two solution paths are provided:
//!
//! * a **direct** solve (dense LU on the balance equations) for small chains,
//!   mirroring the exact solution used by the GTPN tool of \[VeHo86\], and
//! * an **iterative** power-method solve on the sparse transition matrix for
//!   chains too large to factor densely — this is what makes the detailed
//!   model's cost blow up with system size, the very point of the paper.

use crate::lu;
use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;
use crate::NumericError;

/// Verifies that `p` is row-stochastic to within `tol`.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] naming the offending row.
pub fn check_stochastic(p: &CsrMatrix, tol: f64) -> Result<(), NumericError> {
    if p.rows() != p.cols() {
        return Err(NumericError::DimensionMismatch { expected: p.rows(), actual: p.cols() });
    }
    for (row, sum) in p.row_sums().iter().enumerate() {
        if (sum - 1.0).abs() > tol {
            return Err(NumericError::InvalidArgument(format!(
                "row {row} of transition matrix sums to {sum}, not 1"
            )));
        }
    }
    Ok(())
}

/// Solves `π P = π, Σ π = 1` directly via dense LU.
///
/// Replaces the last balance equation with the normalization constraint, the
/// textbook approach for irreducible chains.
///
/// # Errors
///
/// Returns [`NumericError::SingularMatrix`] when the chain is reducible (the
/// balance system is then rank-deficient even after normalization) and
/// propagates dimension errors.
///
/// # Example
///
/// ```
/// use snoop_numeric::markov::steady_state_dense;
/// use snoop_numeric::sparse::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), snoop_numeric::NumericError> {
/// // A two-state chain: stays with prob 0.9 / 0.8.
/// let p = CsrMatrix::from_triplets(2, 2, &[
///     Triplet { row: 0, col: 0, value: 0.9 },
///     Triplet { row: 0, col: 1, value: 0.1 },
///     Triplet { row: 1, col: 0, value: 0.2 },
///     Triplet { row: 1, col: 1, value: 0.8 },
/// ])?;
/// let pi = steady_state_dense(&p)?;
/// assert!((pi[0] - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn steady_state_dense(p: &CsrMatrix) -> Result<Vec<f64>, NumericError> {
    let _probe_span = crate::probe::span("steady_state_dense");
    check_stochastic(p, 1e-9)?;
    let n = p.rows();
    if n == 1 {
        return Ok(vec![1.0]);
    }

    // Build A = P^T - I with the last row replaced by all-ones (Σ π = 1).
    let mut a = Matrix::zeros(n, n);
    for r in 0..n {
        for (c, v) in p.row_entries(r) {
            a[(c, r)] += v;
        }
    }
    for i in 0..n {
        a[(i, i)] -= 1.0;
    }
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;

    let mut pi = lu::solve(&a, &b)?;
    // Clean tiny negative round-off and renormalize.
    for v in &mut pi {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
    }
    let total: f64 = pi.iter().sum();
    for v in &mut pi {
        *v /= total;
    }
    Ok(pi)
}

/// Solves `π P = π` by power iteration with uniform start.
///
/// Suitable for large sparse chains. Requires the chain to be aperiodic for
/// convergence; GTPN chains are (self-loops from deterministic holding times
/// are common), and a small uniformization shift is applied defensively.
///
/// # Errors
///
/// Returns [`NumericError::NoConvergence`] if the tolerance is not reached
/// within `max_iterations`.
pub fn steady_state_power(
    p: &CsrMatrix,
    tolerance: f64,
    max_iterations: usize,
) -> Result<Vec<f64>, NumericError> {
    check_stochastic(p, 1e-9)?;
    let n = p.rows();
    let mut pi = vec![1.0 / n as f64; n];
    // Damped update π ← α·πP + (1-α)·π removes periodicity without changing
    // the fixed point.
    const ALPHA: f64 = 0.9;

    let mut residual = f64::INFINITY;
    for iteration in 1..=max_iterations {
        let next = p.vec_mul(&pi)?;
        residual = 0.0;
        for i in 0..n {
            let updated = ALPHA * next[i] + (1.0 - ALPHA) * pi[i];
            residual = residual.max((updated - pi[i]).abs());
            pi[i] = updated;
        }
        let total: f64 = pi.iter().sum();
        for v in &mut pi {
            *v /= total;
        }
        if residual < tolerance {
            let _ = iteration;
            return Ok(pi);
        }
    }
    Err(NumericError::NoConvergence { iterations: max_iterations, residual })
}

/// Options for [`steady_state_sparse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseOptions {
    /// Convergence tolerance on the per-component update residual.
    pub tolerance: f64,
    /// Iteration budget for the power method.
    pub max_iterations: usize,
    /// Chains at or below this state count are solved directly (dense LU)
    /// first; the iterative path is then only a fallback for reducible
    /// chains. `0` forces the iterative path.
    pub dense_threshold: usize,
    /// Damping factor α of the update `π ← α·πP + (1−α)·π` (removes
    /// periodicity without moving the fixed point).
    pub damping: f64,
    /// Apply componentwise Aitken Δ² acceleration every this many
    /// iterations (collapses the slow geometric tail of the second
    /// eigenvalue). `0` disables acceleration.
    pub aitken_period: usize,
    /// Largest chain the *non-convergence* dense fallback will attempt to
    /// factor (LU is O(n³); beyond this the iteration error is returned
    /// instead).
    pub dense_fallback_limit: usize,
}

impl Default for SparseOptions {
    fn default() -> Self {
        SparseOptions {
            tolerance: 1e-13,
            max_iterations: 200_000,
            dense_threshold: 512,
            damping: 0.9,
            aitken_period: 16,
            dense_fallback_limit: 2_048,
        }
    }
}

/// A solved stationary distribution with solve-path metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSolve {
    /// The stationary distribution.
    pub pi: Vec<f64>,
    /// Power-method iterations spent (0 when the direct path won).
    pub iterations: usize,
    /// Whether the returned distribution came from the dense LU path.
    pub used_dense: bool,
}

/// Solves `π P = π` on a sparse chain: direct LU for small chains,
/// Aitken-accelerated damped power iteration otherwise.
///
/// This is the production steady-state entry point for GTPN reachability
/// chains, whose transition matrices are extremely sparse (a handful of
/// successors per tangible state) and whose size is the paper's cost
/// driver. Strategy:
///
/// 1. chains with at most [`SparseOptions::dense_threshold`] states go
///    through [`steady_state_dense`] (exact, and cheap at that size);
///    a reducible chain — the LU path rejects it — falls through to 2;
/// 2. damped power iteration on the CSR matrix, started from `initial`
///    when given (a reducible chain then converges to the recurrent class
///    actually entered from that distribution), with componentwise Aitken
///    Δ² acceleration every [`SparseOptions::aitken_period`] iterations;
/// 3. if the iteration exhausts its budget, one dense LU attempt is made
///    as a last resort (bounded by [`SparseOptions::dense_fallback_limit`]).
///
/// The solve is single-threaded and fully deterministic: the same matrix
/// and options produce bit-identical distributions on every run.
///
/// # Errors
///
/// Returns [`NumericError::NoConvergence`] when both the iterative and
/// fallback paths fail, and propagates stochasticity/dimension errors.
pub fn steady_state_sparse(
    p: &CsrMatrix,
    initial: Option<&[f64]>,
    options: &SparseOptions,
) -> Result<SparseSolve, NumericError> {
    // Observational only; see `crate::probe` — values recorded here are
    // never read back, so collection cannot change the solve.
    let _probe_span = crate::probe::span("gtpn_steady_state");
    crate::probe::counter_add("markov.sparse_solves", 1);
    check_stochastic(p, 1e-9)?;
    let n = p.rows();
    if n == 1 {
        return Ok(SparseSolve { pi: vec![1.0], iterations: 0, used_dense: false });
    }
    if let Some(init) = initial {
        if init.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: init.len() });
        }
    }

    if n <= options.dense_threshold {
        if let Ok(pi) = steady_state_dense(p) {
            return Ok(SparseSolve { pi, iterations: 0, used_dense: true });
        }
        // Reducible chain: the balance system is rank-deficient. Fall
        // through to the iterative path, which (from `initial`) converges
        // to the stationary distribution of the class actually reached.
    }

    // Start from the caller's distribution mixed with a tiny uniform floor
    // (avoids pathological zero patterns), or uniform when none is given.
    let mut pi = match initial {
        Some(init) => {
            let mut pi = vec![1e-9; n];
            for (slot, &mass) in pi.iter_mut().zip(init) {
                *slot += mass.max(0.0);
            }
            pi
        }
        None => vec![1.0; n],
    };
    normalize(&mut pi);

    let alpha = options.damping.clamp(f64::MIN_POSITIVE, 1.0);
    // `π^T P` on the CSR of P is a column-scatter; transposing once turns
    // every sweep into the unrolled row-gather kernel with the damped
    // update and convergence residual fused into the same pass
    // (`CsrMatrix::power_sweep_into`). The transpose is O(nnz), repaid
    // within the first few of the typically hundreds of sweeps.
    let pt = p.transpose();
    // All sweep buffers are allocated once and reused: `next` receives
    // each update, `prev1`/`prev2` hold the Aitken iterate history.
    let mut next = vec![0.0; n];
    let mut prev2: Vec<f64> = Vec::new();
    let mut prev1: Vec<f64> = Vec::new();
    let mut residual = f64::INFINITY;
    for iteration in 1..=options.max_iterations {
        if options.aitken_period > 0 {
            std::mem::swap(&mut prev2, &mut prev1);
            prev1.clear();
            prev1.extend_from_slice(&pi);
        }
        residual = pt.power_sweep_into(&pi, alpha, &mut next)?;
        std::mem::swap(&mut pi, &mut next);
        normalize(&mut pi);
        if residual < options.tolerance {
            crate::probe::counter_add("markov.power_iterations", iteration as u64);
            crate::probe::record("markov.power_residual", residual);
            return Ok(SparseSolve { pi, iterations: iteration, used_dense: false });
        }
        if options.aitken_period > 0
            && iteration % options.aitken_period == 0
            && !prev2.is_empty()
        {
            // Guarded acceleration: adopt the Δ² extrapolation only when a
            // trial update from it has a smaller residual than the current
            // iterate (componentwise Aitken can overshoot when the modes
            // are mixed, so unguarded acceleration may regress).
            if let Some(accelerated) = aitken_extrapolate(&prev2, &prev1, &pi) {
                let trial_residual = pt.power_sweep_into(&accelerated, alpha, &mut next)?;
                if trial_residual < residual {
                    std::mem::swap(&mut pi, &mut next);
                    normalize(&mut pi);
                    // Start a fresh iterate history: mixing pre- and
                    // post-jump iterates would corrupt the next Δ².
                    prev1.clear();
                    prev2.clear();
                }
            }
        }
    }

    // Last resort: one direct factorization, if the chain is small enough
    // to make O(n³) tolerable.
    crate::probe::counter_add("markov.power_iterations", options.max_iterations as u64);
    crate::probe::record("markov.power_residual", residual);
    if n <= options.dense_fallback_limit {
        if let Ok(pi) = steady_state_dense(p) {
            return Ok(SparseSolve { pi, iterations: options.max_iterations, used_dense: true });
        }
    }
    Err(NumericError::NoConvergence { iterations: options.max_iterations, residual })
}

/// Componentwise Aitken Δ² over three consecutive iterates; `None` when
/// the extrapolation is numerically unsafe (non-finite, negative mass, or
/// degenerate denominators throughout).
fn aitken_extrapolate(x0: &[f64], x1: &[f64], x2: &[f64]) -> Option<Vec<f64>> {
    let mut out = Vec::with_capacity(x2.len());
    for i in 0..x2.len() {
        let d1 = x1[i] - x0[i];
        let d2 = x2[i] - x1[i];
        let denom = d2 - d1;
        let v = if denom.abs() > 1e-300 { x2[i] - d2 * d2 / denom } else { x2[i] };
        if !v.is_finite() || v < -1e-9 {
            return None;
        }
        out.push(v.max(0.0));
    }
    let total: f64 = out.iter().sum();
    if !(total.is_finite() && total > 0.0) {
        return None;
    }
    for v in &mut out {
        *v /= total;
    }
    Some(out)
}

fn normalize(pi: &mut [f64]) {
    let total: f64 = pi.iter().sum();
    if total > 0.0 {
        for v in pi {
            *v /= total;
        }
    }
}

/// Converts per-state mean holding times into time-weighted stationary
/// probabilities.
///
/// For a semi-Markov process with embedded stationary distribution `pi` and
/// mean holding time `hold[i]` in state `i`, the long-run fraction of time in
/// state `i` is `pi[i]·hold[i] / Σ_j pi[j]·hold[j]`. The GTPN performance
/// measures are computed this way.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] on length mismatch and
/// [`NumericError::InvalidArgument`] if a holding time is negative or all
/// weights vanish.
pub fn time_weighted(pi: &[f64], hold: &[f64]) -> Result<Vec<f64>, NumericError> {
    if pi.len() != hold.len() {
        return Err(NumericError::DimensionMismatch { expected: pi.len(), actual: hold.len() });
    }
    if let Some(i) = hold.iter().position(|&h| h < 0.0) {
        return Err(NumericError::InvalidArgument(format!("holding time {i} is negative")));
    }
    let weights: Vec<f64> = pi.iter().zip(hold).map(|(p, h)| p * h).collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(NumericError::InvalidArgument("all time weights are zero".into()));
    }
    Ok(weights.into_iter().map(|w| w / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplet;

    fn two_state() -> CsrMatrix {
        CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet { row: 0, col: 0, value: 0.9 },
                Triplet { row: 0, col: 1, value: 0.1 },
                Triplet { row: 1, col: 0, value: 0.2 },
                Triplet { row: 1, col: 1, value: 0.8 },
            ],
        )
        .unwrap()
    }

    /// A birth-death chain on `n` states with up-probability `p`.
    fn birth_death(n: usize, p: f64) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            if i + 1 < n {
                t.push(Triplet { row: i, col: i + 1, value: p });
            } else {
                t.push(Triplet { row: i, col: i, value: p });
            }
            if i > 0 {
                t.push(Triplet { row: i, col: i - 1, value: 1.0 - p });
            } else {
                t.push(Triplet { row: i, col: i, value: 1.0 - p });
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn dense_two_state() {
        let pi = steady_state_dense(&two_state()).unwrap();
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn power_matches_dense() {
        let p = birth_death(20, 0.4);
        let dense = steady_state_dense(&p).unwrap();
        let power = steady_state_power(&p, 1e-13, 20_000).unwrap();
        for (a, b) in dense.iter().zip(&power) {
            assert!((a - b).abs() < 1e-8, "dense {a} vs power {b}");
        }
    }

    #[test]
    fn birth_death_is_geometric() {
        // Detailed balance: pi[i+1]/pi[i] = p/(1-p).
        let p = 0.25;
        let pi = steady_state_dense(&birth_death(10, p)).unwrap();
        let ratio = p / (1.0 - p);
        for i in 0..9 {
            assert!((pi[i + 1] / pi[i] - ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn single_state_chain() {
        let p = CsrMatrix::from_triplets(1, 1, &[Triplet { row: 0, col: 0, value: 1.0 }]).unwrap();
        assert_eq!(steady_state_dense(&p).unwrap(), vec![1.0]);
    }

    #[test]
    fn non_stochastic_rejected() {
        let p = CsrMatrix::from_triplets(2, 2, &[Triplet { row: 0, col: 0, value: 0.5 }]).unwrap();
        assert!(steady_state_dense(&p).is_err());
    }

    #[test]
    fn periodic_chain_converges_with_damping() {
        // Pure swap chain is periodic; damping handles it.
        let p = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet { row: 0, col: 1, value: 1.0 },
                Triplet { row: 1, col: 0, value: 1.0 },
            ],
        )
        .unwrap();
        let pi = steady_state_power(&p, 1e-12, 10_000).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sparse_small_chain_uses_dense_path() {
        let solve =
            steady_state_sparse(&two_state(), None, &SparseOptions::default()).unwrap();
        assert!(solve.used_dense);
        assert_eq!(solve.iterations, 0);
        assert!((solve.pi[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_large_chain_matches_dense() {
        let p = birth_death(80, 0.4);
        let dense = steady_state_dense(&p).unwrap();
        let options = SparseOptions { dense_threshold: 0, ..SparseOptions::default() };
        let solve = steady_state_sparse(&p, None, &options).unwrap();
        assert!(!solve.used_dense);
        assert!(solve.iterations > 0);
        for (a, b) in dense.iter().zip(&solve.pi) {
            assert!((a - b).abs() < 1e-9, "dense {a} vs sparse {b}");
        }
    }

    #[test]
    fn sparse_aitken_accelerates_slow_chain() {
        // Near-critical birth-death: second eigenvalue close to 1, so the
        // plain power method crawls; Aitken should cut the iteration count.
        let p = birth_death(60, 0.49);
        let base = SparseOptions { dense_threshold: 0, dense_fallback_limit: 0, ..SparseOptions::default() };
        let plain = steady_state_sparse(&p, None, &SparseOptions { aitken_period: 0, ..base })
            .unwrap();
        let accelerated = steady_state_sparse(&p, None, &base).unwrap();
        assert!(
            accelerated.iterations < plain.iterations,
            "aitken {} vs plain {}",
            accelerated.iterations,
            plain.iterations
        );
        for (a, b) in plain.pi.iter().zip(&accelerated.pi) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_respects_initial_distribution_on_reducible_chain() {
        // Two absorbing states: the stationary distribution depends on the
        // starting state, which only the iterative path can honour.
        let p = CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet { row: 0, col: 0, value: 1.0 },
                Triplet { row: 1, col: 0, value: 0.5 },
                Triplet { row: 1, col: 2, value: 0.5 },
                Triplet { row: 2, col: 2, value: 1.0 },
            ],
        )
        .unwrap();
        let options = SparseOptions { dense_fallback_limit: 0, ..SparseOptions::default() };
        let solve = steady_state_sparse(&p, Some(&[0.0, 1.0, 0.0]), &options).unwrap();
        assert!(!solve.used_dense, "reducible chain must fall through to iteration");
        assert!((solve.pi[0] - 0.5).abs() < 1e-6, "pi = {:?}", solve.pi);
        assert!((solve.pi[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sparse_periodic_chain_converges() {
        let p = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet { row: 0, col: 1, value: 1.0 },
                Triplet { row: 1, col: 0, value: 1.0 },
            ],
        )
        .unwrap();
        let options = SparseOptions { dense_threshold: 0, ..SparseOptions::default() };
        let solve = steady_state_sparse(&p, None, &options).unwrap();
        assert!((solve.pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sparse_rejects_bad_initial_length() {
        let err = steady_state_sparse(&two_state(), Some(&[1.0]), &SparseOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn sparse_dense_fallback_after_budget_exhaustion() {
        // One iteration is never enough, so the solve must come from the
        // dense fallback.
        let p = birth_death(20, 0.4);
        let options = SparseOptions {
            dense_threshold: 0,
            max_iterations: 1,
            ..SparseOptions::default()
        };
        let solve = steady_state_sparse(&p, None, &options).unwrap();
        assert!(solve.used_dense);
        let dense = steady_state_dense(&p).unwrap();
        for (a, b) in dense.iter().zip(&solve.pi) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_is_deterministic() {
        let p = birth_death(50, 0.45);
        let options = SparseOptions { dense_threshold: 0, ..SparseOptions::default() };
        let a = steady_state_sparse(&p, None, &options).unwrap();
        let b = steady_state_sparse(&p, None, &options).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn steady_state_sums_to_one() {
        let pi = steady_state_dense(&birth_death(30, 0.45)).unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn time_weighting() {
        let pi = [0.5, 0.5];
        let hold = [1.0, 3.0];
        let tw = time_weighted(&pi, &hold).unwrap();
        assert!((tw[0] - 0.25).abs() < 1e-12);
        assert!((tw[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn time_weighting_rejects_negative_holds() {
        assert!(time_weighted(&[1.0], &[-1.0]).is_err());
    }

    #[test]
    fn time_weighting_rejects_mismatch() {
        assert!(time_weighted(&[1.0], &[1.0, 2.0]).is_err());
    }
}
