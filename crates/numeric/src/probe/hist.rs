//! Fixed-memory log-linear latency histograms (the `snoop-metrics-v2`
//! `histograms` section).
//!
//! The event recorders in [`super`] keep means and extremes; queue and
//! bus disciplines differ in their *tails* (Nikolov & Lerato's
//! service-discipline comparison in PAPERS.md is exactly that
//! observation), so the hot seams — per-backend job wall time, cache
//! hit latency, fixed-point iterations, serve queue wait — record into
//! a [`Hist`] as well and the snapshot reports p50/p90/p99/p999.
//!
//! # Design
//!
//! [`Hist`] is an HDR-style **log-linear** histogram: each power-of-two
//! octave of the value range is split into [`SUB_BUCKETS`] equal linear
//! sub-buckets. Bucket selection is pure bit arithmetic on the `f64`
//! representation (exponent field picks the octave, the top mantissa
//! bits pick the sub-bucket), so it is exact, branch-light and
//! identical on every platform. With 8 sub-buckets per octave a
//! reported quantile overstates the true sample by at most one bucket
//! width — a relative error ≤ 12.5% — and is additionally clamped to
//! the exact observed `[min, max]`, which makes single-valued series
//! exact.
//!
//! The covered range is `[2^-14, 2^30)` ≈ `[6.1e-5, 1.07e9]`: six
//! decades below one millisecond and nine above, which brackets every
//! quantity the suite records (sub-microsecond cache hits through
//! multi-day sweep walls, iteration counts, queue depths). Values
//! outside the range clamp into the first/last bucket while `min`,
//! `max` and `sum` stay exact.
//!
//! # Memory bound
//!
//! 44 octaves × 8 sub-buckets × 4-byte saturating counts = 1 408 bytes
//! of buckets, plus a 280-byte exact-sum accumulator and a few scalars:
//! ~1.8 KB per series, allocated once, never resized.
//!
//! # Determinism
//!
//! A histogram's state is a pure function of the *multiset* of recorded
//! values, not their order: bucket counts and `count` are integer
//! increments, `min`/`max` are order-free, and `sum` is held in a
//! Kulisch-style fixed-point accumulator ([`ExactSum`]) that adds each
//! `f64` exactly — so 1, 2 and 8 threads racing the same values through
//! the registry snapshot to bit-identical JSON.

/// Linear sub-buckets per power-of-two octave. 8 keeps the worst-case
/// quantile overstatement at 1/8 = 12.5% of the value.
pub const SUB_BUCKETS: usize = 8;

/// Exponent of the lowest octave: the first bucket starts at `2^-14`.
pub const MIN_EXP: i32 = -14;

/// Exponent of the highest octave: the last bucket ends at `2^30`.
pub const MAX_EXP: i32 = 29;

/// Number of octaves covered.
pub const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// Total bucket count (44 × 8 = 352).
pub const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// The quantiles a snapshot reports for every histogram series.
pub const SNAPSHOT_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// An exact, order-independent accumulator for sums of non-negative
/// finite `f64`s.
///
/// A Kulisch-style fixed-point register: one wide unsigned integer
/// spanning the full `f64` exponent range (bit `0` = `2^-1074`), stored
/// as little-endian `u64` limbs. Adding a value adds its 53-bit
/// significand, shifted by its exponent, with carry propagation — an
/// *exact* integer operation, so the accumulator state (and therefore
/// the rounded [`ExactSum::to_f64`] readout) depends only on the
/// multiset of added values, never on their order or thread
/// interleaving.
///
/// Headroom: the register extends 128 bits past `2^1024`, so at least
/// `2^127` maximal additions fit before the top limb could overflow —
/// unreachable in practice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactSum {
    /// Little-endian limbs; limb `i` holds bits `64·i .. 64·i+63`,
    /// where bit 0 weighs `2^-1074`.
    limbs: [u64; Self::LIMBS],
}

impl ExactSum {
    /// (1074 + 1024 + headroom 128) bits / 64, rounded up.
    const LIMBS: usize = (1074usize + 1024 + 128).div_ceil(64);

    /// The zero sum.
    #[must_use]
    pub fn new() -> Self {
        ExactSum { limbs: [0; Self::LIMBS] }
    }

    /// Adds a non-negative finite value exactly. Negative, NaN and
    /// infinite values are ignored (the caller rejects them first).
    pub fn add(&mut self, v: f64) {
        if !(v.is_finite() && v > 0.0) {
            return;
        }
        let bits = v.to_bits();
        let exp_field = ((bits >> 52) & 0x7ff) as i64;
        let fraction = bits & ((1u64 << 52) - 1);
        // Significand and the weight (power of two) of its lowest bit.
        let (significand, low_bit) = if exp_field == 0 {
            (fraction, 0i64) // subnormal: weight 2^-1074 = bit 0
        } else {
            (fraction | (1u64 << 52), exp_field - 1)
        };
        let limb = (low_bit / 64) as usize;
        let shift = (low_bit % 64) as u32;
        // The 53-bit significand shifted left lands in at most two limbs.
        let lo = significand << shift;
        let hi = if shift == 0 { 0 } else { significand >> (64 - shift) };
        let mut carry: u64;
        let (sum, c) = self.limbs[limb].overflowing_add(lo);
        self.limbs[limb] = sum;
        carry = u64::from(c);
        let (sum, c) = self.limbs[limb + 1].overflowing_add(hi);
        let (sum, c2) = sum.overflowing_add(carry);
        self.limbs[limb + 1] = sum;
        carry = u64::from(c) + u64::from(c2);
        let mut i = limb + 2;
        while carry != 0 && i < Self::LIMBS {
            let (sum, c) = self.limbs[i].overflowing_add(carry);
            self.limbs[i] = sum;
            carry = u64::from(c);
            i += 1;
        }
    }

    /// Merges another accumulator in exactly (limb-wise add with carry).
    pub fn merge(&mut self, other: &ExactSum) {
        let mut carry = 0u64;
        for i in 0..Self::LIMBS {
            let (sum, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (sum, c2) = sum.overflowing_add(carry);
            self.limbs[i] = sum;
            carry = u64::from(c1) + u64::from(c2);
        }
    }

    /// Reads the sum back as `f64`, summing limbs from least to most
    /// significant. The readout is a pure function of the exact state,
    /// so it is deterministic; its error versus the exact sum is below
    /// `LIMBS · 2^-52` relative — far inside one printed digit.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let mut total = 0.0f64;
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                // 2^(64·i - 1074) in two factors so the intermediate
                // exponent stays in range for every limb index.
                let weight = (i as i32) * 64 - 1074;
                total += (limb as f64) * exp2i(weight);
            }
        }
        total
    }
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum::new()
    }
}

/// `2^e` for any limb-weight exponent, split to stay in `f64` range.
fn exp2i(e: i32) -> f64 {
    if e >= -1022 {
        f64::powi(2.0, e)
    } else {
        // Subnormal weights: split so each factor is representable.
        f64::powi(2.0, -600) * f64::powi(2.0, e + 600)
    }
}

/// A fixed-memory log-linear histogram of non-negative finite samples.
///
/// See the module docs for the bucket layout, memory bound and
/// determinism contract. Negative and non-finite samples are rejected
/// and counted in [`Hist::rejected`]; everything else is recorded
/// (clamped into the first/last bucket when outside `[2^-14, 2^30)`,
/// with `min`/`max`/`sum` exact regardless).
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    counts: Box<[u32; BUCKETS]>,
    count: u64,
    rejected: u64,
    sum: ExactSum,
    min: f64,
    max: f64,
}

impl Hist {
    /// An empty histogram (~1.8 KB, never grows).
    #[must_use]
    pub fn new() -> Self {
        Hist {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            rejected: 0,
            sum: ExactSum::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket a value lands in: octave from the `f64` exponent
    /// field, sub-bucket from the top mantissa bits, clamped into range.
    fn index(v: f64) -> usize {
        debug_assert!(v.is_finite() && v >= 0.0);
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < MIN_EXP {
            return 0; // includes zero and subnormals
        }
        if exp > MAX_EXP {
            return BUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_BUCKETS.trailing_zeros())) & (SUB_BUCKETS as u64 - 1))
            as usize;
        (exp - MIN_EXP) as usize * SUB_BUCKETS + sub
    }

    /// The inclusive upper bound of bucket `i`:
    /// `2^(MIN_EXP + octave) · (1 + (sub+1)/SUB_BUCKETS)`.
    ///
    /// Every bound is exact in `f64` (a power of two times a small
    /// dyadic rational), so rendered bounds are stable across runs.
    #[must_use]
    pub fn bucket_bound(i: usize) -> f64 {
        debug_assert!(i < BUCKETS);
        let octave = (i / SUB_BUCKETS) as i32;
        let sub = i % SUB_BUCKETS;
        f64::powi(2.0, MIN_EXP + octave) * (1.0 + (sub + 1) as f64 / SUB_BUCKETS as f64)
    }

    /// Records one sample. Returns `false` (and counts it in
    /// [`Hist::rejected`]) for negative or non-finite values.
    pub fn record(&mut self, v: f64) -> bool {
        if !v.is_finite() || v < 0.0 {
            self.rejected += 1;
            return false;
        }
        let i = Self::index(v);
        self.counts[i] = self.counts[i].saturating_add(1);
        self.count += 1;
        self.sum.add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        true
    }

    /// Merges another histogram in. Exact and associative: bucket
    /// counts and the sum accumulator add as integers, so
    /// `(a ∪ b) ∪ c == a ∪ (b ∪ c)` bit for bit.
    pub fn merge(&mut self, other: &Hist) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count += other.count;
        self.rejected += other.rejected;
        self.sum.merge(&other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded samples (excluding rejected ones).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Negative / non-finite samples rejected by [`Hist::record`].
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Exact sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum.to_f64()
    }

    /// Exact minimum recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.min }
    }

    /// Exact maximum recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.max }
    }

    /// Mean of all recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum() / self.count as f64 }
    }

    /// The `q`-quantile (`0 < q <= 1`): the upper bound of the bucket
    /// holding the `ceil(q·count)`-th smallest sample, clamped to the
    /// exact observed `[min, max]`. Returns 0 for an empty histogram.
    ///
    /// The clamp means a reported quantile never overstates the true
    /// sample by more than one sub-bucket width (≤ 12.5% relative) and
    /// is exact for single-valued series.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += u64::from(c);
            if cumulative >= target {
                return Self::bucket_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterates the non-empty buckets as `(upper_bound,
    /// cumulative_count)` pairs in increasing-bound order — the shape
    /// both the JSON snapshot and the Prometheus `_bucket` series need.
    /// Cumulative counts are monotone non-decreasing by construction.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut cumulative = 0u64;
        self.counts.iter().enumerate().filter_map(move |(i, &c)| {
            if c == 0 {
                None
            } else {
                cumulative += u64::from(c);
                Some((Self::bucket_bound(i), cumulative))
            }
        })
    }
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sum_is_order_independent_and_exact_for_awkward_values() {
        // 1e-9 + 1e9 repeatedly, both orders: a naive f64 running sum
        // gives different last bits depending on order; ExactSum cannot.
        let values = [1e-9, 1e9, 3.141_592_653_589_793e-3, 1e-9, 7.25e8];
        let mut forward = ExactSum::new();
        for &v in &values {
            forward.add(v);
        }
        let mut reverse = ExactSum::new();
        for &v in values.iter().rev() {
            reverse.add(v);
        }
        assert_eq!(forward, reverse);
        assert_eq!(forward.to_f64().to_bits(), reverse.to_f64().to_bits());
        // Exactly representable sums read back exactly.
        let mut s = ExactSum::new();
        for _ in 0..1000 {
            s.add(0.25);
        }
        assert_eq!(s.to_f64(), 250.0);
        // Subnormals participate without panicking.
        let mut s = ExactSum::new();
        s.add(f64::MIN_POSITIVE / 4.0);
        s.add(f64::MIN_POSITIVE / 4.0);
        assert_eq!(s.to_f64(), f64::MIN_POSITIVE / 2.0);
    }

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        for i in 0..BUCKETS {
            let bound = Hist::bucket_bound(i);
            assert!(bound.is_finite() && bound > 0.0);
            if i > 0 {
                assert!(bound > Hist::bucket_bound(i - 1), "bounds must increase");
            }
            // A value just below the bound lands in bucket i or earlier;
            // the bound itself belongs to the *next* bucket (bounds are
            // the exclusive upper edges of the bit-level layout, except
            // at the clamped top).
            let inside = bound * (1.0 - 1e-12);
            assert!(Hist::index(inside) <= i, "bucket {i}: {inside} escaped upward");
        }
        assert_eq!(Hist::index(0.0), 0);
        assert_eq!(Hist::index(1e-300), 0);
        assert_eq!(Hist::index(1e300), BUCKETS - 1);
        // 1.0 = 2^0 · (1 + 0/8): first sub-bucket of the zero octave.
        assert_eq!(Hist::index(1.0), (0 - MIN_EXP) as usize * SUB_BUCKETS);
    }

    #[test]
    fn quantiles_are_within_one_bucket_of_exact() {
        let mut h = Hist::new();
        let mut samples: Vec<f64> = Vec::new();
        // A deterministic spread over five decades.
        let mut x = 0.001_f64;
        for i in 0..5000 {
            let v = x * (1.0 + (i % 97) as f64 / 97.0);
            samples.push(v);
            h.record(v);
            x *= 1.001;
        }
        samples.sort_by(f64::total_cmp);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = samples[((q * samples.len() as f64).ceil() as usize - 1).min(4999)];
            let approx = h.quantile(q);
            assert!(
                approx >= exact * (1.0 - 1e-12) && approx <= exact * 1.125 + 1e-12,
                "q={q}: exact {exact}, approx {approx}"
            );
        }
    }

    #[test]
    fn single_valued_and_empty_histograms_are_exact() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!((h.min(), h.max(), h.sum(), h.mean()), (0.0, 0.0, 0.0, 0.0));

        let mut h = Hist::new();
        for _ in 0..100 {
            h.record(3.7);
        }
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 3.7, "single-valued p{q} must be exact");
        }
        assert_eq!(h.sum(), 370.0);
    }

    #[test]
    fn rejects_negative_and_non_finite() {
        let mut h = Hist::new();
        assert!(!h.record(-1.0));
        assert!(!h.record(f64::NAN));
        assert!(!h.record(f64::INFINITY));
        assert!(h.record(0.0));
        assert_eq!(h.rejected(), 3);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn merge_is_associative_and_matches_direct_recording() {
        let chunks: [&[f64]; 3] =
            [&[0.001, 5.0, 5.0, 123.0], &[0.25, 0.25, 9e8], &[1e-9, 42.0]];
        let hist_of = |values: &[f64]| {
            let mut h = Hist::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let [a, b, c] = chunks.map(hist_of);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");

        let all: Vec<f64> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(left, hist_of(&all), "merge must equal direct recording");
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let mut h = Hist::new();
        for i in 0..1000 {
            h.record(0.1 + (i % 50) as f64);
        }
        let buckets: Vec<(f64, u64)> = h.cumulative_buckets().collect();
        assert!(!buckets.is_empty());
        let mut last_bound = 0.0;
        let mut last_cum = 0;
        for &(bound, cum) in &buckets {
            assert!(bound > last_bound, "bounds must increase");
            assert!(cum > last_cum, "cumulative counts must increase");
            last_bound = bound;
            last_cum = cum;
        }
        assert_eq!(last_cum, h.count());
    }
}
