//! Timeline tracing: bounded per-thread event buffers drained into
//! Chrome trace-event JSON (`chrome://tracing` / Perfetto compatible).
//!
//! Where the parent [`probe`](super) module aggregates (span *totals* by
//! path), this module keeps the *timeline*: every traced span becomes a
//! begin/end (`"B"`/`"E"`) event pair with a run-epoch-relative
//! timestamp, a stable per-thread id and optional key/value args, so a
//! batch run can be opened in Perfetto and inspected wall-clock-first
//! ("where does the time go *inside* this engine batch?").
//!
//! Design constraints, matching the parent module:
//!
//! * **Strictly observational** — nothing read from the trace ever feeds
//!   back into a solver; `tests/determinism.rs` proves solver output is
//!   bit-identical at 1/2/8 threads with tracing enabled.
//! * **Disabled by default** — every instrumentation call is one relaxed
//!   atomic load when tracing is off; argument strings are only built
//!   when tracing is on ([`span_with`] takes a closure).
//! * **Bounded** — each thread buffers at most [`THREAD_CAPACITY`]
//!   events. A span that would overflow the buffer is dropped *whole*
//!   (begin and end together, counted in [`Trace::dropped`]), so the
//!   drained timeline always has matched `B`/`E` pairs.
//!
//! Every thread's buffer is registered in a global registry the moment
//! the thread first records, so [`drain`] collects from *all* threads —
//! including persistent [`crate::exec`] pool workers that park between
//! jobs and never exit, and threads whose TLS destructors have not run
//! yet. Drain only after parallel work has joined; a thread still
//! *inside* a span at drain time would contribute an unmatched begin.
//!
//! # Example
//!
//! ```
//! use snoop_numeric::probe::trace;
//!
//! let session = trace::session();
//! {
//!     let _outer = trace::span("solve");
//!     let _inner = trace::span_with("iterate", || vec![("n", "10".to_string())]);
//! }
//! let trace = trace::drain();
//! drop(session);
//! assert_eq!(trace.events.len(), 4); // two B/E pairs
//! assert!(trace.to_chrome_json().contains("\"traceEvents\""));
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use super::json_escape;

/// Identifier of the JSON layout emitted by [`Trace::to_chrome_json`]
/// (carried in the document's `otherData`; the event layout itself is
/// the standard Chrome trace-event format).
pub const SCHEMA: &str = "snoop-trace-v1";

/// Maximum number of events (begin + end each count as one) a single
/// thread buffers; spans beyond the bound are dropped whole and counted.
pub const THREAD_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Every thread's shared event buffer, registered on first record.
/// Holding strong references keeps an exited thread's not-yet-drained
/// events reachable; [`drain`]/[`reset`] prune entries whose thread has
/// exited (registry is the sole owner) once they are empty.
static REGISTRY: Mutex<Vec<Arc<Mutex<Vec<RawEvent>>>>> = Mutex::new(Vec::new());
/// The instant timestamps are measured from (set when a session starts).
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);
/// Spans dropped because a thread buffer was full.
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Next per-thread id (small, stable within a process run).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Serializes whole enable → run → drain sessions; see [`session`].
static SESSION: Mutex<()> = Mutex::new(());

/// One buffered begin or end event. Timestamps stay absolute
/// ([`Instant`]) until drain time, when they become epoch-relative.
#[derive(Debug)]
struct RawEvent {
    name: &'static str,
    phase: char,
    at: Instant,
    tid: u64,
    args: Vec<(&'static str, String)>,
}

struct LocalBuf {
    tid: u64,
    /// This thread's events. Shared with [`REGISTRY`] so [`drain`] can
    /// collect without waiting for TLS destructors: `thread::scope` can
    /// return (and a drain run) before a finished thread's TLS has been
    /// torn down, and persistent pool workers never exit at all.
    events: Arc<Mutex<Vec<RawEvent>>>,
    /// Spans currently open on this thread (each has a pending `E`).
    open: usize,
}

impl LocalBuf {
    fn new() -> Self {
        let events = Arc::new(Mutex::new(Vec::new()));
        registry().push(Arc::clone(&events));
        LocalBuf { tid: NEXT_TID.fetch_add(1, Ordering::Relaxed), events, open: 0 }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

fn registry() -> MutexGuard<'static, Vec<Arc<Mutex<Vec<RawEvent>>>>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Takes every buffered event out of every registered thread buffer and
/// drops the buffers of exited threads (strong count 1: the registry is
/// the sole remaining owner) so the registry stays bounded by the number
/// of *live* recording threads.
fn collect_registered() -> Vec<RawEvent> {
    let mut reg = registry();
    let mut all = Vec::new();
    reg.retain(|buf| {
        all.append(&mut lock(buf));
        Arc::strong_count(buf) > 1
    });
    all
}

/// Returns whether trace collection is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns trace collection on (process-wide) and restarts the run epoch.
pub fn enable() {
    *EPOCH.lock().unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns trace collection off (process-wide).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears every thread's buffer, the calling thread's open-span count
/// and the dropped count.
pub fn reset() {
    LOCAL.with(|l| l.borrow_mut().open = 0);
    drop(collect_registered());
    DROPPED.store(0, Ordering::Relaxed);
}

/// An exclusive trace-collection session: [`reset`] + [`enable`] on
/// creation, [`disable`] on drop. Holding it holds a process-wide lock
/// so concurrent sessions cannot reset or disable each other mid-run.
#[derive(Debug)]
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for Session {
    fn drop(&mut self) {
        disable();
    }
}

/// Starts an exclusive trace-collection session; see [`Session`].
#[must_use]
pub fn session() -> Session {
    let guard = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    enable();
    Session { _guard: guard }
}

/// A scoped timeline span: records a `B` event on creation (via
/// [`span`] / [`span_with`]) and the matching `E` event on drop.
#[derive(Debug)]
#[must_use = "a trace span records its end event when dropped"]
pub struct TraceSpan {
    /// `Some` only when the begin event was actually buffered (tracing
    /// on and the thread buffer had room), so `B`/`E` always pair up.
    recorded: Option<&'static str>,
    /// Args attached after creation; emitted on the `E` event (Perfetto
    /// merges begin and end args for display).
    late_args: Vec<(&'static str, String)>,
}

impl TraceSpan {
    /// Attaches an argument that becomes known only while the span is
    /// running (e.g. a cache-lookup outcome); it is emitted on the end
    /// event. No-op on an inert span.
    pub fn arg(&mut self, key: &'static str, value: String) {
        if self.recorded.is_some() {
            self.late_args.push((key, value));
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(name) = self.recorded.take() else {
            return;
        };
        let at = Instant::now();
        LOCAL.with(|l| {
            let mut local = l.borrow_mut();
            let tid = local.tid;
            // The slot was reserved when the begin event was admitted.
            lock(&local.events).push(RawEvent {
                name,
                phase: 'E',
                at,
                tid,
                args: std::mem::take(&mut self.late_args),
            });
            local.open = local.open.saturating_sub(1);
        });
    }
}

/// Opens a named timeline span with no args.
pub fn span(name: &'static str) -> TraceSpan {
    span_with(name, Vec::new)
}

/// Opens a named timeline span whose begin event carries the args built
/// by `make_args`. The closure only runs when tracing is enabled, so
/// argument formatting costs nothing in normal runs.
pub fn span_with<F>(name: &'static str, make_args: F) -> TraceSpan
where
    F: FnOnce() -> Vec<(&'static str, String)>,
{
    if !enabled() {
        return TraceSpan { recorded: None, late_args: Vec::new() };
    }
    let recorded = LOCAL.with(|l| {
        let mut local = l.borrow_mut();
        let tid = local.tid;
        let open = local.open;
        let mut events = lock(&local.events);
        // Admit the span only if both its B and the pending E's of every
        // open span (including this one) still fit the bound.
        if events.len() + open + 2 > THREAD_CAPACITY {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        events.push(RawEvent { name, phase: 'B', at: Instant::now(), tid, args: make_args() });
        drop(events);
        local.open += 1;
        true
    });
    TraceSpan { recorded: recorded.then_some(name), late_args: Vec::new() }
}

/// One drained timeline event, epoch-relative and ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name.
    pub name: String,
    /// `'B'` (begin) or `'E'` (end).
    pub phase: char,
    /// Nanoseconds since the session epoch.
    pub ts_ns: u128,
    /// Stable per-thread id (small integers, assigned on first use).
    pub tid: u64,
    /// Key/value args (begin: creation args; end: late args).
    pub args: Vec<(String, String)>,
}

/// A drained timeline: every completed span's `B`/`E` pair, sorted by
/// timestamp (ties keep per-thread order), plus the dropped-span count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events sorted by `ts_ns`; per-thread relative order is preserved.
    pub events: Vec<TraceEvent>,
    /// Spans dropped whole because a thread buffer was full.
    pub dropped: u64,
}

/// Collects every thread's buffered events — live threads (including
/// parked pool workers) and exited ones alike — and returns the merged,
/// time-sorted timeline. Call after parallel work has joined; all
/// buffers are left empty.
#[must_use]
pub fn drain() -> Trace {
    LOCAL.with(|l| l.borrow_mut().open = 0);
    let raw = collect_registered();
    let epoch = *EPOCH.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(epoch) = epoch else {
        return Trace::default();
    };
    let mut events: Vec<TraceEvent> = raw
        .into_iter()
        .map(|e| TraceEvent {
            name: e.name.to_string(),
            phase: e.phase,
            ts_ns: e.at.saturating_duration_since(epoch).as_nanos(),
            tid: e.tid,
            args: e.args.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
        })
        .collect();
    // Stable by-timestamp sort: a thread's own events carry monotone
    // timestamps, so per-thread (and therefore B/E nesting) order
    // survives; cross-thread ties keep flush order.
    events.sort_by_key(|e| e.ts_ns);
    Trace { events, dropped: DROPPED.load(Ordering::Relaxed) }
}

impl Trace {
    /// Renders the timeline as a Chrome trace-event JSON document
    /// (object form: `{"traceEvents": [...], ...}`), loadable in
    /// `chrome://tracing` and Perfetto. Timestamps are microseconds
    /// with nanosecond precision; args values are strings.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut json = String::from("{\n  \"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let comma = if i + 1 < self.events.len() { "," } else { "" };
            let ts_us = e.ts_ns as f64 / 1e3;
            let mut args = String::new();
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    args.push_str(", ");
                }
                let _ = write!(args, "\"{}\": \"{}\"", json_escape(k), json_escape(v));
            }
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"cat\": \"snoop\", \"ph\": \"{}\", \
                 \"ts\": {ts_us:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{{args}}}}}{comma}",
                json_escape(&e.name),
                e.phase,
                e.tid,
            );
        }
        json.push_str("  ],\n  \"displayTimeUnit\": \"ms\",\n");
        let _ = writeln!(
            json,
            "  \"otherData\": {{\"schema\": \"{SCHEMA}\", \"dropped_spans\": {}}}",
            self.dropped
        );
        json.push_str("}\n");
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    /// Asserts every `B` has a matching `E` per thread and timestamps
    /// never decrease.
    fn check_invariants(trace: &Trace) {
        let mut last_ts = 0u128;
        let mut stacks: std::collections::HashMap<u64, Vec<&str>> =
            std::collections::HashMap::new();
        for e in &trace.events {
            assert!(e.ts_ns >= last_ts, "timestamps must be monotone");
            last_ts = e.ts_ns;
            let stack = stacks.entry(e.tid).or_default();
            match e.phase {
                'B' => stack.push(&e.name),
                'E' => assert_eq!(stack.pop(), Some(e.name.as_str()), "unmatched E"),
                other => panic!("unexpected phase {other:?}"),
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "thread {tid} left dangling B events: {stack:?}");
        }
    }

    #[test]
    fn spans_produce_matched_sorted_pairs() {
        let _session = session();
        {
            let _outer = span("trace_test_outer");
            let _inner = span_with("trace_test_inner", || {
                vec![("scenario", "deadbeef".to_string())]
            });
        }
        let trace = drain();
        let ours: Vec<_> =
            trace.events.iter().filter(|e| e.name.starts_with("trace_test")).collect();
        assert_eq!(ours.len(), 4);
        check_invariants(&Trace {
            events: ours.iter().map(|e| (*e).clone()).collect(),
            dropped: 0,
        });
        let inner_b = ours
            .iter()
            .find(|e| e.name == "trace_test_inner" && e.phase == 'B')
            .unwrap();
        assert_eq!(inner_b.args, vec![("scenario".to_string(), "deadbeef".to_string())]);
    }

    #[test]
    fn late_args_land_on_the_end_event() {
        let _session = session();
        {
            let mut s = span("trace_test_late");
            s.arg("cache", "hit".to_string());
        }
        let trace = drain();
        let end = trace
            .events
            .iter()
            .find(|e| e.name == "trace_test_late" && e.phase == 'E')
            .unwrap();
        assert_eq!(end.args, vec![("cache".to_string(), "hit".to_string())]);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _session = session();
        disable();
        {
            let mut s = span("trace_test_disabled");
            s.arg("k", "v".to_string());
        }
        let trace = drain();
        assert!(trace.events.iter().all(|e| e.name != "trace_test_disabled"));
    }

    #[test]
    fn worker_thread_events_are_flushed_and_merged() {
        let _session = session();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _s = span("trace_test_worker");
                });
            }
        });
        {
            let _s = span("trace_test_main");
        }
        let trace = drain();
        let workers =
            trace.events.iter().filter(|e| e.name == "trace_test_worker").count();
        assert_eq!(workers, 8, "4 worker B/E pairs");
        let tids: std::collections::HashSet<u64> = trace
            .events
            .iter()
            .filter(|e| e.name == "trace_test_worker")
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids.len(), 4, "each worker gets its own tid");
        check_invariants(&Trace {
            events: trace
                .events
                .iter()
                .filter(|e| e.name.starts_with("trace_test"))
                .cloned()
                .collect(),
            dropped: 0,
        });
    }

    #[test]
    fn full_buffer_drops_spans_whole() {
        let _session = session();
        // One open outer span + as many complete inner spans as fit.
        let outer = span("trace_test_fill_outer");
        for _ in 0..THREAD_CAPACITY {
            let _s = span("trace_test_fill");
        }
        drop(outer);
        let trace = drain();
        assert!(trace.dropped > 0, "overflow must be counted");
        check_invariants(&trace);
        assert!(trace.events.len() <= THREAD_CAPACITY);
    }

    #[test]
    fn unwinding_spans_still_pair_up() {
        let _session = session();
        let result = std::panic::catch_unwind(|| {
            let _outer = span("trace_test_panic_outer");
            let _inner = span("trace_test_panic_inner");
            panic!("boom");
        });
        assert!(result.is_err());
        {
            let _after = span("trace_test_panic_after");
        }
        let trace = drain();
        let ours = Trace {
            events: trace
                .events
                .iter()
                .filter(|e| e.name.starts_with("trace_test_panic"))
                .cloned()
                .collect(),
            dropped: 0,
        };
        assert_eq!(ours.events.len(), 6, "all three spans closed");
        check_invariants(&ours);
    }

    #[test]
    fn chrome_json_is_valid_and_carries_schema() {
        let _session = session();
        {
            let _s = span_with("trace_test_json\nname", || {
                vec![("key\twith tab", "value \"quoted\"".to_string())]
            });
        }
        let trace = drain();
        let json = trace.to_chrome_json();
        let doc = JsonValue::parse(&json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        assert!(!events.is_empty());
        for e in events {
            assert!(e.get("name").and_then(JsonValue::as_str).is_some());
            let ph = e.get("ph").and_then(JsonValue::as_str).unwrap();
            assert!(ph == "B" || ph == "E", "{ph}");
            assert!(e.get("ts").and_then(JsonValue::as_f64).is_some());
            assert!(e.get("tid").and_then(JsonValue::as_f64).is_some());
        }
        assert_eq!(
            doc.get("otherData").and_then(|o| o.get("schema")).and_then(JsonValue::as_str),
            Some(SCHEMA)
        );
    }

    #[test]
    fn empty_session_drains_to_an_empty_valid_document() {
        let _session = session();
        let trace = drain();
        // Concurrent instrumented tests may have contributed events, but a
        // fresh drain right after must at least produce a valid document.
        let json = trace.to_chrome_json();
        assert!(JsonValue::parse(&json).is_ok(), "{json}");
    }
}
