//! Compressed-sparse-row matrices.
//!
//! The reachability graph of a GTPN grows combinatorially with the number of
//! processors, and its transition-probability matrix is extremely sparse
//! (each tangible state reaches only a handful of successors). This module
//! provides the CSR representation and the products needed by the iterative
//! steady-state solvers in [`crate::markov`].

use crate::NumericError;

/// A coordinate-format entry used while assembling a sparse matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Value; duplicate `(row, col)` entries are summed.
    pub value: f64,
}

/// A compressed-sparse-row matrix.
///
/// # Example
///
/// ```
/// use snoop_numeric::sparse::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), snoop_numeric::NumericError> {
/// let m = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[
///         Triplet { row: 0, col: 1, value: 1.0 },
///         Triplet { row: 1, col: 0, value: 0.5 },
///         Triplet { row: 1, col: 1, value: 0.5 },
///     ],
/// )?;
/// assert_eq!(m.vec_mul(&[1.0, 0.0])?, vec![0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    /// Non-zero values, parallel to `col_idx`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from coordinate triplets. Duplicates are
    /// summed; explicit zeros are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if either dimension is zero
    /// and [`NumericError::DimensionMismatch`] if a triplet is out of bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, NumericError> {
        if rows == 0 || cols == 0 {
            return Err(NumericError::InvalidArgument(
                "sparse matrix dimensions must be positive".into(),
            ));
        }
        for t in triplets {
            if t.row >= rows {
                return Err(NumericError::DimensionMismatch { expected: rows, actual: t.row });
            }
            if t.col >= cols {
                return Err(NumericError::DimensionMismatch { expected: cols, actual: t.col });
            }
        }

        let mut sorted: Vec<&Triplet> = triplets.iter().collect();
        sorted.sort_by_key(|t| (t.row, t.col));

        // Merge duplicates into (row, col, value) runs, then lay out CSR.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for t in sorted {
            match merged.last_mut() {
                Some((r, c, v)) if *r == t.row && *c == t.col => *v += t.value,
                _ => merged.push((t.row, t.col, t.value)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }

        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Assembles a CSR matrix directly from per-row adjacency lists —
    /// `rows[r]` holds the `(col, value)` entries of row `r` in any order.
    ///
    /// This is the fast path for reachability-graph transition matrices,
    /// whose edges are already grouped by source state: no global triplet
    /// sort, no intermediate allocation proportional to a re-sorted copy.
    /// Within each row, entries are sorted by column, duplicates summed,
    /// and explicit zeros dropped (same normal form as
    /// [`CsrMatrix::from_triplets`]).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if either dimension is zero
    /// and [`NumericError::DimensionMismatch`] if a column is out of bounds.
    pub fn from_adjacency(
        cols: usize,
        rows: &[Vec<(usize, f64)>],
    ) -> Result<Self, NumericError> {
        if rows.is_empty() || cols == 0 {
            return Err(NumericError::InvalidArgument(
                "sparse matrix dimensions must be positive".into(),
            ));
        }
        let nnz_bound: usize = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::with_capacity(nnz_bound);
        let mut values = Vec::with_capacity(nnz_bound);
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for row in rows {
            for &(c, _) in row {
                if c >= cols {
                    return Err(NumericError::DimensionMismatch { expected: cols, actual: c });
                }
            }
            scratch.clear();
            scratch.extend_from_slice(row);
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                i += 1;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix { rows: rows.len(), cols, row_ptr, col_idx, values })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the non-zero entries of row `r` as `(col, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[span.clone()].iter().copied().zip(self.values[span].iter().copied())
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product `self * x` written into a caller-owned
    /// buffer — the allocation-free form iterative solvers call once per
    /// sweep.
    ///
    /// The row accumulation is unrolled by four with independent
    /// accumulators (autovectorizable); the reassociation is fixed by
    /// construction — `(a0 + a2) + (a1 + a3)` over lanes, in-order tail —
    /// so results are bit-identical across runs, threads and platforms
    /// with the same FP semantics.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != cols`
    /// or `out.len() != rows`.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch { expected: self.cols, actual: x.len() });
        }
        if out.len() != self.rows {
            return Err(NumericError::DimensionMismatch { expected: self.rows, actual: out.len() });
        }
        for r in 0..self.rows {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            out[r] = dot_gather(&self.col_idx[span.clone()], &self.values[span], x);
        }
        Ok(())
    }

    /// One fused sweep of the damped power iteration
    /// `out = α·(self·x) + (1−α)·x`, returning the max-norm residual
    /// `max_i |out[i] − x[i]|` computed in the same pass.
    ///
    /// `self` is expected to be the *transpose* of a row-stochastic
    /// matrix, so the product is the row-gather form of `x^T P` — the
    /// unrolled [`CsrMatrix::mul_vec_into`] kernel — and the damped
    /// update plus convergence residual fold into the same cache-resident
    /// traversal instead of two extra passes over `x` and `out`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] unless the matrix is
    /// square with `x.len() == out.len() == rows`.
    pub fn power_sweep_into(
        &self,
        x: &[f64],
        alpha: f64,
        out: &mut [f64],
    ) -> Result<f64, NumericError> {
        if self.cols != self.rows {
            return Err(NumericError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch { expected: self.cols, actual: x.len() });
        }
        if out.len() != self.rows {
            return Err(NumericError::DimensionMismatch { expected: self.rows, actual: out.len() });
        }
        let beta = 1.0 - alpha;
        let mut residual = 0.0_f64;
        for r in 0..self.rows {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            let acc = dot_gather(&self.col_idx[span.clone()], &self.values[span], x);
            let updated = alpha * acc + beta * x[r];
            residual = residual.max((updated - x[r]).abs());
            out[r] = updated;
        }
        Ok(residual)
    }

    /// The transposed matrix in the same CSR normal form (each row's
    /// columns sorted ascending).
    ///
    /// Power iteration computes `π^T P` every sweep; on `P` that is a
    /// column-scatter with data-dependent writes. Transposing once up
    /// front turns every subsequent sweep into the row-gather form the
    /// unrolled kernel wants. Cost: one counting sort over the non-zeros.
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.values.len();
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr[..self.cols].to_vec();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        // Scanning source rows in ascending order keeps each transposed
        // row's columns sorted — the CSR normal form — for free.
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let dst = cursor[c];
                cursor[c] += 1;
                col_idx[dst] = r;
                values[dst] = v;
            }
        }
        CsrMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }

    /// Vector-matrix product `x^T * self`, the workhorse of power iteration
    /// on row-stochastic matrices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.rows {
            return Err(NumericError::DimensionMismatch { expected: self.rows, actual: x.len() });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row_entries(r) {
                out[c] += xr * v;
            }
        }
        Ok(out)
    }

    /// Sum of each row's entries; for a stochastic matrix these are all 1.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row_entries(r).map(|(_, v)| v).sum()).collect()
    }

    /// Converts to a dense [`crate::matrix::Matrix`]. Intended for small
    /// matrices (direct solves, tests).
    pub fn to_dense(&self) -> crate::matrix::Matrix {
        let mut m = crate::matrix::Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m[(r, c)] += v;
            }
        }
        m
    }
}

/// Sparse gather dot product `Σ values[k] · x[cols[k]]`, unrolled by four
/// with independent accumulators so the loads pipeline and the compiler
/// can vectorize. The combine order `(a0 + a2) + (a1 + a3)` and the
/// in-order tail are fixed, making the reassociation deterministic.
#[inline]
fn dot_gather(cols: &[usize], values: &[f64], x: &[f64]) -> f64 {
    let len = values.len();
    let mut k = 0;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
    while k + 4 <= len {
        a0 += values[k] * x[cols[k]];
        a1 += values[k + 1] * x[cols[k + 1]];
        a2 += values[k + 2] * x[cols[k + 2]];
        a3 += values[k + 3] * x[cols[k + 3]];
        k += 4;
    }
    let mut acc = (a0 + a2) + (a1 + a3);
    while k < len {
        acc += values[k] * x[cols[k]];
        k += 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet { row: 0, col: 0, value: 1.0 },
                Triplet { row: 0, col: 2, value: 2.0 },
                Triplet { row: 2, col: 1, value: 3.0 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn nnz_and_dims() {
        let m = simple();
        assert_eq!(m.nnz(), 3);
        assert_eq!((m.rows(), m.cols()), (3, 3));
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = simple();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.mul_vec(&x).unwrap(), m.to_dense().mul_vec(&x).unwrap());
    }

    #[test]
    fn vec_mul_matches_dense() {
        let m = simple();
        let x = [1.0, -1.0, 0.5];
        assert_eq!(m.vec_mul(&x).unwrap(), m.to_dense().vec_mul(&x).unwrap());
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(
            1,
            1,
            &[Triplet { row: 0, col: 0, value: 1.5 }, Triplet { row: 0, col: 0, value: 0.5 }],
        )
        .unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.mul_vec(&[1.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn explicit_zeros_dropped() {
        let m = CsrMatrix::from_triplets(2, 2, &[Triplet { row: 0, col: 1, value: 0.0 }]).unwrap();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        let err =
            CsrMatrix::from_triplets(2, 2, &[Triplet { row: 2, col: 0, value: 1.0 }]).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { .. }));
    }

    #[test]
    fn row_sums_of_stochastic_matrix() {
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet { row: 0, col: 0, value: 0.25 },
                Triplet { row: 0, col: 1, value: 0.75 },
                Triplet { row: 1, col: 0, value: 1.0 },
            ],
        )
        .unwrap();
        let sums = m.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-15);
        assert!((sums[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn empty_dimensions_rejected() {
        assert!(CsrMatrix::from_triplets(0, 1, &[]).is_err());
    }

    #[test]
    fn from_adjacency_matches_triplets() {
        let adjacency = vec![
            vec![(2, 2.0), (0, 1.0)],          // unsorted within the row
            vec![],                            // empty row
            vec![(1, 1.5), (1, 1.5), (0, 0.0)] // duplicate + explicit zero
        ];
        let direct = CsrMatrix::from_adjacency(3, &adjacency).unwrap();
        let triplets = CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet { row: 0, col: 2, value: 2.0 },
                Triplet { row: 0, col: 0, value: 1.0 },
                Triplet { row: 2, col: 1, value: 3.0 },
            ],
        )
        .unwrap();
        assert_eq!(direct, triplets);
        assert_eq!(direct.nnz(), 3);
    }

    #[test]
    fn from_adjacency_rejects_out_of_bounds_column() {
        let err = CsrMatrix::from_adjacency(2, &[vec![(2, 1.0)]]).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { expected: 2, actual: 2 }));
    }

    #[test]
    fn from_adjacency_rejects_empty() {
        assert!(CsrMatrix::from_adjacency(0, &[vec![]]).is_err());
        assert!(CsrMatrix::from_adjacency(1, &[]).is_err());
    }

    /// A dense-ish matrix whose rows exercise the unrolled kernel's main
    /// loop (≥ 4 nnz) and every tail length 0..=3.
    fn ragged(rows: usize, cols: usize) -> CsrMatrix {
        let mut triplets = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if (r * 31 + c * 17) % (r % 4 + 2) != 0 {
                    continue;
                }
                let value = ((r * cols + c) as f64).sin();
                triplets.push(Triplet { row: r, col: c, value });
            }
        }
        CsrMatrix::from_triplets(rows, cols, &triplets).unwrap()
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let m = ragged(13, 11);
        let x: Vec<f64> = (0..11).map(|i| (i as f64).cos()).collect();
        let mut out = vec![0.0; 13];
        m.mul_vec_into(&x, &mut out).unwrap();
        assert_eq!(out, m.mul_vec(&x).unwrap());
    }

    #[test]
    fn mul_vec_into_rejects_bad_buffer_lengths() {
        let m = simple();
        let mut short = vec![0.0; 2];
        assert!(m.mul_vec_into(&[1.0, 2.0, 3.0], &mut short).is_err());
        let mut out = vec![0.0; 3];
        assert!(m.mul_vec_into(&[1.0, 2.0], &mut out).is_err());
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = ragged(9, 14);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (14, 9));
        assert_eq!(t.nnz(), m.nnz());
        let dense = m.to_dense();
        let dense_t = t.to_dense();
        for r in 0..9 {
            for c in 0..14 {
                assert_eq!(dense[(r, c)], dense_t[(c, r)], "({r},{c})");
            }
        }
        // Normal form: transposing twice round-trips exactly.
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn power_sweep_fuses_update_and_residual() {
        // Row-stochastic P; sweep on P^T must reproduce the reference
        // α·(x^T P) + (1−α)·x update and its max-norm residual.
        let p = CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet { row: 0, col: 1, value: 0.75 },
                Triplet { row: 0, col: 2, value: 0.25 },
                Triplet { row: 1, col: 0, value: 1.0 },
                Triplet { row: 2, col: 0, value: 0.5 },
                Triplet { row: 2, col: 2, value: 0.5 },
            ],
        )
        .unwrap();
        let pt = p.transpose();
        let x = [0.5, 0.3, 0.2];
        let alpha = 0.9;
        let mut out = vec![0.0; 3];
        let residual = pt.power_sweep_into(&x, alpha, &mut out).unwrap();
        let product = p.vec_mul(&x).unwrap();
        let mut expected_residual = 0.0_f64;
        for i in 0..3 {
            let expected = alpha * product[i] + (1.0 - alpha) * x[i];
            assert!((out[i] - expected).abs() < 1e-15, "component {i}");
            expected_residual = expected_residual.max((expected - x[i]).abs());
        }
        assert!((residual - expected_residual).abs() < 1e-15);
    }

    #[test]
    fn power_sweep_rejects_non_square() {
        let m = CsrMatrix::from_triplets(2, 3, &[Triplet { row: 0, col: 2, value: 1.0 }]).unwrap();
        let mut out = vec![0.0; 2];
        assert!(m.power_sweep_into(&[1.0, 0.0, 0.0], 0.9, &mut out).is_err());
    }

    #[test]
    fn unsorted_triplets_are_sorted() {
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet { row: 1, col: 1, value: 4.0 },
                Triplet { row: 0, col: 0, value: 1.0 },
                Triplet { row: 1, col: 0, value: 3.0 },
                Triplet { row: 0, col: 1, value: 2.0 },
            ],
        )
        .unwrap();
        let d = m.to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(0, 1)], 2.0);
        assert_eq!(d[(1, 0)], 3.0);
        assert_eq!(d[(1, 1)], 4.0);
    }
}
