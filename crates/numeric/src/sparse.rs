//! Compressed-sparse-row matrices.
//!
//! The reachability graph of a GTPN grows combinatorially with the number of
//! processors, and its transition-probability matrix is extremely sparse
//! (each tangible state reaches only a handful of successors). This module
//! provides the CSR representation and the products needed by the iterative
//! steady-state solvers in [`crate::markov`].

use crate::NumericError;

/// A coordinate-format entry used while assembling a sparse matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Value; duplicate `(row, col)` entries are summed.
    pub value: f64,
}

/// A compressed-sparse-row matrix.
///
/// # Example
///
/// ```
/// use snoop_numeric::sparse::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), snoop_numeric::NumericError> {
/// let m = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[
///         Triplet { row: 0, col: 1, value: 1.0 },
///         Triplet { row: 1, col: 0, value: 0.5 },
///         Triplet { row: 1, col: 1, value: 0.5 },
///     ],
/// )?;
/// assert_eq!(m.vec_mul(&[1.0, 0.0])?, vec![0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    /// Non-zero values, parallel to `col_idx`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from coordinate triplets. Duplicates are
    /// summed; explicit zeros are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if either dimension is zero
    /// and [`NumericError::DimensionMismatch`] if a triplet is out of bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, NumericError> {
        if rows == 0 || cols == 0 {
            return Err(NumericError::InvalidArgument(
                "sparse matrix dimensions must be positive".into(),
            ));
        }
        for t in triplets {
            if t.row >= rows {
                return Err(NumericError::DimensionMismatch { expected: rows, actual: t.row });
            }
            if t.col >= cols {
                return Err(NumericError::DimensionMismatch { expected: cols, actual: t.col });
            }
        }

        let mut sorted: Vec<&Triplet> = triplets.iter().collect();
        sorted.sort_by_key(|t| (t.row, t.col));

        // Merge duplicates into (row, col, value) runs, then lay out CSR.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for t in sorted {
            match merged.last_mut() {
                Some((r, c, v)) if *r == t.row && *c == t.col => *v += t.value,
                _ => merged.push((t.row, t.col, t.value)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }

        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Assembles a CSR matrix directly from per-row adjacency lists —
    /// `rows[r]` holds the `(col, value)` entries of row `r` in any order.
    ///
    /// This is the fast path for reachability-graph transition matrices,
    /// whose edges are already grouped by source state: no global triplet
    /// sort, no intermediate allocation proportional to a re-sorted copy.
    /// Within each row, entries are sorted by column, duplicates summed,
    /// and explicit zeros dropped (same normal form as
    /// [`CsrMatrix::from_triplets`]).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if either dimension is zero
    /// and [`NumericError::DimensionMismatch`] if a column is out of bounds.
    pub fn from_adjacency(
        cols: usize,
        rows: &[Vec<(usize, f64)>],
    ) -> Result<Self, NumericError> {
        if rows.is_empty() || cols == 0 {
            return Err(NumericError::InvalidArgument(
                "sparse matrix dimensions must be positive".into(),
            ));
        }
        let nnz_bound: usize = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::with_capacity(nnz_bound);
        let mut values = Vec::with_capacity(nnz_bound);
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for row in rows {
            for &(c, _) in row {
                if c >= cols {
                    return Err(NumericError::DimensionMismatch { expected: cols, actual: c });
                }
            }
            scratch.clear();
            scratch.extend_from_slice(row);
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                i += 1;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix { rows: rows.len(), cols, row_ptr, col_idx, values })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the non-zero entries of row `r` as `(col, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[span.clone()].iter().copied().zip(self.values[span].iter().copied())
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch { expected: self.cols, actual: x.len() });
        }
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut acc = 0.0;
            for (c, v) in self.row_entries(r) {
                acc += v * x[c];
            }
            out[r] = acc;
        }
        Ok(out)
    }

    /// Vector-matrix product `x^T * self`, the workhorse of power iteration
    /// on row-stochastic matrices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.rows {
            return Err(NumericError::DimensionMismatch { expected: self.rows, actual: x.len() });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row_entries(r) {
                out[c] += xr * v;
            }
        }
        Ok(out)
    }

    /// Sum of each row's entries; for a stochastic matrix these are all 1.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row_entries(r).map(|(_, v)| v).sum()).collect()
    }

    /// Converts to a dense [`crate::matrix::Matrix`]. Intended for small
    /// matrices (direct solves, tests).
    pub fn to_dense(&self) -> crate::matrix::Matrix {
        let mut m = crate::matrix::Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m[(r, c)] += v;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet { row: 0, col: 0, value: 1.0 },
                Triplet { row: 0, col: 2, value: 2.0 },
                Triplet { row: 2, col: 1, value: 3.0 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn nnz_and_dims() {
        let m = simple();
        assert_eq!(m.nnz(), 3);
        assert_eq!((m.rows(), m.cols()), (3, 3));
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = simple();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.mul_vec(&x).unwrap(), m.to_dense().mul_vec(&x).unwrap());
    }

    #[test]
    fn vec_mul_matches_dense() {
        let m = simple();
        let x = [1.0, -1.0, 0.5];
        assert_eq!(m.vec_mul(&x).unwrap(), m.to_dense().vec_mul(&x).unwrap());
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(
            1,
            1,
            &[Triplet { row: 0, col: 0, value: 1.5 }, Triplet { row: 0, col: 0, value: 0.5 }],
        )
        .unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.mul_vec(&[1.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn explicit_zeros_dropped() {
        let m = CsrMatrix::from_triplets(2, 2, &[Triplet { row: 0, col: 1, value: 0.0 }]).unwrap();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        let err =
            CsrMatrix::from_triplets(2, 2, &[Triplet { row: 2, col: 0, value: 1.0 }]).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { .. }));
    }

    #[test]
    fn row_sums_of_stochastic_matrix() {
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet { row: 0, col: 0, value: 0.25 },
                Triplet { row: 0, col: 1, value: 0.75 },
                Triplet { row: 1, col: 0, value: 1.0 },
            ],
        )
        .unwrap();
        let sums = m.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-15);
        assert!((sums[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn empty_dimensions_rejected() {
        assert!(CsrMatrix::from_triplets(0, 1, &[]).is_err());
    }

    #[test]
    fn from_adjacency_matches_triplets() {
        let adjacency = vec![
            vec![(2, 2.0), (0, 1.0)],          // unsorted within the row
            vec![],                            // empty row
            vec![(1, 1.5), (1, 1.5), (0, 0.0)] // duplicate + explicit zero
        ];
        let direct = CsrMatrix::from_adjacency(3, &adjacency).unwrap();
        let triplets = CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet { row: 0, col: 2, value: 2.0 },
                Triplet { row: 0, col: 0, value: 1.0 },
                Triplet { row: 2, col: 1, value: 3.0 },
            ],
        )
        .unwrap();
        assert_eq!(direct, triplets);
        assert_eq!(direct.nnz(), 3);
    }

    #[test]
    fn from_adjacency_rejects_out_of_bounds_column() {
        let err = CsrMatrix::from_adjacency(2, &[vec![(2, 1.0)]]).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { expected: 2, actual: 2 }));
    }

    #[test]
    fn from_adjacency_rejects_empty() {
        assert!(CsrMatrix::from_adjacency(0, &[vec![]]).is_err());
        assert!(CsrMatrix::from_adjacency(1, &[]).is_err());
    }

    #[test]
    fn unsorted_triplets_are_sorted() {
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet { row: 1, col: 1, value: 4.0 },
                Triplet { row: 0, col: 0, value: 1.0 },
                Triplet { row: 1, col: 0, value: 3.0 },
                Triplet { row: 0, col: 1, value: 2.0 },
            ],
        )
        .unwrap();
        let d = m.to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(0, 1)], 2.0);
        assert_eq!(d[(1, 0)], 3.0);
        assert_eq!(d[(1, 1)], 4.0);
    }
}
