//! Property-based tests of the numeric substrate.

use proptest::prelude::*;
use snoop_numeric::histogram::Histogram;
use snoop_numeric::lu::Lu;
use snoop_numeric::matrix::Matrix;
use snoop_numeric::sparse::{CsrMatrix, Triplet};
use snoop_numeric::stats::RunningStats;

/// Strategy: a strictly diagonally dominant n×n matrix (always invertible,
/// well conditioned enough for tight residual checks).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(prop::collection::vec(-1.0f64..1.0, n), n).prop_map(move |rows| {
        let mut m = Matrix::zeros(n, n);
        for (i, row) in rows.iter().enumerate() {
            let mut off_sum = 0.0;
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    m[(i, j)] = v;
                    off_sum += v.abs();
                }
            }
            m[(i, i)] = off_sum + 1.0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LU solves diagonally dominant systems to tight residuals.
    #[test]
    fn lu_solves_dominant_systems(
        m in dominant_matrix(6),
        b in prop::collection::vec(-10.0f64..10.0, 6),
    ) {
        let lu = Lu::factor(&m).expect("dominant matrices factor");
        let x = lu.solve(&b).expect("dimension matches");
        let ax = m.mul_vec(&x).expect("dimension matches");
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-9, "residual {}", (axi - bi).abs());
        }
    }

    /// The determinant of a product is the product of determinants.
    #[test]
    fn determinant_is_multiplicative(
        a in dominant_matrix(4),
        b in dominant_matrix(4),
    ) {
        let da = Lu::factor(&a).unwrap().determinant();
        let db = Lu::factor(&b).unwrap().determinant();
        let dab = Lu::factor(&a.mul(&b).unwrap()).unwrap().determinant();
        prop_assert!(
            (dab - da * db).abs() < 1e-6 * dab.abs().max(1.0),
            "{dab} vs {}",
            da * db
        );
    }

    /// Sparse matvec agrees with the dense equivalent for arbitrary
    /// triplet soups (duplicates included).
    #[test]
    fn csr_matches_dense(
        triplets in prop::collection::vec((0usize..5, 0usize..5, -3.0f64..3.0), 0..40),
        x in prop::collection::vec(-2.0f64..2.0, 5),
    ) {
        let triplets: Vec<Triplet> = triplets
            .into_iter()
            .map(|(row, col, value)| Triplet { row, col, value })
            .collect();
        let sparse = CsrMatrix::from_triplets(5, 5, &triplets).unwrap();
        let dense = sparse.to_dense();
        let a = sparse.mul_vec(&x).unwrap();
        let b = dense.mul_vec(&x).unwrap();
        for (ai, bi) in a.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-12);
        }
        let a = sparse.vec_mul(&x).unwrap();
        let b = dense.vec_mul(&x).unwrap();
        for (ai, bi) in a.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-12);
        }
    }

    /// Merging RunningStats in any split is equivalent to a single pass.
    #[test]
    fn stats_merge_is_split_invariant(
        xs in prop::collection::vec(-100.0f64..100.0, 1..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        let whole: RunningStats = xs.iter().copied().collect();
        let mut left: RunningStats = xs[..split].iter().copied().collect();
        let right: RunningStats = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-7);
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// Histogram quantiles are monotone in q and bracket the data range.
    #[test]
    fn histogram_quantiles_are_monotone(
        xs in prop::collection::vec(0.0f64..100.0, 1..100),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 25).unwrap();
        h.extend(xs.iter().copied());
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= last - 1e-12, "quantile({q}) = {v} < {last}");
            prop_assert!((0.0..=100.0).contains(&v));
            last = v;
        }
        // The histogram mean equals the sample mean exactly (it tracks the
        // raw sum).
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-9);
    }

    /// Transposing twice is the identity; (AB)^T = B^T A^T.
    #[test]
    fn transpose_laws(a in dominant_matrix(4), b in dominant_matrix(4)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let ab_t = a.mul(&b).unwrap().transpose();
        let bt_at = b.transpose().mul(&a.transpose()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((ab_t[(i, j)] - bt_at[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
