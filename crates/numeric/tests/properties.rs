//! Property-based tests of the numeric substrate.

use proptest::prelude::*;
use snoop_numeric::fault::{Fault, FaultyMap};
use snoop_numeric::fixed_point::{DivergenceReason, FixedPoint, Options};
use snoop_numeric::histogram::Histogram;
use snoop_numeric::lu::Lu;
use snoop_numeric::matrix::Matrix;
use snoop_numeric::sparse::{CsrMatrix, Triplet};
use snoop_numeric::stats::RunningStats;
use snoop_numeric::NumericError;

/// Strategy: a strictly diagonally dominant n×n matrix (always invertible,
/// well conditioned enough for tight residual checks).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(prop::collection::vec(-1.0f64..1.0, n), n).prop_map(move |rows| {
        let mut m = Matrix::zeros(n, n);
        for (i, row) in rows.iter().enumerate() {
            let mut off_sum = 0.0;
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    m[(i, j)] = v;
                    off_sum += v.abs();
                }
            }
            m[(i, i)] = off_sum + 1.0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LU solves diagonally dominant systems to tight residuals.
    #[test]
    fn lu_solves_dominant_systems(
        m in dominant_matrix(6),
        b in prop::collection::vec(-10.0f64..10.0, 6),
    ) {
        let lu = Lu::factor(&m).expect("dominant matrices factor");
        let x = lu.solve(&b).expect("dimension matches");
        let ax = m.mul_vec(&x).expect("dimension matches");
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-9, "residual {}", (axi - bi).abs());
        }
    }

    /// The determinant of a product is the product of determinants.
    #[test]
    fn determinant_is_multiplicative(
        a in dominant_matrix(4),
        b in dominant_matrix(4),
    ) {
        let da = Lu::factor(&a).unwrap().determinant();
        let db = Lu::factor(&b).unwrap().determinant();
        let dab = Lu::factor(&a.mul(&b).unwrap()).unwrap().determinant();
        prop_assert!(
            (dab - da * db).abs() < 1e-6 * dab.abs().max(1.0),
            "{dab} vs {}",
            da * db
        );
    }

    /// Sparse matvec agrees with the dense equivalent for arbitrary
    /// triplet soups (duplicates included).
    #[test]
    fn csr_matches_dense(
        triplets in prop::collection::vec((0usize..5, 0usize..5, -3.0f64..3.0), 0..40),
        x in prop::collection::vec(-2.0f64..2.0, 5),
    ) {
        let triplets: Vec<Triplet> = triplets
            .into_iter()
            .map(|(row, col, value)| Triplet { row, col, value })
            .collect();
        let sparse = CsrMatrix::from_triplets(5, 5, &triplets).unwrap();
        let dense = sparse.to_dense();
        let a = sparse.mul_vec(&x).unwrap();
        let b = dense.mul_vec(&x).unwrap();
        for (ai, bi) in a.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-12);
        }
        let a = sparse.vec_mul(&x).unwrap();
        let b = dense.vec_mul(&x).unwrap();
        for (ai, bi) in a.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-12);
        }
    }

    /// Merging RunningStats in any split is equivalent to a single pass.
    #[test]
    fn stats_merge_is_split_invariant(
        xs in prop::collection::vec(-100.0f64..100.0, 1..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        let whole: RunningStats = xs.iter().copied().collect();
        let mut left: RunningStats = xs[..split].iter().copied().collect();
        let right: RunningStats = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-7);
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// Histogram quantiles are monotone in q and bracket the data range.
    #[test]
    fn histogram_quantiles_are_monotone(
        xs in prop::collection::vec(0.0f64..100.0, 1..100),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 25).unwrap();
        h.extend(xs.iter().copied());
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= last - 1e-12, "quantile({q}) = {v} < {last}");
            prop_assert!((0.0..=100.0).contains(&v));
            last = v;
        }
        // The histogram mean equals the sample mean exactly (it tracks the
        // raw sum).
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-9);
    }

    /// Any affine map — contractive, expansive, or oscillating — over
    /// random finite inputs either converges to finite values or returns
    /// a structured failure. It never panics and never leaks NaN/∞
    /// through `Solution::values` or `ConvergenceFailure::last_finite`.
    #[test]
    fn fixed_point_converges_or_fails_structurally(
        a in prop::collection::vec(prop::collection::vec(-1.5f64..1.5, 3), 3),
        b in prop::collection::vec(-5.0f64..5.0, 3),
        initial in prop::collection::vec(-10.0f64..10.0, 3),
        damping in 0.05f64..1.0,
        aitken_sel in 0u8..2,
    ) {
        let options = Options {
            max_iterations: 300,
            damping,
            aitken: aitken_sel == 1,
            ..Options::default()
        };
        let result = FixedPoint::new(options).solve(initial, |x, out| {
            for (out_i, row) in out.iter_mut().zip(&a) {
                *out_i = row.iter().zip(x).map(|(c, xi)| c * xi).sum::<f64>();
            }
            for (out_i, bi) in out.iter_mut().zip(&b) {
                *out_i += bi;
            }
        });
        match result {
            Ok(sol) => {
                prop_assert!(sol.values.iter().all(|v| v.is_finite()), "{:?}", sol.values);
                prop_assert!(sol.residual.is_finite() && sol.residual >= 0.0);
            }
            Err(NumericError::NoConvergence { residual, .. }) => {
                prop_assert!(residual.is_finite());
            }
            Err(NumericError::Diverged(failure)) => {
                prop_assert!(
                    failure.last_finite.iter().all(|v| v.is_finite()),
                    "{:?}",
                    failure.last_finite
                );
                prop_assert!(failure.iterations <= 300);
                prop_assert!(failure.residual_trajectory.iter().all(|r| r.is_finite()));
            }
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Pure reflections `x ← c − x` oscillate with period 2 around `c/2`
    /// from any start away from the fixed point; the limit-cycle detector
    /// must flag every one of them long before the iteration budget.
    #[test]
    fn reflection_maps_are_flagged_as_period_2(
        c in -5.0f64..5.0,
        offset in 1.0f64..10.0,
    ) {
        let result = FixedPoint::new(Options::default())
            .solve(vec![c / 2.0 + offset], |x, out| out[0] = c - x[0]);
        match result {
            Err(NumericError::Diverged(failure)) => {
                prop_assert_eq!(
                    failure.reason,
                    DivergenceReason::LimitCycle { period: 2 }
                );
                prop_assert!(failure.iterations < 50, "{}", failure.iterations);
            }
            other => prop_assert!(false, "expected limit-cycle diagnosis, got {other:?}"),
        }
    }

    /// A contraction wrecked by injected NaN, spike, and stall faults is
    /// either solved (finite values) or abandoned with a structured,
    /// finite diagnosis — the faults never escape as non-finite output.
    #[test]
    fn faulty_contraction_never_emits_non_finite(
        b in prop::collection::vec(0.5f64..4.0, 3),
        component in 0usize..3,
        call in 1usize..20,
        period in 0usize..8,
        factor in -100.0f64..100.0,
    ) {
        let base = b.clone();
        let contraction = move |x: &[f64], out: &mut [f64]| {
            out[0] = 0.4 * x[1] + base[0];
            out[1] = 0.3 * x[2] + base[1];
            out[2] = 0.2 * x[0] + base[2];
        };
        let mut faulty = FaultyMap::new(contraction)
            .with_fault(Fault::Nan { component, call })
            .with_fault(Fault::Spike { component, period, factor })
            .with_fault(Fault::Stall { component: (component + 1) % 3, from: call });
        let options = Options { max_iterations: 200, ..Options::default() };
        let result =
            FixedPoint::new(options).solve(vec![0.0; 3], |x, out| faulty.apply(x, out));
        match result {
            Ok(sol) => {
                prop_assert!(sol.values.iter().all(|v| v.is_finite()), "{:?}", sol.values);
            }
            Err(NumericError::Diverged(failure)) => {
                prop_assert!(failure.last_finite.iter().all(|v| v.is_finite()));
            }
            Err(NumericError::NoConvergence { residual, .. }) => {
                prop_assert!(residual.is_finite());
            }
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Transposing twice is the identity; (AB)^T = B^T A^T.
    #[test]
    fn transpose_laws(a in dominant_matrix(4), b in dominant_matrix(4)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let ab_t = a.mul(&b).unwrap().transpose();
        let bt_at = b.transpose().mul(&a.transpose()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((ab_t[(i, j)] - bt_at[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
