//! The `perf` subcommand: a mechanical regression gate over timing
//! files.
//!
//! `snoop perf diff <baseline> <current>` loads two timing files —
//! either `BENCH_*.json` emitted by `snoop bench` (flat objects whose
//! `*_ms` keys are stage timings and whose `*speedup*` keys are
//! parallel-efficiency ratios) or `snoop-metrics-v1`/`-v2` files
//! emitted by `--metrics-out` (span paths with `total_ms`; v2 adds one
//! `{name}/p99` tail-latency stage per histogram) — prints a per-stage
//! delta table, and fails (nonzero exit, no usage hint) when any stage
//! regressed beyond `--threshold-pct` (default 10%). Timings regress
//! upward; speedup ratios are higher-is-better and regress downward.
//! `--min-ms` floors the absolute delta that can count as a timing
//! regression, so microsecond jitter on trivial stages cannot flake a
//! CI gate (it does not apply to the dimensionless speedup fields).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use snoop_numeric::json::JsonValue;

use crate::args::ParsedArgs;
use crate::commands::Failure;

/// Dispatches `snoop perf <subcommand>`.
///
/// # Errors
///
/// Usage errors for unknown subcommands or unreadable files; a no-hint
/// [`Failure`] verdict when the gate trips.
pub fn cmd_perf(args: &ParsedArgs) -> Result<String, Failure> {
    match args.positional.first().map(String::as_str) {
        Some("diff") => cmd_perf_diff(args),
        Some(other) => {
            Err(format!("unknown perf subcommand {other:?}, expected `diff`").into())
        }
        None => Err("perf needs a subcommand: snoop perf diff <baseline> <current>"
            .to_string()
            .into()),
    }
}

fn cmd_perf_diff(args: &ParsedArgs) -> Result<String, Failure> {
    let [_, baseline_path, current_path] = args.positional.as_slice() else {
        return Err(
            "perf diff needs exactly two files: snoop perf diff <baseline> <current>"
                .to_string()
                .into(),
        );
    };
    let threshold_pct: f64 = args.flag_num("threshold-pct", 10.0)?;
    let min_ms: f64 = args.flag_num("min-ms", 0.0)?;
    if !(threshold_pct.is_finite() && threshold_pct >= 0.0) {
        return Err(format!("--threshold-pct must be finite and >= 0, got {threshold_pct}").into());
    }
    let baseline = load_stages(baseline_path)?;
    let current = load_stages(current_path)?;

    // Union of stage names, sorted (BTreeMap keys already are).
    let mut names: Vec<&String> = baseline.keys().collect();
    for name in current.keys() {
        if !baseline.contains_key(name) {
            names.push(name);
        }
    }
    names.sort();

    let width = names.iter().map(|n| n.len()).max().unwrap_or(5).max(5);
    let mut out = format!(
        "perf diff: {baseline_path} -> {current_path} (threshold {threshold_pct}%)\n"
    );
    let _ = writeln!(
        out,
        "  {:<width$}  {:>12}  {:>12}  {:>12}  {:>9}",
        "stage", "baseline ms", "current ms", "delta ms", "delta %"
    );
    let mut regressed: Vec<String> = Vec::new();
    for name in names {
        match (baseline.get(name), current.get(name)) {
            (Some(base), Some(cur)) => {
                let delta = cur - base;
                let pct = if *base > 0.0 { delta / base * 100.0 } else { 0.0 };
                // Speedup ratios are higher-is-better: they regress when
                // the ratio *drops* beyond the threshold. The `--min-ms`
                // floor is a time quantity, so it only applies to timings.
                let is_regression = if higher_is_better(name) {
                    *base > 0.0 && pct < -threshold_pct
                } else {
                    *base > 0.0 && pct > threshold_pct && delta >= min_ms
                };
                let _ = writeln!(
                    out,
                    "  {name:<width$}  {base:>12.3}  {cur:>12.3}  {delta:>+12.3}  {pct:>+8.1}%{}",
                    if is_regression { "  REGRESSED" } else { "" }
                );
                if is_regression {
                    regressed.push(name.clone());
                }
            }
            (Some(base), None) => {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  {base:>12.3}  {:>12}  {:>12}  {:>9}",
                    "-", "-", "removed"
                );
            }
            (None, Some(cur)) => {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  {:>12}  {cur:>12.3}  {:>12}  {:>9}",
                    "-", "-", "added"
                );
            }
            (None, None) => unreachable!("name came from one of the maps"),
        }
    }
    if regressed.is_empty() {
        let _ = writeln!(
            out,
            "ok: no stage regressed beyond {threshold_pct}% \
             ({} stage(s) compared)",
            baseline.keys().filter(|k| current.contains_key(*k)).count()
        );
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "perf regression: {} stage(s) beyond {threshold_pct}%: {}",
            regressed.len(),
            regressed.join(", ")
        );
        Err(Failure::verdict(out))
    }
}

/// Whether a stage's metric improves upward (speedup ratios) rather than
/// downward (timings).
///
/// Only a whole `speedup` segment of the stage's leaf name counts
/// (split on `.`, `_` and `/`), and a `*_ms` suffix always means a
/// timing: a field like `speedup_overhead_ms` is time spent *measuring*
/// speedup, and a substring match would invert the gate for it —
/// regressions would read as improvements.
fn higher_is_better(name: &str) -> bool {
    let leaf = name.rsplit('/').next().unwrap_or(name);
    if leaf.ends_with("_ms") {
        return false;
    }
    leaf.split(['.', '_']).any(|segment| segment == "speedup")
}

/// Loads the per-stage metrics of one file: `snoop-metrics-v1`/`-v2`
/// span `total_ms` keyed by path (v2 additionally contributes one
/// `{name}/p99` stage per histogram — tail latency regresses upward
/// like any timing), or any flat JSON object's finite `*_ms` timing and
/// `*speedup*` ratio fields (the `BENCH_*.json` shape).
fn load_stages(path: &str) -> Result<BTreeMap<String, f64>, Failure> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Failure::from(format!("cannot read {path}: {e}")))?;
    let doc = JsonValue::parse(&text)
        .map_err(|e| Failure::from(format!("{path}: invalid JSON: {e}")))?;
    let mut stages = BTreeMap::new();
    let schema = doc.get("schema").and_then(JsonValue::as_str);
    if schema == Some(snoop_numeric::probe::SCHEMA)
        || schema == Some(snoop_numeric::probe::SCHEMA_V1)
    {
        let spans = doc
            .get("spans")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| Failure::from(format!("{path}: metrics file has no spans")))?;
        for (span_path, span) in spans {
            if let Some(total) = span.get("total_ms").and_then(JsonValue::as_f64) {
                if total.is_finite() {
                    stages.insert(span_path.clone(), total);
                }
            }
        }
        // v2 histograms: gate on tail latency, one p99 stage per series.
        // Empty histograms (count 0) are skipped — a p99 of 0 would make
        // any later traffic read as an infinite regression.
        if let Some(hists) = doc.get("histograms").and_then(JsonValue::as_object) {
            for (name, h) in hists {
                let count = h.get("count").and_then(JsonValue::as_f64).unwrap_or(0.0);
                if count <= 0.0 {
                    continue;
                }
                if let Some(p99) = h.get("p99").and_then(JsonValue::as_f64) {
                    if p99.is_finite() {
                        stages.insert(format!("{name}/p99"), p99);
                    }
                }
            }
        }
    } else {
        let fields = doc
            .as_object()
            .ok_or_else(|| Failure::from(format!("{path}: expected a JSON object")))?;
        for (key, value) in fields {
            if key.ends_with("_ms") || higher_is_better(key) {
                if let Some(v) = value.as_f64() {
                    if v.is_finite() {
                        stages.insert(key.clone(), v);
                    }
                }
            }
        }
    }
    if stages.is_empty() {
        return Err(Failure::from(format!(
            "{path}: no timed stages found (expected snoop-metrics-v1/-v2 \
             spans or histograms, or BENCH-style `*_ms` fields)"
        )));
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tokens(tokens: &[&str]) -> Result<String, Failure> {
        crate::commands::run(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_str().unwrap().to_string()
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const BENCH_A: &str = r#"{"benchmark": "x", "threads": 2, "serial_ms": 100.0, "parallel_ms": 50.0, "bit_identical": true}"#;

    #[test]
    fn identical_inputs_pass() {
        let dir = temp_dir("snoop_perf_identical");
        let a = write(&dir, "a.json", BENCH_A);
        let b = write(&dir, "b.json", BENCH_A);
        let out = run_tokens(&["perf", "diff", &a, &b]).unwrap();
        assert!(out.contains("ok: no stage regressed"), "{out}");
        assert!(out.contains("serial_ms"), "{out}");
        assert!(out.contains("+0.0%"), "{out}");
    }

    #[test]
    fn regression_beyond_threshold_fails_without_usage_hint() {
        let dir = temp_dir("snoop_perf_regressed");
        let a = write(&dir, "a.json", BENCH_A);
        let b = write(
            &dir,
            "b.json",
            r#"{"benchmark": "x", "threads": 2, "serial_ms": 100.0, "parallel_ms": 80.0, "bit_identical": true}"#,
        );
        let err = run_tokens(&["perf", "diff", &a, &b, "--threshold-pct", "25"])
            .unwrap_err();
        assert!(!err.usage_hint, "a gate verdict is not a usage error");
        assert!(err.contains("REGRESSED"), "{err}");
        assert!(err.contains("parallel_ms"), "{err}");
        let serial_row = err
            .message
            .lines()
            .find(|l| l.trim_start().starts_with("serial_ms"))
            .unwrap();
        assert!(!serial_row.contains("REGRESSED"), "unregressed stage flagged: {err}");
        assert!(err.contains("perf regression: 1 stage(s)"), "{err}");
        // The same pair passes with a generous threshold.
        assert!(run_tokens(&["perf", "diff", &a, &b, "--threshold-pct", "80"]).is_ok());
    }

    #[test]
    fn min_ms_floors_absolute_jitter() {
        let dir = temp_dir("snoop_perf_min_ms");
        let a = write(&dir, "a.json", r#"{"tiny_ms": 0.010}"#);
        let b = write(&dir, "b.json", r#"{"tiny_ms": 0.020}"#);
        // 100% relative regression, but only 0.01 ms absolute.
        assert!(run_tokens(&["perf", "diff", &a, &b, "--threshold-pct", "10"]).is_err());
        assert!(run_tokens(&[
            "perf", "diff", &a, &b, "--threshold-pct", "10", "--min-ms", "1",
        ])
        .is_ok());
    }

    #[test]
    fn metrics_files_diff_by_span_path() {
        let dir = temp_dir("snoop_perf_metrics");
        let metrics = r#"{
  "schema": "snoop-metrics-v1",
  "spans": {
    "engine.batch": {"calls": 1, "total_ms": 10.0, "mean_ms": 10.0},
    "engine.batch/engine.mva": {"calls": 4, "total_ms": 8.0, "mean_ms": 2.0}
  },
  "counters": {},
  "events": {}
}"#;
        let a = write(&dir, "m1.json", metrics);
        let b = write(&dir, "m2.json", metrics);
        let out = run_tokens(&["perf", "diff", &a, &b]).unwrap();
        assert!(out.contains("engine.batch/engine.mva"), "{out}");
    }

    #[test]
    fn added_and_removed_stages_never_regress() {
        let dir = temp_dir("snoop_perf_added");
        let a = write(&dir, "a.json", r#"{"old_ms": 5.0, "both_ms": 1.0}"#);
        let b = write(&dir, "b.json", r#"{"new_ms": 5.0, "both_ms": 1.0}"#);
        let out = run_tokens(&["perf", "diff", &a, &b]).unwrap();
        assert!(out.contains("removed"), "{out}");
        assert!(out.contains("added"), "{out}");
    }

    #[test]
    fn speedup_fields_regress_downward_not_upward() {
        let dir = temp_dir("snoop_perf_speedup");
        let a = write(&dir, "a.json", r#"{"serial_ms": 100.0, "speedup": 2.0}"#);
        let b = write(&dir, "b.json", r#"{"serial_ms": 100.0, "speedup": 1.0}"#);
        // A 2.0 -> 1.0 speedup drop is a regression...
        let err = run_tokens(&["perf", "diff", &a, &b, "--threshold-pct", "25"]).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
        assert!(err.contains("REGRESSED"), "{err}");
        // ...that --min-ms (a time floor) does not shield...
        assert!(run_tokens(&[
            "perf", "diff", &a, &b, "--threshold-pct", "25", "--min-ms", "100",
        ])
        .is_err());
        // ...while a 1.0 -> 2.0 rise (which a lower-is-better rule would
        // flag as +100%) passes.
        assert!(run_tokens(&["perf", "diff", &b, &a, "--threshold-pct", "25"]).is_ok());
    }

    #[test]
    fn speedup_must_be_a_whole_segment_not_a_substring() {
        // `explore_speedup` is a genuine ratio: higher is better.
        assert!(higher_is_better("explore_speedup"));
        assert!(higher_is_better("speedup"));
        assert!(higher_is_better("exec.par_map_speedup"));
        // `speedup_overhead_ms` is a timing (time spent measuring the
        // speedup); the old substring match inverted the gate for it.
        assert!(!higher_is_better("speedup_overhead_ms"));
        assert!(!higher_is_better("speedups"));
        // Only the leaf of a span path decides.
        assert!(!higher_is_better("bench.speedup/setup_ms"));

        let dir = temp_dir("snoop_perf_speedup_segments");
        // A rising `*_ms` stage regresses even when it mentions speedup…
        let a = write(&dir, "a.json", r#"{"speedup_overhead_ms": 10.0, "explore_speedup": 2.0}"#);
        let b = write(&dir, "b.json", r#"{"speedup_overhead_ms": 100.0, "explore_speedup": 2.0}"#);
        let err = run_tokens(&["perf", "diff", &a, &b, "--threshold-pct", "25"]).unwrap_err();
        assert!(err.contains("REGRESSED"), "{err}");
        assert!(err.contains("speedup_overhead_ms"), "{err}");
        // …while a genuine ratio still regresses downward, not upward.
        let c = write(&dir, "c.json", r#"{"speedup_overhead_ms": 10.0, "explore_speedup": 1.0}"#);
        let err = run_tokens(&["perf", "diff", &a, &c, "--threshold-pct", "25"]).unwrap_err();
        assert!(err.contains("explore_speedup"), "{err}");
        assert!(run_tokens(&["perf", "diff", &c, &a, "--threshold-pct", "25"]).is_ok());
    }

    /// A minimal v2 metrics file: one span plus one histogram series.
    fn v2_metrics(p99: f64, count: u64) -> String {
        format!(
            r#"{{
  "schema": "snoop-metrics-v2",
  "spans": {{
    "engine.batch": {{"calls": 1, "total_ms": 10.0, "mean_ms": 10.0}}
  }},
  "counters": {{}},
  "events": {{}},
  "histograms": {{
    "serve.queue_wait_ms": {{"count": {count}, "rejected": 0, "sum": 9.0,
      "mean": 3.0, "min": 1.0, "max": {p99}, "p50": 2.0, "p90": 4.0,
      "p99": {p99}, "p999": {p99}, "buckets": [[{p99}, {count}]]}}
  }}
}}"#
        )
    }

    #[test]
    fn v2_histogram_p99_regresses_upward() {
        let dir = temp_dir("snoop_perf_hist_p99");
        let a = write(&dir, "base.json", &v2_metrics(5.0, 9));
        let b = write(&dir, "cur.json", &v2_metrics(50.0, 9));
        // A 10x p99 blow-up trips the gate (higher is worse)…
        let err = run_tokens(&["perf", "diff", &a, &b, "--threshold-pct", "25"]).unwrap_err();
        assert!(!err.usage_hint, "a gate verdict is not a usage error");
        assert!(err.contains("serve.queue_wait_ms/p99"), "{err}");
        assert!(err.contains("REGRESSED"), "{err}");
        // …an improving p99 passes…
        let out = run_tokens(&["perf", "diff", &b, &a, "--threshold-pct", "25"]).unwrap();
        assert!(out.contains("ok: no stage regressed"), "{out}");
        // …and identical files compare clean, spans included.
        let out = run_tokens(&["perf", "diff", &a, &a]).unwrap();
        assert!(out.contains("engine.batch"), "{out}");
        assert!(out.contains("serve.queue_wait_ms/p99"), "{out}");
    }

    #[test]
    fn empty_v2_histograms_contribute_no_stage() {
        let dir = temp_dir("snoop_perf_hist_empty");
        let a = write(&dir, "base.json", &v2_metrics(0.0, 0));
        let b = write(&dir, "cur.json", &v2_metrics(50.0, 9));
        // The empty-baseline series is "added", never a regression.
        let out = run_tokens(&["perf", "diff", &a, &b, "--threshold-pct", "25"]).unwrap();
        assert!(out.contains("added"), "{out}");
    }

    #[test]
    fn usage_errors_keep_the_hint() {
        assert!(run_tokens(&["perf"]).unwrap_err().usage_hint);
        assert!(run_tokens(&["perf", "bogus"]).unwrap_err().usage_hint);
        assert!(run_tokens(&["perf", "diff", "/nonexistent/a"])
            .unwrap_err()
            .usage_hint);
        let err =
            run_tokens(&["perf", "diff", "/nonexistent/a", "/nonexistent/b"]).unwrap_err();
        assert!(err.contains("/nonexistent/a"), "{err}");
    }

    #[test]
    fn files_without_timings_are_rejected() {
        let dir = temp_dir("snoop_perf_untimed");
        let a = write(&dir, "a.json", r#"{"benchmark": "x", "states": 204}"#);
        let err = run_tokens(&["perf", "diff", &a, &a]).unwrap_err();
        assert!(err.contains("no timed stages"), "{err}");
    }
}
