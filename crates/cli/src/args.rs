//! A small `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and flags.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` and bare `--switch` flags (the latter map to "true").
    flags: HashMap<String, String>,
}

impl ParsedArgs {
    /// Parses raw arguments.
    ///
    /// # Errors
    ///
    /// Returns a message for an empty command line or a flag before the
    /// subcommand.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut parsed = ParsedArgs::default();
        let mut iter = argv.iter().peekable();
        match iter.next() {
            Some(cmd) if !cmd.starts_with("--") => parsed.command = cmd.clone(),
            Some(flag) => return Err(format!("expected a subcommand, got flag {flag}")),
            None => return Err("no subcommand given".to_string()),
        }
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        iter.next().expect("peeked").clone()
                    }
                    _ => "true".to_string(),
                };
                parsed.flags.insert(key.to_string(), value);
            } else {
                parsed.positional.push(token.clone());
            }
        }
        Ok(parsed)
    }

    /// String flag with default.
    pub fn flag_str(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.flags.get(key).map(String::as_str) == Some("true")
    }

    /// Parsed numeric flag with default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value does not parse.
    pub fn flag_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value {v:?} for --{key}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_command_flags_and_positionals() {
        let a = parse(&["solve", "--n", "10", "extra", "--csv"]);
        assert_eq!(a.command, "solve");
        assert_eq!(a.positional, vec!["extra"]);
        assert_eq!(a.flag_num("n", 1usize).unwrap(), 10);
        assert!(a.switch("csv"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["solve"]);
        assert_eq!(a.flag_str("protocol", "WO"), "WO");
        assert_eq!(a.flag_num("n", 4usize).unwrap(), 4);
    }

    #[test]
    fn rejects_empty() {
        assert!(ParsedArgs::parse(&[]).is_err());
    }

    #[test]
    fn rejects_leading_flag() {
        assert!(ParsedArgs::parse(&["--n".to_string()]).is_err());
    }

    #[test]
    fn bad_number_is_reported() {
        let a = parse(&["solve", "--n", "ten"]);
        let err = a.flag_num("n", 1usize).unwrap_err();
        assert!(err.contains("--n"));
    }
}
