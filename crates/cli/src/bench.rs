//! The `bench` subcommand: machine-readable timing JSON.
//!
//! Emits four files so the perf trajectory of the suite is tracked from
//! one PR to the next:
//!
//! * `BENCH_sweep.json` — the full Figure 4.1 resilient sweep grid, serial
//!   vs. parallel, with wall time, total solver iterations, thread count
//!   and a bit-identical check.
//! * `BENCH_gtpn.json` — the Write-Once coherence GTPN: reachability
//!   expansion (serial vs. parallel frontier) and stationary-distribution
//!   timing, dense LU vs. sparse Aitken-accelerated power iteration.
//! * `BENCH_sim.json` — independent simulation replications, serial vs.
//!   parallel, with a bit-identical check.
//! * `BENCH_exec.json` — executor microbenchmark: per-item `par_map`
//!   dispatch cost against the persistent worker pool, serial vs.
//!   parallel over trivial jobs, so scheduling overhead is tracked
//!   separately from solver work.
//!
//! `--stage sweep|gtpn|sim|exec` limits a run to one stage (default
//! `all`); every emitted file carries the same run metadata, including
//! `host_parallelism` (the machine's available cores, independent of
//! `--threads`/`SNOOP_THREADS`) so CI can decide whether measured
//! speedups are meaningful on the runner that produced them.
//!
//! With `--metrics-out FILE` (handled by the dispatcher) the run also
//! emits per-stage solver metrics: because every stage above exercises
//! the instrumented paths, the file covers MVA solves, GTPN reachability,
//! GTPN steady state and sim replications in one run.
//!
//! The JSON is hand-rolled (flat objects, no escaping needed for the keys
//! and values we emit) because the workspace is offline-first and carries
//! no serde dependency.

use std::fmt::Write as _;
use std::time::Instant;

use snoop_gtpn::chain::transition_matrix;
use snoop_gtpn::models::coherence::CoherenceNet;
use snoop_gtpn::reachability::{explore, ReachabilityOptions};
use snoop_mva::resilient::ResilientOptions;
use snoop_mva::sweep::resilient_figure_4_1_family;
use snoop_numeric::exec::{hardware_parallelism, par_map, ExecOptions};
use snoop_numeric::markov::{steady_state_dense, steady_state_sparse, SparseOptions};
use snoop_numeric::probe::trace;
use snoop_protocol::ModSet;
use snoop_sim::runner::replicate_exec;
use snoop_sim::SimConfig;
use snoop_workload::derived::ModelInputs;
use snoop_workload::params::{SharingLevel, WorkloadParams};
use snoop_workload::timing::TimingModel;

use crate::args::ParsedArgs;

/// Runs the selected benchmark stages (default: all) and writes their
/// JSON files into `--out-dir`.
///
/// # Errors
///
/// Returns a user-facing message on bad flags, solver failures or
/// unwritable output files.
pub fn cmd_bench(args: &ParsedArgs) -> Result<String, String> {
    let threads: usize = args.flag_num("threads", 0)?;
    let exec = ExecOptions::with_threads(threads);
    let out_dir = args.flag_str("out-dir", ".");
    let quick = args.switch("quick");
    let stage = args.flag_str("stage", "all");
    if !matches!(stage.as_str(), "all" | "sweep" | "gtpn" | "sim" | "exec") {
        return Err(format!(
            "unknown --stage {stage:?}, expected sweep, gtpn, sim, exec or all"
        ));
    }
    let meta = run_metadata(args, exec.resolved_threads(), quick);

    let mut out = String::new();
    let mut written: Vec<String> = Vec::new();
    let stages: [(&str, StageFn); 4] = [
        ("sweep", bench_sweep),
        ("gtpn", bench_gtpn),
        ("sim", bench_sim),
        ("exec", bench_exec),
    ];
    for (name, run) in stages {
        if stage != "all" && stage != name {
            continue;
        }
        let json = run(&exec, quick, &meta, &mut out)?;
        let path = format!("{out_dir}/BENCH_{name}.json");
        std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        written.push(path);
    }
    let _ = writeln!(out, "wrote {}", written.join(" and "));
    Ok(out)
}

/// One benchmark stage: runs, appends its human summary to `out`, and
/// returns the JSON document to write.
type StageFn = fn(&ExecOptions, bool, &str, &mut String) -> Result<String, String>;

fn millis(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

/// Escapes a flag value for a JSON string literal (run ids and git shas
/// are normally plain, but a hostile value must not corrupt the file).
fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The run-metadata lines shared by the `BENCH_*.json` files: schema
/// tag, thread count, the host's actual hardware parallelism (so CI can
/// tell whether a measured speedup is meaningful — a 4-thread run on a
/// 1-core runner cannot go faster than serial), quick-mode flag and the
/// optional `--run-id` / `--git-sha` passthrough, so `snoop perf diff`
/// verdicts are attributable to a specific run.
fn run_metadata(args: &ParsedArgs, threads: usize, quick: bool) -> String {
    let mut meta = String::new();
    let _ = writeln!(meta, "  \"schema\": \"snoop-bench-v1\",");
    let _ = writeln!(meta, "  \"threads\": {threads},");
    let _ = writeln!(meta, "  \"host_parallelism\": {},", hardware_parallelism());
    let _ = writeln!(meta, "  \"quick\": {quick},");
    for key in ["run-id", "git-sha"] {
        let value = args.flag_str(key, "");
        if !value.is_empty() {
            let _ = writeln!(
                meta,
                "  \"{}\": \"{}\",",
                key.replace('-', "_"),
                json_escape(&value)
            );
        }
    }
    meta
}

/// Times the Figure 4.1 resilient sweep grid, serial vs. parallel.
fn bench_sweep(
    exec: &ExecOptions,
    quick: bool,
    meta: &str,
    out: &mut String,
) -> Result<String, String> {
    let _trace = trace::span("bench.sweep");
    let sizes: Vec<usize> = if quick {
        vec![1, 2, 4, 8]
    } else {
        (1..=20).chain([30, 50, 100]).collect()
    };
    let options = ResilientOptions::default();

    let start = Instant::now();
    let serial = {
        let _t = trace::span("bench.sweep.serial");
        resilient_figure_4_1_family(&sizes, &options, true, &ExecOptions::SERIAL)
            .map_err(|e| e.to_string())?
    };
    let serial_ms = millis(start);

    let start = Instant::now();
    let parallel = {
        let _t = trace::span("bench.sweep.parallel");
        resilient_figure_4_1_family(&sizes, &options, true, exec).map_err(|e| e.to_string())?
    };
    let parallel_ms = millis(start);

    let bit_identical = serial == parallel;
    let total_iterations: usize = serial.iter().map(|s| s.total_iterations()).sum();
    let threads = exec.resolved_threads();
    let speedup = serial_ms / parallel_ms.max(1e-9);

    let _ = writeln!(
        out,
        "sweep: {} cells x {} sizes, serial {serial_ms:.1} ms, \
         {threads}-thread {parallel_ms:.1} ms ({speedup:.2}x), bit-identical: {bit_identical}",
        serial.len(),
        sizes.len()
    );

    let mut json = String::from("{\n");
    json.push_str(meta);
    let _ = writeln!(json, "  \"benchmark\": \"figure_4_1_resilient_sweep\",");
    let _ = writeln!(json, "  \"grid_cells\": {},", serial.len());
    let _ = writeln!(json, "  \"sizes\": {},", sizes.len());
    let _ = writeln!(json, "  \"max_n\": {},", sizes.last().copied().unwrap_or(0));
    let _ = writeln!(json, "  \"total_iterations\": {total_iterations},");
    let _ = writeln!(json, "  \"serial_ms\": {serial_ms:.3},");
    let _ = writeln!(json, "  \"parallel_ms\": {parallel_ms:.3},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"bit_identical\": {bit_identical}");
    json.push_str("}\n");
    Ok(json)
}

/// Times the Write-Once coherence GTPN: parallel frontier expansion and
/// dense-vs-sparse stationary distribution.
fn bench_gtpn(
    exec: &ExecOptions,
    quick: bool,
    meta: &str,
    out: &mut String,
) -> Result<String, String> {
    let _trace = trace::span("bench.gtpn");
    // N = 3 is the largest Write-Once graph the dense LU baseline can
    // factor in bench-friendly time (its cost grows as states³); `--quick`
    // drops to N = 2.
    let n = if quick { 2 } else { 3 };
    let inputs = ModelInputs::derive_adjusted(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
        &TimingModel::default(),
    )
    .map_err(|e| e.to_string())?;
    let net = CoherenceNet::build(&inputs, n).map_err(|e| e.to_string())?;

    let serial_options = ReachabilityOptions { threads: 1, ..ReachabilityOptions::default() };
    let start = Instant::now();
    let graph = {
        let _t = trace::span("bench.gtpn.explore_serial");
        explore(&net.net, &serial_options).map_err(|e| e.to_string())?
    };
    let explore_serial_ms = millis(start);

    let threads = exec.resolved_threads();
    let parallel_options =
        ReachabilityOptions { threads: exec.threads, ..ReachabilityOptions::default() };
    let start = Instant::now();
    let graph_parallel = {
        let _t = trace::span("bench.gtpn.explore_parallel");
        explore(&net.net, &parallel_options).map_err(|e| e.to_string())?
    };
    let explore_parallel_ms = millis(start);
    let explore_identical = graph == graph_parallel;
    let explore_speedup = explore_serial_ms / explore_parallel_ms.max(1e-9);

    let p = transition_matrix(&graph).map_err(|e| e.to_string())?;
    let mut initial = vec![0.0; graph.len()];
    for &(s, prob) in &graph.initial {
        initial[s] += prob;
    }

    let start = Instant::now();
    let dense = {
        let _t = trace::span("bench.gtpn.steady_state_dense");
        steady_state_dense(&p).map_err(|e| e.to_string())?
    };
    let dense_ms = millis(start);

    // Force the iterative path (the configuration every graph above the
    // dense threshold gets) for an honest dense-vs-sparse comparison.
    let sparse_options = SparseOptions {
        dense_threshold: 0,
        dense_fallback_limit: 0,
        ..SparseOptions::default()
    };
    let start = Instant::now();
    let sparse = {
        let _t = trace::span("bench.gtpn.steady_state_sparse");
        steady_state_sparse(&p, Some(&initial), &sparse_options).map_err(|e| e.to_string())?
    };
    let sparse_ms = millis(start);

    let max_diff = dense
        .iter()
        .zip(&sparse.pi)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    let sparse_speedup = dense_ms / sparse_ms.max(1e-9);

    let _ = writeln!(
        out,
        "gtpn:  N={n} write-once, {} states, {} nnz; explore serial \
         {explore_serial_ms:.1} ms, {threads}-thread {explore_parallel_ms:.1} ms \
         ({explore_speedup:.2}x, identical: {explore_identical})",
        graph.len(),
        p.nnz()
    );
    let _ = writeln!(
        out,
        "       steady state: dense {dense_ms:.1} ms, sparse {sparse_ms:.1} ms \
         ({sparse_speedup:.1}x, {} iterations, max |dπ| {max_diff:.2e})",
        sparse.iterations
    );

    let mut json = String::from("{\n");
    json.push_str(meta);
    let _ = writeln!(json, "  \"benchmark\": \"write_once_gtpn\",");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"states\": {},", graph.len());
    let _ = writeln!(json, "  \"nnz\": {},", p.nnz());
    let _ = writeln!(json, "  \"explore_serial_ms\": {explore_serial_ms:.3},");
    let _ = writeln!(json, "  \"explore_parallel_ms\": {explore_parallel_ms:.3},");
    let _ = writeln!(json, "  \"explore_speedup\": {explore_speedup:.3},");
    let _ = writeln!(json, "  \"explore_bit_identical\": {explore_identical},");
    let _ = writeln!(json, "  \"dense_ms\": {dense_ms:.3},");
    let _ = writeln!(json, "  \"sparse_ms\": {sparse_ms:.3},");
    let _ = writeln!(json, "  \"sparse_speedup\": {sparse_speedup:.3},");
    let _ = writeln!(json, "  \"sparse_iterations\": {},", sparse.iterations);
    let _ = writeln!(json, "  \"max_pi_difference\": {max_diff:.3e}");
    json.push_str("}\n");
    Ok(json)
}

/// Times independent simulation replications, serial vs. parallel.
fn bench_sim(
    exec: &ExecOptions,
    quick: bool,
    meta: &str,
    out: &mut String,
) -> Result<String, String> {
    let _trace = trace::span("bench.sim");
    let mut config = SimConfig::for_protocol(
        8,
        WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
    );
    config.warmup_references = 500;
    config.measured_references = if quick { 3_000 } else { 10_000 };
    let replications = 4;

    let start = Instant::now();
    let serial = {
        let _t = trace::span("bench.sim.serial");
        replicate_exec(&config, replications, 0.95, &ExecOptions::SERIAL)
            .map_err(|e| e.to_string())?
    };
    let serial_ms = millis(start);

    let threads = exec.resolved_threads();
    let start = Instant::now();
    let parallel = {
        let _t = trace::span("bench.sim.parallel");
        replicate_exec(&config, replications, 0.95, exec).map_err(|e| e.to_string())?
    };
    let parallel_ms = millis(start);

    let bit_identical = serial
        .replications
        .iter()
        .zip(&parallel.replications)
        .all(|(a, b)| a == b)
        && serial.speedup.mean.to_bits() == parallel.speedup.mean.to_bits();
    let speedup = serial_ms / parallel_ms.max(1e-9);

    let _ = writeln!(
        out,
        "sim:   {replications} replications x {} refs, serial {serial_ms:.1} ms, \
         {threads}-thread {parallel_ms:.1} ms ({speedup:.2}x), bit-identical: {bit_identical}",
        config.measured_references
    );

    let mut json = String::from("{\n");
    json.push_str(meta);
    let _ = writeln!(json, "  \"benchmark\": \"sim_replications\",");
    let _ = writeln!(json, "  \"n\": {},", config.n);
    let _ = writeln!(json, "  \"replications\": {replications},");
    let _ = writeln!(json, "  \"measured_references\": {},", config.measured_references);
    let _ = writeln!(json, "  \"serial_ms\": {serial_ms:.3},");
    let _ = writeln!(json, "  \"parallel_ms\": {parallel_ms:.3},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"bit_identical\": {bit_identical}");
    json.push_str("}\n");
    Ok(json)
}

/// Microbenchmarks `par_map` dispatch against the persistent worker
/// pool: many repetitions of a map over trivial jobs, so the measured
/// cost is scheduling (chunk claiming, wakeup, result scatter), not
/// work. Reported as nanoseconds per item; the first call warms the
/// pool so thread spawning is excluded — exactly the steady state the
/// solver layers run in.
fn bench_exec(
    exec: &ExecOptions,
    quick: bool,
    meta: &str,
    out: &mut String,
) -> Result<String, String> {
    let _trace = trace::span("bench.exec");
    let items: Vec<u64> = (0..4096).collect();
    let repetitions: usize = if quick { 50 } else { 400 };
    let threads = exec.resolved_threads();
    let job = |&x: &u64| x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);

    // Anti-DCE accumulator (wrapping: the sums overflow by design).
    let fold = |mapped: Vec<u64>| mapped.iter().fold(0u64, |a, &b| a.wrapping_add(b));

    // Warm-up: the first parallel call spawns the pool's workers.
    let mut checksum: u64 = fold(par_map(&items, exec, job));

    let start = Instant::now();
    for _ in 0..repetitions {
        checksum ^= fold(par_map(&items, &ExecOptions::SERIAL, job));
    }
    let serial_ms = millis(start);

    let start = Instant::now();
    for _ in 0..repetitions {
        checksum ^= fold(par_map(&items, exec, job));
    }
    let parallel_ms = millis(start);

    let total_jobs = (repetitions * items.len()) as f64;
    let serial_ns_per_job = serial_ms * 1e6 / total_jobs;
    let parallel_ns_per_job = parallel_ms * 1e6 / total_jobs;
    // Scheduling cost the pool adds on top of the work itself. Negative
    // on multicore hosts (the work parallelizes); clamped at zero so the
    // field gates cleanly as overhead.
    let dispatch_ns_per_job = (parallel_ns_per_job - serial_ns_per_job).max(0.0);

    let _ = writeln!(
        out,
        "exec:  {} items x {repetitions} reps, serial {serial_ns_per_job:.1} ns/job, \
         {threads}-thread {parallel_ns_per_job:.1} ns/job \
         (dispatch overhead {dispatch_ns_per_job:.1} ns/job, checksum {checksum:#x})",
        items.len()
    );

    let mut json = String::from("{\n");
    json.push_str(meta);
    let _ = writeln!(json, "  \"benchmark\": \"exec_dispatch\",");
    let _ = writeln!(json, "  \"items\": {},", items.len());
    let _ = writeln!(json, "  \"repetitions\": {repetitions},");
    let _ = writeln!(json, "  \"serial_ms\": {serial_ms:.3},");
    let _ = writeln!(json, "  \"parallel_ms\": {parallel_ms:.3},");
    let _ = writeln!(json, "  \"serial_ns_per_job\": {serial_ns_per_job:.3},");
    let _ = writeln!(json, "  \"parallel_ns_per_job\": {parallel_ns_per_job:.3},");
    let _ = writeln!(json, "  \"dispatch_ns_per_job\": {dispatch_ns_per_job:.3}");
    json.push_str("}\n");
    Ok(json)
}
