//! `snoop` — command-line interface to the MVA / GTPN / simulation suite.
//!
//! ```text
//! snoop solve    --protocol WO+1 --sharing 5 --n 10
//! snoop sweep    --protocol dragon --sharing 20 --max-n 100
//! snoop table    a|b|c|util
//! snoop figure   [--csv]
//! snoop validate --n 8 [--protocol WO] [--sharing 5]
//! snoop gtpn     --n 2 [--protocol WO] [--sharing 5]
//! snoop stress   [--n 10]
//! snoop trace    --n 4 [--protocol berkeley]
//! snoop protocol [--protocol illinois]
//! snoop asymptote
//! ```

use std::process::ExitCode;

mod args;
mod bench;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("snoop: {message}");
            eprintln!("run `snoop help` for usage");
            ExitCode::FAILURE
        }
    }
}
