//! `snoop` — command-line interface to the MVA / GTPN / simulation suite.
//!
//! ```text
//! snoop solve    --protocol WO+1 --sharing 5 --n 10
//! snoop sweep    --protocol dragon --sharing 20 --max-n 100
//! snoop table    a|b|c|util
//! snoop figure   [--csv]
//! snoop validate --n 8 [--protocol WO] [--sharing 5]
//! snoop gtpn     --n 2 [--protocol WO] [--sharing 5]
//! snoop stress   [--n 10]
//! snoop trace    --n 4 [--protocol berkeley]
//! snoop protocol [--protocol illinois]
//! snoop asymptote
//! ```

use std::process::ExitCode;

mod args;
mod bench;
mod commands;
mod perf;
mod top;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            if failure.usage_hint {
                eprintln!("snoop: {}", failure.message);
                eprintln!("run `snoop help` for usage");
            } else {
                // A gate verdict (e.g. a perf regression): the full
                // report goes to stdout like a successful run's would,
                // with a one-line summary on stderr.
                print!("{}", failure.message);
                let summary = failure.message.trim_end().lines().last().unwrap_or("failed");
                eprintln!("snoop: {summary}");
            }
            ExitCode::FAILURE
        }
    }
}
