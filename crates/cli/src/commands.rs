//! Subcommand implementations. Every command returns its output as a
//! `String` so the dispatcher (and the tests) stay side-effect free.

use std::fmt::Write as _;
use std::sync::Arc;

use snoop_mva::asymptote::asymptotic;
use snoop_mva::engine::{
    self, BackendId, DiskStore, Engine, EngineResult, EvalError, EvaluationSeries, GtpnBackend,
    MvaBackend, ResilientMvaBackend, Scenario, SimBackend, StoreConfig,
};
use snoop_mva::paper::{table_4_1, TABLE_N};
use snoop_mva::report::comparison_table;
use snoop_mva::resilient::ResilientOptions;
use snoop_mva::SolverOptions;
use snoop_numeric::exec::ExecOptions;
use snoop_protocol::{ModSet, Protocol};
use snoop_sim::simulate;
use snoop_sim::trace_mode::{simulate_trace_source, TraceSimConfig};
use snoop_workload::params::{SharingLevel, WorkloadParams};

use crate::args::ParsedArgs;

const HELP: &str = "\
snoop — MVA performance models of snooping cache-consistency protocols
       (Vernon, Lazowska & Zahorjan, ISCA 1988)

usage: snoop <command> [flags]

commands:
  solve      solve the MVA model            --protocol WO+1 --sharing 5 --n 10
  sweep      speedup curve over N           --protocol dragon --sharing 20 --n 100
  table      reproduce Table 4.1            --panel a | b | c | util
  figure     reproduce Figure 4.1           --csv for machine-readable output
  eval       batch-evaluate scenarios       --scenarios FILE.json --backends mva,sim
  serve      persistent evaluation daemon   --listen 127.0.0.1:7077 [--store DIR]
  top        live daemon dashboard          --url http://127.0.0.1:7077 [--once]
  perf       perf-regression gate           diff BASELINE CURRENT [--threshold-pct 10]
  validate   MVA vs discrete-event sim      --n 8 --protocol WO --sharing 5
  gtpn       MVA vs GTPN (small N)          --n 2 --protocol WO --sharing 5
  stress     Section 4.3 stress test        --protocol WO --n 10
  trace      trace-driven cache simulation  --n 4 --protocol berkeley [--adaptive]
  protocol   print transition tables        --protocol illinois
  dot        Graphviz state diagram         --protocol dragon
  asymptote  N → infinity speedups
  sensitivity  speedup elasticities         --protocol WO --sharing 5 --n 10
  convergence  iterate trajectory (Sec 3.2) --protocol WO --sharing 5 --n 10
  calibrate  grid-search timing constants against the published tables,
             or measure Appendix-A workload parameters from an address
             trace: --trace FILE[,FILE…] [--format auto|assignment|label]
             [--emit-scenario OUT.json] [--validate] [--n 4] [--sets 64]
             [--ways 2] [--windows 8] [--tau T] [--backends mva,…]
  multiclass heterogeneous-workload model   --light 4 --heavy 4
  hierarchy  clustered-bus model            --clusters 4 --per-cluster 8
  measure    measure workload params from a trace simulation  --n 4
  traffic    bus-traffic decomposition      --protocol WO --sharing 5
  waits      bus-wait distribution (DES)    --n 8 --sharing 5
  bench      emit BENCH_{sweep,gtpn,sim,exec}.json timing data
             --threads 4 --out-dir . [--quick] [--stage sweep|gtpn|sim|exec|all]
             [--metrics-out FILE] [--run-id ID] [--git-sha SHA]
  help       this text

protocols: WO, WO+1, WO+1+4, … or write-once, illinois, berkeley, dragon,
rwb, synapse, write-through.  sharing: 1 | 5 | 20 (percent).
workload overrides: --params-file FILE (name = value lines, paper names).
solver flags (solve, sweep): --max-damping-retries K (default 4, 0 = plain
iteration only) and --solve-deadline-ms MS (wall-clock cap per attempt,
0 = none); sweep also takes --keep-going (report unsolvable points as
FAILED rows instead of aborting the sweep).
parallelism: --threads K on figure, validate, gtpn, sensitivity and bench
(0 = auto: SNOOP_THREADS or available cores; results are identical for
every thread count).
observability: --metrics-out FILE on figure, validate, gtpn, eval,
sensitivity and bench writes solver metrics JSON (span timers, counters,
latency histograms with p50/p90/p99/p999, convergence summaries; schema
snoop-metrics-v2, a superset of v1) and prints a profile table to
stderr; SNOOP_PROBE_RING sets the event-recorder ring capacity (default
256, capacity-evicted samples counted per recorder as dropped_capacity);
--trace-out FILE on the same commands writes a Chrome
trace-event timeline (open in chrome://tracing or Perfetto) with one
span per engine batch job, tagged with scenario hash, backend and cache
hit/miss. Collection is observational only — outputs stay bit-identical.
perf gate: `snoop perf diff BASELINE CURRENT` compares two BENCH_*.json
or metrics files stage by stage and exits nonzero when a stage's time
regressed beyond --threshold-pct (default 10; --min-ms floors the
absolute delta that can count as a regression). Fields named *speedup*
are higher-is-better: they regress when the ratio drops beyond the
threshold instead.
engine: eval runs a snoop-scenario-v1 batch file through the unified
evaluation engine; --backends is a comma list of mva, mva-resilient,
sim, gtpn and --cache FILE persists the content-addressed result cache
across runs (a repeated run is served entirely from the cache).
durable store: eval --store DIR keeps every computed result in a
crash-safe sharded on-disk store (write-temp-then-rename, per-entry
checksums, corrupt entries quarantined and recomputed, advisory claims
so concurrent workers divide a sweep). A killed sweep rerun with
--resume executes only the scenarios not yet in the store (and prints
the resume plan); --store-verify scans every entry before the run;
--store-max-entries K evicts the oldest entries beyond K.
evaluation service: `snoop serve --listen ADDR` starts a persistent
daemon holding one warm engine (content-addressed cache, optional
--store DIR durable tier): POST /eval evaluates a snoop-scenario-v1
batch and streams one JSON result per line as jobs complete; GET
/metrics is the live snoop-metrics-v2 snapshot (RED counters per
endpoint and status class, queue-wait and per-endpoint service-time
histograms) and ?format=prometheus serves the same data as Prometheus
text exposition 0.0.4; GET /healthz reports liveness, queue depth,
uptime, version (--git-sha SHA tags the build), workers, queue bound
and requests served; POST /shutdown (or SIGTERM / ctrl-c) stops
accepting, drains in-flight work and exits. --threads K sets request
workers, --queue-bound K the backpressure bound (a full queue answers
429 with Retry-After), --backends mirrors eval. --access-log FILE
writes one NDJSON line per request (ts, method, path, status, bytes,
queue_wait_ms, service_ms, jobs, cache_hits) from a dedicated logger
thread that drops-and-counts on overflow (counter log.dropped) instead
of ever stalling; --access-log-max-mb MB rotates by size and
--access-log-keep N bounds the files kept (live file included).
monitoring: `snoop top --url http://HOST:PORT` is a live terminal
dashboard over the daemon's Prometheus scrape (queue depth, in-flight
vs workers, request rate, cache hit ratio, per-series p50/p99);
`snoop top --metrics FILE` renders the same view from a --metrics-out
file; --interval-ms sets the refresh (default 1000) and --once prints
a single escape-free frame for CI or piping.
trace calibration: `calibrate --trace FILE` streams an address trace
(assignment format: per-processor `<0|1|2> <value>` files, a single
`…_p0…` path auto-expands to the family; label format: one `<l|s>
<address>` stream sharded across --n virtual processors), measures the
Appendix-A workload parameters with windowed confidence intervals, and
prints them in --params-file form. --emit-scenario OUT writes the
measured workload as a snoop-scenario-v1 batch for `eval`; --validate
replays the same trace through the trace-driven simulator and compares
every --backends model prediction on the measured parameters against
it. --metrics-out/--trace-out/--threads work here as on eval.
deprecated spellings (still accepted as hidden aliases): `sweep --max-n`
(use --n) and the positional panel of `table` (use --panel).
";

/// A command failure: the message to print, and whether the generic
/// "run `snoop help` for usage" hint should follow it (a perf-gate
/// regression is a *verdict*, not a usage error, so it suppresses the
/// hint).
#[derive(Debug)]
pub struct Failure {
    /// The user-facing error text.
    pub message: String,
    /// Whether `main` should append the usage hint.
    pub usage_hint: bool,
}

impl Failure {
    /// A failure that is not a usage error (no help hint).
    pub fn verdict(message: String) -> Self {
        Failure { message, usage_hint: false }
    }

    /// Whether the message contains `needle` (test convenience, mirrors
    /// `str::contains`).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn contains(&self, needle: &str) -> bool {
        self.message.contains(needle)
    }
}

impl From<String> for Failure {
    fn from(message: String) -> Self {
        Failure { message, usage_hint: true }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Dispatches a command line; returns the text to print.
///
/// # Errors
///
/// Returns a user-facing [`Failure`] for unknown commands or bad flags.
pub fn run(argv: &[String]) -> Result<String, Failure> {
    if argv.is_empty() {
        return Ok(HELP.to_string());
    }
    let args = ParsedArgs::parse(argv)?;
    let result = match args.command.as_str() {
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        "solve" => cmd_solve(&args),
        "sweep" => cmd_sweep(&args),
        "table" => cmd_table(&args),
        "figure" => with_observability(&args, || cmd_figure(&args)),
        "eval" => with_observability(&args, || cmd_eval(&args)),
        "serve" => cmd_serve(&args),
        "top" => crate::top::cmd_top(&args),
        "perf" => return crate::perf::cmd_perf(&args),
        "validate" => with_observability(&args, || cmd_validate(&args)),
        "gtpn" => with_observability(&args, || cmd_gtpn(&args)),
        "stress" => cmd_stress(&args),
        "trace" => cmd_trace(&args),
        "protocol" => cmd_protocol(&args),
        "dot" => cmd_dot(&args),
        "asymptote" => cmd_asymptote(&args),
        "sensitivity" => with_observability(&args, || cmd_sensitivity(&args)),
        "convergence" => cmd_convergence(&args),
        "calibrate" => with_observability(&args, || cmd_calibrate(&args)),
        "multiclass" => cmd_multiclass(&args),
        "hierarchy" => cmd_hierarchy(&args),
        "measure" => cmd_measure(&args),
        "traffic" => cmd_traffic(&args),
        "waits" => cmd_waits(&args),
        "bench" => with_observability(&args, || crate::bench::cmd_bench(&args)),
        other => Err(format!("unknown command {other:?}")),
    };
    result.map_err(Failure::from)
}

/// Runs `body` with the requested observability layers collecting:
///
/// * `--metrics-out PATH` — the probe registry collects and the metrics
///   JSON (schema [`snoop_numeric::probe::SCHEMA`]) is written to PATH
///   afterwards; the `snoop profile` table goes to stderr.
/// * `--trace-out PATH` — the timeline tracer collects and the Chrome
///   trace-event JSON (schema [`snoop_numeric::probe::trace::SCHEMA`])
///   is written to PATH afterwards; an event-count summary goes to
///   stderr.
///
/// Without either flag, `body` runs untouched with collection disabled.
fn with_observability<F>(args: &ParsedArgs, body: F) -> Result<String, String>
where
    F: FnOnce() -> Result<String, String>,
{
    let metrics_path = args.flag_str("metrics-out", "");
    let trace_path = args.flag_str("trace-out", "");
    if metrics_path.is_empty() && trace_path.is_empty() {
        return body();
    }
    // The session guards serialize concurrent collectors (tests share
    // this process) and disable collection again on drop.
    let metrics_session = (!metrics_path.is_empty()).then(snoop_numeric::probe::session);
    let trace_session =
        (!trace_path.is_empty()).then(snoop_numeric::probe::trace::session);
    let result = body();
    if result.is_ok() {
        if trace_session.is_some() {
            let trace = snoop_numeric::probe::trace::drain();
            std::fs::write(&trace_path, trace.to_chrome_json())
                .map_err(|e| format!("cannot write {trace_path}: {e}"))?;
            eprintln!(
                "trace: {} events ({} spans dropped) -> {trace_path}",
                trace.events.len(),
                trace.dropped
            );
        }
        if metrics_session.is_some() {
            let snapshot = snoop_numeric::probe::snapshot();
            std::fs::write(&metrics_path, snapshot.to_json())
                .map_err(|e| format!("cannot write {metrics_path}: {e}"))?;
            eprint!("{}", snapshot.render_table());
        }
    }
    drop(trace_session);
    drop(metrics_session);
    result
}

/// Resolves the workload: `--params-file` wins, else the Appendix-A preset
/// for `--sharing`.
fn workload_flag(args: &ParsedArgs) -> Result<WorkloadParams, String> {
    match args.flag_str("params-file", "").as_str() {
        "" => Ok(WorkloadParams::appendix_a(sharing_flag(args)?)),
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            snoop_workload::file::from_str(&text).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn sharing_flag(args: &ParsedArgs) -> Result<SharingLevel, String> {
    match args.flag_str("sharing", "5").as_str() {
        "1" | "1%" => Ok(SharingLevel::One),
        "5" | "5%" => Ok(SharingLevel::Five),
        "20" | "20%" => Ok(SharingLevel::Twenty),
        other => Err(format!("unknown sharing level {other:?}, expected 1, 5 or 20")),
    }
}

fn protocol_flag(args: &ParsedArgs) -> Result<ModSet, String> {
    args.flag_str("protocol", "WO").parse::<ModSet>().map_err(|e| e.to_string())
}

/// Builds the [`Scenario`] described by the uniform `--protocol`,
/// `--sharing`, `--n` and `--params-file` flags (`--params-file` wins and
/// makes the workload custom). The blessed `Scenario::to_*` conversions
/// are the only construction paths the CLI uses from here on.
fn scenario_flag(args: &ParsedArgs, default_n: usize) -> Result<Scenario, String> {
    let mods = protocol_flag(args)?;
    let n: usize = args.flag_num("n", default_n)?;
    match args.flag_str("params-file", "").as_str() {
        "" => Ok(Scenario::appendix_a(mods, sharing_flag(args)?, n)),
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            let params =
                snoop_workload::file::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
            Ok(Scenario::with_params(mods, params, n))
        }
    }
}

/// Resolves `--threads` (0 = auto: `SNOOP_THREADS` or available cores).
fn threads_flag(args: &ParsedArgs) -> Result<ExecOptions, String> {
    Ok(ExecOptions::with_threads(args.flag_num("threads", 0)?))
}

/// Resolves the resilient-solver flags shared by `solve` and `sweep`.
fn resilient_flags(args: &ParsedArgs) -> Result<ResilientOptions, String> {
    let max_damping_retries: usize = args.flag_num("max-damping-retries", 4)?;
    let deadline_ms: u64 = args.flag_num("solve-deadline-ms", 0)?;
    Ok(ResilientOptions {
        base: SolverOptions::default(),
        max_damping_retries,
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
    })
}

fn cmd_solve(args: &ParsedArgs) -> Result<String, String> {
    let scenario = scenario_flag(args, 10)?;
    let options = resilient_flags(args)?;
    // The full MvaSolution (response-time components, interference terms)
    // is richer than the engine's common currency, so `solve` keeps the
    // direct resilient path — built from the blessed conversion.
    let model = scenario.to_mva_model().map_err(|e| e.to_string())?;
    let resilient = model.solve_resilient(scenario.n, &options).map_err(|e| e.to_string())?;
    let mut out = format!("{}\n{}\n", scenario.protocol, resilient.solution);
    // Only surface the ladder when it actually had to escalate.
    if resilient.diagnostics.retries() > 0 {
        let _ = writeln!(out, "solver: {}", resilient.diagnostics);
    }
    Ok(out)
}

fn cmd_sweep(args: &ParsedArgs) -> Result<String, String> {
    let mods = protocol_flag(args)?;
    let sharing = sharing_flag(args)?;
    // `--n` is the harmonized spelling; `--max-n` stays as a hidden alias.
    let max_n: usize = args.flag_num("n", args.flag_num("max-n", 20)?)?;
    let sizes: Vec<usize> = (1..=max_n).collect();
    let refined = args.switch("refined");
    let keep_going = args.switch("keep-going");
    let mut out = format!(
        "speedup sweep: {mods} at {sharing} sharing{}\n",
        if refined { " (size-dependent sharing)" } else { "" }
    );
    let _ = writeln!(out, "{:>5} {:>9} {:>8} {:>8}", "N", "speedup", "U_bus", "w_bus");
    if refined {
        // Size-dependent sharing ([GrMi87] refinement), anchored at N = 10.
        // The derived inputs change with N, so the warm-started resilient
        // sweep does not apply here.
        let series = snoop_mva::sweep::refined_speedup_series(
            mods,
            sharing,
            &sizes,
            &SolverOptions::default(),
            10,
        )
        .map_err(|e| e.to_string())?;
        for p in &series.points {
            let _ = writeln!(
                out,
                "{:>5} {:>9.3} {:>8.3} {:>8.3}",
                p.n, p.speedup, p.bus_utilization, p.w_bus
            );
        }
        return Ok(out);
    }

    // Warm-started escalation-ladder sweep through the engine: the
    // resilient backend chains each N from the previous N's converged
    // state, exactly like the legacy `resilient_speedup_series`.
    let options = resilient_flags(args)?;
    let engine = Engine::new().with_backend(ResilientMvaBackend {
        max_damping_retries: options.max_damping_retries,
        deadline: options.deadline,
        warm_start_chains: true,
    });
    let scenarios: Vec<Scenario> =
        sizes.iter().map(|&n| Scenario::appendix_a(mods, sharing, n)).collect();
    let results = engine.evaluate_batch(&scenarios);
    // `Failed` carries the solver error verbatim; other variants render
    // with their backend prefix.
    let reason_of = |e: &EvalError| match e {
        EvalError::Failed { reason, .. } => reason.clone(),
        other => other.to_string(),
    };
    if !keep_going {
        if let Some(r) = results.iter().find(|r| r.result.is_err()) {
            let n = scenarios[r.scenario].n;
            let reason = reason_of(r.result.as_ref().unwrap_err());
            return Err(format!(
                "sweep failed at N={n}: {reason} (pass --keep-going to report \
                 failed points and continue)"
            ));
        }
    }
    let mut failures = 0usize;
    for r in &results {
        match &r.result {
            Ok(e) => {
                let _ = writeln!(
                    out,
                    "{:>5} {:>9.3} {:>8.3} {:>8.3}",
                    e.n,
                    e.speedup,
                    e.bus_utilization,
                    e.w_bus.unwrap_or(f64::NAN)
                );
            }
            Err(e) => {
                failures += 1;
                let n = scenarios[r.scenario].n;
                let _ = writeln!(out, "{n:>5} {:>9} {}", "FAILED", reason_of(e));
            }
        }
    }
    if failures > 0 {
        let _ = writeln!(
            out,
            "{failures} of {} points failed; see reasons above",
            results.len()
        );
    }
    Ok(out)
}

fn cmd_table(args: &ParsedArgs) -> Result<String, String> {
    // `--panel` is the harmonized spelling; the bare positional stays as
    // a hidden alias.
    let flagged = args.flag_str("panel", "");
    let which = if flagged.is_empty() {
        args.positional.first().cloned().unwrap_or_else(|| "a".to_string())
    } else {
        flagged
    };
    let engine = Engine::new().with_backend(MvaBackend);
    if which == "util" {
        // Section 4.2's side-by-side: bus utilization at N = 6, 5% sharing
        // ("the GTPN and MVA estimates of bus utilization are approximately
        // 81% and 77%").
        let scenario = Scenario::appendix_a(ModSet::new(), SharingLevel::Five, 6);
        let s = engine.evaluate(&scenario).remove(0).result.map_err(|e| e.to_string())?;
        return Ok(comparison_table(
            "Section 4.2: bus utilization, Write-Once, N = 6, 5% sharing",
            &[("U_bus (paper MVA 0.77)".into(), 0.77, s.bus_utilization)],
        ));
    }
    let panel = which.chars().next().filter(|c| "abc".contains(*c)).ok_or_else(|| {
        format!("unknown table {which:?}, expected a, b, c or util")
    })?;

    let published: Vec<_> = table_4_1().into_iter().filter(|r| r.panel == panel).collect();
    let scenarios: Vec<Scenario> = published
        .iter()
        .flat_map(|row| {
            TABLE_N
                .iter()
                .map(|&n| Scenario::appendix_a(row.mods(), row.sharing, n))
        })
        .collect();
    let mut evals = engine.evaluate_batch(&scenarios).into_iter();
    let mut rows = Vec::new();
    for row in &published {
        for (i, &n) in TABLE_N.iter().enumerate() {
            let s = next_result(&mut evals, BackendId::Mva, format!("{} N={n}", row.sharing))?
                .result
                .map_err(|e| e.to_string())?;
            rows.push((format!("{} N={n}", row.sharing), row.mva[i], s.speedup));
        }
    }
    Ok(comparison_table(
        &format!("Table 4.1({panel}): published MVA speedups vs this implementation"),
        &rows,
    ))
}

fn cmd_figure(args: &ParsedArgs) -> Result<String, String> {
    let sizes: Vec<usize> = (1..=20).chain([30, 50, 100]).collect();
    let grid = snoop_mva::sweep::figure_4_1_grid();
    let scenarios: Vec<Scenario> = grid
        .iter()
        .flat_map(|&(mods, sharing)| {
            sizes.iter().map(move |&n| Scenario::appendix_a(mods, sharing, n))
        })
        .collect();
    let engine = Engine::new().with_backend(MvaBackend).with_exec(threads_flag(args)?);
    let mut evals = engine.evaluate_batch(&scenarios).into_iter();
    let mut family = Vec::with_capacity(grid.len());
    for &(mods, sharing) in &grid {
        let mut points = Vec::with_capacity(sizes.len());
        for &n in &sizes {
            let eval =
                next_result(&mut evals, BackendId::Mva, format!("{mods} {sharing} N={n}"))?;
            points.push(eval.result.map_err(|e| e.to_string())?);
        }
        family.push(EvaluationSeries { mods, sharing, points });
    }
    if args.switch("csv") {
        Ok(engine::series::speedup_csv(&family))
    } else if args.switch("gnuplot") {
        Ok(engine::series::gnuplot_script(
            "Figure 4.1: The Mean Value Analysis Performance Results",
            &family,
        ))
    } else {
        Ok(engine::series::speedup_table(
            "Figure 4.1: speedups of Write-Once, +mod1, +mods1&4 (MVA)",
            &family,
        ))
    }
}

/// Loads and parses the `--scenarios` batch file, turning every failure
/// into a usage-style error: a missing file says so plainly, and a
/// malformed file points at the offending line and column with the
/// source line quoted — never a panic, never a bare `Err` debug print.
fn scenarios_from_file(path: &str) -> Result<Vec<Scenario>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read --scenarios file {path}: {e}"))?;
    match Scenario::parse_batch(&text) {
        Ok(scenarios) => Ok(scenarios),
        Err(batch_error) => {
            // If the document is not JSON at all, re-parse to recover the
            // failure offset and render a line/column context hint
            // (parse_batch reports schema-level problems only).
            if let Err(json_error) = snoop_numeric::json::JsonValue::parse(&text) {
                let (line, col, source) = locate_offset(&text, json_error.offset);
                return Err(format!(
                    "{path}:{line}:{col}: invalid JSON in --scenarios file: {}\n  {source}\n  {:>col$}",
                    json_error.message, "^",
                ));
            }
            Err(format!("{path}: {batch_error}"))
        }
    }
}

/// Converts a byte offset into `(line, column, source-line)` for error
/// context, both 1-based; the offset is clamped into the text.
fn locate_offset(text: &str, offset: usize) -> (usize, usize, String) {
    let mut offset = offset.min(text.len());
    while offset > 0 && !text.is_char_boundary(offset) {
        offset -= 1;
    }
    let before = &text[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let col = offset - line_start + 1;
    let source = text[line_start..].lines().next().unwrap_or("").to_string();
    (line, col, source)
}

/// Takes the next result off a batch iterator. An exhausted iterator
/// means the engine broke its one-result-per-job invariant; that is
/// reported as the typed [`EvalError::MissingResult`] naming the
/// scenario and backend, never a panic under a command.
fn next_result(
    evals: &mut impl Iterator<Item = EngineResult>,
    backend: BackendId,
    scenario: impl std::fmt::Display,
) -> Result<EngineResult, String> {
    evals.next().ok_or_else(|| {
        EvalError::MissingResult { backend, scenario: scenario.to_string() }.to_string()
    })
}

/// Parses `--backends` (comma list, deduplicated, order-preserving).
fn backends_flag(args: &ParsedArgs, command: &str) -> Result<Vec<BackendId>, String> {
    let mut backends = Vec::new();
    for token in args.flag_str("backends", "mva").split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        let id: BackendId = token.parse()?;
        if !backends.contains(&id) {
            backends.push(id);
        }
    }
    if backends.is_empty() {
        return Err(format!("{command} needs at least one backend in --backends"));
    }
    Ok(backends)
}

/// `snoop serve --listen ADDR [--threads K] [--queue-bound K]
/// [--backends mva,...] [--store DIR [--store-max-entries K]]
/// [--access-log FILE [--access-log-max-mb MB] [--access-log-keep N]]
/// [--git-sha SHA]`: the persistent evaluation daemon. Blocks until
/// SIGTERM, ctrl-c or `POST /shutdown`, then drains and returns the
/// lifetime summary.
fn cmd_serve(args: &ParsedArgs) -> Result<String, String> {
    let store_dir = args.flag_str("store", "");
    let max_entries: usize = args.flag_num("store-max-entries", 0)?;
    if store_dir.is_empty() && max_entries > 0 {
        return Err("--store-max-entries needs --store DIR".to_string());
    }
    let access_log = args.flag_str("access-log", "");
    let access_log_max_mb: u64 = args.flag_num("access-log-max-mb", 64)?;
    let access_log_keep: usize = args.flag_num("access-log-keep", 3)?;
    if access_log.is_empty() && (access_log_max_mb != 64 || access_log_keep != 3) {
        return Err(
            "--access-log-max-mb / --access-log-keep need --access-log FILE".to_string()
        );
    }
    let git_sha = args.flag_str("git-sha", "");
    let config = snoop_serve::ServeConfig {
        listen: args.flag_str("listen", "127.0.0.1:7077"),
        workers: args.flag_num::<usize>("threads", 2)?.max(1),
        queue_bound: args.flag_num::<usize>("queue-bound", 64)?.max(1),
        backends: backends_flag(args, "serve")?,
        engine_threads: 0,
        cache_capacity: None,
        store_dir: (!store_dir.is_empty()).then(|| std::path::PathBuf::from(&store_dir)),
        store_max_entries: (max_entries > 0).then_some(max_entries),
        access_log: (!access_log.is_empty()).then(|| std::path::PathBuf::from(&access_log)),
        access_log_max_mb: access_log_max_mb.max(1),
        access_log_keep: access_log_keep.max(1),
        git_sha: (!git_sha.is_empty()).then_some(git_sha),
    };
    let server = snoop_serve::Server::bind(config).map_err(|e| e.to_string())?;
    // The address goes to stderr immediately (stdout is reserved for
    // the shutdown summary), so scripts can parse the ephemeral port.
    eprintln!("serve: listening on http://{}", server.local_addr());
    eprintln!(
        "serve: POST /eval streams snoop-scenario-v1 batch results; GET /metrics, \
         GET /healthz, POST /shutdown; SIGTERM or ctrl-c drains and exits"
    );
    let summary = server.run().map_err(|e| e.to_string())?;
    Ok(format!("{summary}\n"))
}

/// `snoop eval --scenarios FILE.json [--backends mva,sim] [--cache FILE]
/// [--store DIR [--resume] [--store-verify] [--store-max-entries K]]`:
/// runs a `snoop-scenario-v1` batch through the unified engine.
///
/// Stdout is deterministic (no timings), so a repeat run with the same
/// cache file or store is byte-identical; cache and store statistics go
/// to stderr.
fn cmd_eval(args: &ParsedArgs) -> Result<String, String> {
    let path = args.flag_str("scenarios", "");
    if path.is_empty() {
        return Err("eval needs --scenarios FILE.json (schema snoop-scenario-v1)".to_string());
    }
    let scenarios = scenarios_from_file(&path)?;

    let backends = backends_flag(args, "eval")?;
    let exec = threads_flag(args)?;
    let mut engine = Engine::new().with_exec(exec);
    for id in &backends {
        engine = match id {
            BackendId::Mva => engine.with_backend(MvaBackend),
            BackendId::ResilientMva => engine.with_backend(ResilientMvaBackend::default()),
            BackendId::Sim => engine.with_backend(SimBackend { exec }),
            BackendId::Gtpn => engine.with_backend(GtpnBackend { threads: exec.threads }),
        };
    }

    // The durable store tier: --store DIR attaches it, --store-verify
    // runs a full integrity scan first, --resume reports how much of the
    // batch is already on disk (the engine then computes only the rest).
    let store_dir = args.flag_str("store", "");
    if store_dir.is_empty() {
        for flag in ["resume", "store-verify"] {
            if args.switch(flag) {
                return Err(format!("--{flag} needs --store DIR"));
            }
        }
    } else {
        let max_entries: usize = args.flag_num("store-max-entries", 0)?;
        let config = StoreConfig {
            max_entries: (max_entries > 0).then_some(max_entries),
            ..StoreConfig::default()
        };
        let store =
            Arc::new(DiskStore::open_config(&store_dir, config).map_err(|e| e.to_string())?);
        if args.switch("store-verify") {
            let report = store.recover();
            eprintln!(
                "store: verified {} entr{}: {} intact, {} quarantined",
                report.scanned,
                if report.scanned == 1 { "y" } else { "ies" },
                report.intact,
                report.quarantined
            );
        }
        if args.switch("resume") {
            let total = scenarios.len() * backends.len();
            let stored = scenarios
                .iter()
                .flat_map(|s| backends.iter().map(move |id| Engine::job_key(*id, s)))
                .filter(|key| store.contains(key))
                .count();
            eprintln!("resume: {stored} of {total} job(s) already in store");
        }
        engine = engine.with_store(store);
    }

    let cache_path = args.flag_str("cache", "");
    if !cache_path.is_empty() {
        let outcome = engine
            .cache()
            .load_file(std::path::Path::new(&cache_path))
            .map_err(|e| format!("{cache_path}: {e}"))?;
        let rejected = if outcome.rejected > 0 {
            format!(" (rejected {})", outcome.rejected)
        } else {
            String::new()
        };
        eprintln!(
            "cache: loaded {} entr{}{rejected} from {cache_path}",
            outcome.loaded,
            if outcome.loaded == 1 { "y" } else { "ies" }
        );
    }

    let results = engine.evaluate_batch(&scenarios);
    let mut out = format!(
        "eval: {} scenario(s) × {} backend(s) [{}]\n",
        scenarios.len(),
        backends.len(),
        backends.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    );
    let mut it = results.into_iter();
    for (i, scenario) in scenarios.iter().enumerate() {
        let _ = writeln!(out, "[{i}] {scenario}  (hash {:016x})", scenario.content_hash());
        for id in &backends {
            let r = next_result(&mut it, *id, format!("{:016x}", scenario.content_hash()))?;
            match r.result {
                Ok(eval) => {
                    let _ = writeln!(out, "    {}", eval.summary());
                }
                Err(e) => {
                    let _ = writeln!(out, "    {:<13} error: {e}", r.backend.to_string());
                }
            }
        }
    }

    if !cache_path.is_empty() {
        engine
            .cache()
            .save_file(std::path::Path::new(&cache_path))
            .map_err(|e| format!("cannot write {cache_path}: {e}"))?;
    }
    let stats = engine.cache_stats();
    eprintln!(
        "cache: hits={} misses={} entries={} evictions={} hit_rate={:.1}%",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.evictions,
        stats.hit_rate() * 100.0
    );
    if let Some(store) = engine.store() {
        let s = store.stats();
        eprintln!(
            "store: hits={} misses={} writes={} quarantined={} ({} entries at {store_dir})",
            s.hits,
            s.misses,
            s.writes,
            s.quarantined,
            store.len()
        );
    }
    Ok(out)
}

fn cmd_validate(args: &ParsedArgs) -> Result<String, String> {
    let mut scenario = scenario_flag(args, 8)?;
    scenario.sim.replications = args.flag_num("replications", 3)?;

    let engine = Engine::new()
        .with_backend(MvaBackend)
        .with_backend(SimBackend { exec: threads_flag(args)? });
    let mut results = engine.evaluate(&scenario).into_iter();
    let mva =
        next_result(&mut results, BackendId::Mva, scenario)?.result.map_err(|e| e.to_string())?;
    let sim =
        next_result(&mut results, BackendId::Sim, scenario)?.result.map_err(|e| e.to_string())?;

    let mut out = format!("{scenario}\n");
    let _ = writeln!(
        out,
        "MVA:        speedup {:.3}  U_bus {:.3}  w_bus {:.3}",
        mva.speedup,
        mva.bus_utilization,
        mva.w_bus.unwrap_or(f64::NAN)
    );
    let _ = writeln!(
        out,
        "simulation: speedup {:.3} ± {:.3}  U_bus {:.3}  w_bus {:.3}  ({} replications)",
        sim.speedup,
        sim.speedup_half_width.unwrap_or(f64::NAN),
        sim.bus_utilization,
        sim.w_bus.unwrap_or(f64::NAN),
        scenario.sim.replications
    );
    let err = (mva.speedup - sim.speedup) / sim.speedup * 100.0;
    let _ = writeln!(out, "relative speedup error: {err:+.2}%");
    Ok(out)
}

fn cmd_gtpn(args: &ParsedArgs) -> Result<String, String> {
    let scenario = scenario_flag(args, 2)?;
    let engine = Engine::new()
        .with_backend(MvaBackend)
        .with_backend(GtpnBackend { threads: threads_flag(args)?.threads });
    let mut results = engine.evaluate(&scenario).into_iter();
    let mva =
        next_result(&mut results, BackendId::Mva, scenario)?.result.map_err(|e| e.to_string())?;
    let gtpn =
        next_result(&mut results, BackendId::Gtpn, scenario)?.result.map_err(|e| e.to_string())?;

    let mut out = format!("{scenario}\n");
    let _ = writeln!(
        out,
        "MVA:  speedup {:.3}  U_bus {:.3}",
        mva.speedup, mva.bus_utilization
    );
    let _ = writeln!(
        out,
        "GTPN: speedup {:.3}  U_bus {:.3}  ({} states)",
        gtpn.speedup,
        gtpn.bus_utilization,
        gtpn.provenance.states
    );
    let err = (mva.speedup - gtpn.speedup) / gtpn.speedup * 100.0;
    let _ = writeln!(out, "relative speedup error: {err:+.2}%");
    Ok(out)
}

fn cmd_stress(args: &ParsedArgs) -> Result<String, String> {
    let mods = protocol_flag(args)?;
    let n: usize = args.flag_num("n", 10)?;
    let scenario = Scenario::with_params(mods, WorkloadParams::stress(), n);
    let model = scenario.to_mva_model().map_err(|e| e.to_string())?;
    let mva = model
        .solve(scenario.n, &scenario.solver_options())
        .map_err(|e| e.to_string())?;
    let sim = simulate(&scenario.to_sim_config()).map_err(|e| e.to_string())?;
    let err = (mva.speedup - sim.speedup) / sim.speedup * 100.0;
    Ok(format!(
        "Section 4.3 stress test (rep=amod_sw=0, csupply=1, p_sw=0.2, h_sw=0.1), \
         {mods}, N = {n}\n\
         MVA speedup {:.3}   simulation speedup {:.3}   error {err:+.2}%\n\
         (the paper reports MVA within 5% of the detailed model under stress)\n",
        mva.speedup, sim.speedup
    ))
}

fn cmd_trace(args: &ParsedArgs) -> Result<String, String> {
    let mods = protocol_flag(args)?;
    let n: usize = args.flag_num("n", 4)?;
    let mut config = TraceSimConfig::new(n, mods);
    if args.switch("adaptive") {
        let limit: u8 = args.flag_num("useless-limit", 2)?;
        config.update_policy =
            snoop_sim::trace_mode::UpdatePolicy::Adaptive { useless_limit: limit };
    }
    let source = config.generator().map_err(|e| e.to_string())?;
    let m = simulate_trace_source(&config.drive_config(), source).map_err(|e| e.to_string())?;
    Ok(format!(
        "trace-driven simulation: {mods}, N = {n}{}\n\
         speedup {:.3}  U_bus {:.3}  emergent hit rate {:.3}\n\
         per-stream hit rates: private {:.3}  sro {:.3}  sw {:.3}\n\
         cache-supply rate {:.3}  bus ops/ref {:.3}  invalidations/ref {:.4}\n",
        if args.switch("adaptive") { " (adaptive RWB broadcasts)" } else { "" },
        m.speedup,
        m.bus_utilization,
        m.hit_rate,
        m.hit_rate_private,
        m.hit_rate_sro,
        m.hit_rate_sw,
        m.cache_supply_rate,
        m.bus_ops_per_reference,
        m.invalidations_per_reference
    ))
}

fn cmd_dot(args: &ParsedArgs) -> Result<String, String> {
    let mods = protocol_flag(args)?;
    Ok(snoop_protocol::dot::state_diagram(&Protocol::new(mods)))
}

fn cmd_sensitivity(args: &ParsedArgs) -> Result<String, String> {
    let mods = protocol_flag(args)?;
    let n: usize = args.flag_num("n", 10)?;
    let params = workload_flag(args)?;
    let rows =
        snoop_mva::sensitivity::sensitivities_exec(&params, mods, n, 0.01, &threads_flag(args)?)
            .map_err(|e| e.to_string())?;
    Ok(format!(
        "speedup elasticities, {mods}, N = {n} (±1% central differences)\n{}",
        snoop_mva::sensitivity::render(&rows)
    ))
}

fn cmd_convergence(args: &ParsedArgs) -> Result<String, String> {
    let scenario = scenario_flag(args, 10)?;
    let mods = scenario.protocol;
    let n = scenario.n;
    let model = scenario.to_mva_model().map_err(|e| e.to_string())?;
    let (solution, history) = model
        .solve_traced(n, &SolverOptions::paper())
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "fixed-point trajectory, {mods}, N = {n} (engineering tolerance)\n\
         {:<6} {:>10} {:>10} {:>10}\n",
        "iter", "w_bus", "w_mem", "R"
    );
    for (k, [w_bus, w_mem, r]) in history.iter().enumerate() {
        let _ = writeln!(out, "{k:<6} {w_bus:>10.4} {w_mem:>10.4} {r:>10.4}");
    }
    let _ = writeln!(
        out,
        "converged in {} iterations (paper Section 3.2: \"within 15 iterations\")",
        history.len() - 1
    );
    let _ = writeln!(out, "final speedup: {:.3}", solution.speedup);
    Ok(out)
}

/// `snoop calibrate` has two modes sharing one name because both answer
/// "where do the model's numbers come from":
///
/// * without `--trace` — the original timing-constant grid search against
///   the published Table 4.1 cells;
/// * with `--trace FILE[,FILE…]` — Appendix-A workload-parameter
///   measurement from an address trace on disk (`--format
///   auto|assignment|label`), with `--emit-scenario OUT` writing a
///   `snoop-scenario-v1` batch of the measured workload and `--validate`
///   replaying the same trace through the trace-driven simulator and
///   comparing it against the model backends (`--backends`, default mva)
///   evaluated on the measured parameters.
fn cmd_calibrate(args: &ParsedArgs) -> Result<String, String> {
    if args.flag_str("trace", "").is_empty() {
        return cmd_calibrate_grid();
    }
    cmd_calibrate_trace(args)
}

/// Resolves `--trace` (comma list; a single `…_p0…` path expands to its
/// per-processor family) and `--format` (default `auto` = sniff).
fn trace_flag(
    args: &ParsedArgs,
) -> Result<(Vec<std::path::PathBuf>, snoop_workload::ingest::TraceFormat), String> {
    use snoop_workload::ingest::{discover_processor_files, TraceFormat};
    let spec = args.flag_str("trace", "");
    let mut paths: Vec<std::path::PathBuf> = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(std::path::PathBuf::from)
        .collect();
    if paths.is_empty() {
        return Err("calibrate needs --trace FILE[,FILE…]".to_string());
    }
    if paths.len() == 1 {
        paths = discover_processor_files(&paths[0]);
    }
    let format = match args.flag_str("format", "auto").as_str() {
        "auto" => TraceFormat::detect(&paths[0]).map_err(|e| e.to_string())?,
        other => other.parse::<TraceFormat>()?,
    };
    Ok((paths, format))
}

fn cmd_calibrate_trace(args: &ParsedArgs) -> Result<String, String> {
    use snoop_workload::ingest::{FileTrace, IngestOptions};
    use snoop_workload::measure::{measure_source, render_diagnostics, MeasureConfig};
    use snoop_workload::trace::TraceSource;

    let mods = protocol_flag(args)?;
    let (paths, format) = trace_flag(args)?;
    let options = IngestOptions {
        bytes_per_word: args.flag_num("bytes-per-word", 4)?,
        words_per_block: args.flag_num("words-per-block", 4)?,
        processors: args.flag_num("n", 4)?,
    };
    let mut trace = FileTrace::open(&paths, format, options).map_err(|e| e.to_string())?;
    let n = trace.processors();

    let config = MeasureConfig {
        sets: args.flag_num("sets", 64)?,
        ways: args.flag_num("ways", 2)?,
        windows: args.flag_num("windows", 8)?,
        mods,
        tau: args.flag_num("tau", WorkloadParams::default().tau)?,
        exec: threads_flag(args)?,
        ..MeasureConfig::default()
    };
    let measured = measure_source(&mut trace, &config).map_err(|e| e.to_string())?;

    let shown = if paths.len() == 1 {
        paths[0].display().to_string()
    } else {
        format!("{} (+{} sibling files)", paths[0].display(), paths.len() - 1)
    };
    let mut out = format!(
        "workload parameters calibrated from {shown}\n\
         ({format} trace, {n} processors, {} distinct blocks)\n\n{}",
        trace.distinct_blocks(),
        snoop_workload::file::to_string(&measured.params)
    );
    let _ = writeln!(out);
    out.push_str(&render_diagnostics(&measured.diagnostics));

    let scenario = Scenario::with_params(mods, measured.params, n);

    let emit = args.flag_str("emit-scenario", "");
    if !emit.is_empty() {
        std::fs::write(&emit, Scenario::batch_to_json(&[scenario]))
            .map_err(|e| format!("cannot write {emit}: {e}"))?;
        let _ = writeln!(out, "\nscenario batch (snoop-scenario-v1) -> {emit}");
    }

    if args.switch("validate") {
        out.push_str(&calibrate_validate(args, &paths, format, options, scenario)?);
    }
    Ok(out)
}

/// The `--validate` leg of trace calibration: replays the *same* trace
/// through the trace-driven simulator and compares the measured-parameter
/// model predictions (every backend in `--backends`) against it. The two
/// legs share nothing but the trace file, so agreement means the
/// estimator actually captured the workload.
fn calibrate_validate(
    args: &ParsedArgs,
    paths: &[std::path::PathBuf],
    format: snoop_workload::ingest::TraceFormat,
    options: snoop_workload::ingest::IngestOptions,
    scenario: Scenario,
) -> Result<String, String> {
    use snoop_sim::trace_mode::TraceDriveConfig;
    use snoop_workload::ingest::FileTrace;

    // A fresh streaming pass over the files — the measurement pass above
    // consumed the cursors.
    let trace = FileTrace::open(paths, format, options).map_err(|e| e.to_string())?;
    let shortest =
        trace.record_counts().iter().copied().min().unwrap_or(0) as usize;

    let mut drive = TraceDriveConfig::new(scenario.n, scenario.protocol);
    drive.tau = scenario.params.tau;
    drive.sets = args.flag_num("sets", 64)?;
    drive.ways = args.flag_num("ways", 2)?;
    drive.seed = args.flag_num("seed", drive.seed)?;
    // Size the windows to consume the whole shortest stream: a processor
    // that drains its file after finishing its window parks while the
    // laggards catch up, so uneven drain rates are fine.
    drive.warmup_references = shortest / 10;
    drive.measured_references = shortest - shortest / 10;
    if drive.measured_references == 0 {
        return Err(format!(
            "trace too short to validate: shortest processor stream has \
             {shortest} references"
        ));
    }
    let sim = snoop_sim::trace_mode::simulate_trace_source(&drive, trace)
        .map_err(|e| e.to_string())?;

    let backends = backends_flag(args, "calibrate")?;
    let exec = threads_flag(args)?;
    let mut engine = Engine::new().with_exec(exec);
    for id in &backends {
        engine = match id {
            BackendId::Mva => engine.with_backend(MvaBackend),
            BackendId::ResilientMva => engine.with_backend(ResilientMvaBackend::default()),
            BackendId::Sim => engine.with_backend(SimBackend { exec }),
            BackendId::Gtpn => engine.with_backend(GtpnBackend { threads: exec.threads }),
        };
    }
    let mut results = engine.evaluate(&scenario).into_iter();

    let mut out = format!(
        "\nvalidation: trace-driven simulation vs model on measured parameters\n\
         trace sim:       speedup {:.3}  U_bus {:.3}  hit rate {:.3}  \
         ({} warmup + {} measured refs/processor)\n",
        sim.speedup, sim.bus_utilization, sim.hit_rate, drive.warmup_references,
        drive.measured_references
    );
    for id in &backends {
        let eval = next_result(&mut results, *id, scenario)?;
        match eval.result {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "{:<16} speedup {:.3}  U_bus {:.3}  ({:+.1}% vs trace sim)",
                    format!("{id}:"),
                    r.speedup,
                    r.bus_utilization,
                    (r.speedup - sim.speedup) / sim.speedup * 100.0
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{:<16} FAILED: {e}", format!("{id}:"));
            }
        }
    }
    Ok(out)
}

fn cmd_calibrate_grid() -> Result<String, String> {
    let fits = snoop_mva::calibration::grid_search().map_err(|e| e.to_string())?;
    let mut out = String::from(
        "timing-reconstruction grid search against the published Table 4.1 MVA cells\n",
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>9} {:>9}",
        "addr", "cache-extra", "wb-factor", "rms%", "worst%"
    );
    for fit in fits.iter().take(8) {
        let _ = writeln!(
            out,
            "{:>8.1} {:>12.1} {:>12.1} {:>9.2} {:>9.2}",
            fit.candidate.address_cycles,
            fit.candidate.cache_read_extra,
            fit.candidate.writeback_factor,
            fit.rms_error * 100.0,
            fit.worst_error * 100.0
        );
    }
    let shipped = snoop_mva::calibration::evaluate(&snoop_mva::calibration::shipped())
        .map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "shipped defaults: rms {:.2}%, worst {:.2}%",
        shipped.rms_error * 100.0,
        shipped.worst_error * 100.0
    );
    Ok(out)
}

fn cmd_multiclass(args: &ParsedArgs) -> Result<String, String> {
    use snoop_mva::multiclass::{MulticlassModel, WorkloadClass};
    use snoop_workload::derived::ModelInputs;
    use snoop_workload::timing::TimingModel;
    let light: usize = args.flag_num("light", 4)?;
    let heavy: usize = args.flag_num("heavy", 4)?;
    let mods = protocol_flag(args)?;
    let timing = TimingModel::default();
    let light_inputs = ModelInputs::derive_adjusted(
        &WorkloadParams::appendix_a(SharingLevel::One),
        mods,
        &timing,
    )
    .map_err(|e| e.to_string())?;
    let heavy_inputs = ModelInputs::derive_adjusted(
        &WorkloadParams::appendix_a(SharingLevel::Twenty),
        mods,
        &timing,
    )
    .map_err(|e| e.to_string())?;
    let model = MulticlassModel::new(vec![
        WorkloadClass { count: light, inputs: light_inputs },
        WorkloadClass { count: heavy, inputs: heavy_inputs },
    ])
    .map_err(|e| e.to_string())?;
    let s = model.solve().map_err(|e| e.to_string())?;
    let mut out = format!(
        "multiclass model ({mods}): {light}× 1%-sharing + {heavy}× 20%-sharing processors\n"
    );
    let _ = writeln!(
        out,
        "total speedup {:.3}   U_bus {:.3}   w_bus {:.3}",
        s.speedup, s.bus_utilization, s.w_bus
    );
    let _ = writeln!(
        out,
        "light class: {:.3} total ({:.3}/processor)   heavy class: {:.3} total ({:.3}/processor)",
        s.class_speedup[0],
        s.class_speedup[0] / light.max(1) as f64,
        s.class_speedup[1],
        s.class_speedup[1] / heavy.max(1) as f64
    );
    Ok(out)
}

fn cmd_hierarchy(args: &ParsedArgs) -> Result<String, String> {
    use snoop_mva::hierarchical::{HierarchicalConfig, HierarchicalModel};
    use snoop_workload::derived::ModelInputs;
    use snoop_workload::timing::TimingModel;
    let clusters: usize = args.flag_num("clusters", 4)?;
    let per_cluster: usize = args.flag_num("per-cluster", 8)?;
    let locality: f64 = args.flag_num("locality", 0.8)?;
    let cluster_cache: f64 = args.flag_num("cluster-cache", 0.8)?;
    let mods = protocol_flag(args)?;
    let params = workload_flag(args)?;
    let inputs = ModelInputs::derive_adjusted(&params, mods, &TimingModel::default())
        .map_err(|e| e.to_string())?;
    let s = HierarchicalModel::new(
        inputs,
        HierarchicalConfig {
            clusters,
            per_cluster,
            cluster_locality: locality,
            cluster_cache_hit: cluster_cache,
        },
    )
    .map_err(|e| e.to_string())?
    .solve()
    .map_err(|e| e.to_string())?;
    Ok(format!(
        "hierarchical model: {clusters} clusters × {per_cluster} processors, {mods}\n\
         (cluster locality {locality}, cluster-cache hit {cluster_cache})\n\
         speedup {:.3}   U_local {:.3}   U_global {:.3}   U_mem {:.3}\n\
         w_local {:.3}   w_global {:.3}\n",
        s.speedup,
        s.local_bus_utilization,
        s.global_bus_utilization,
        s.memory_utilization,
        s.w_local,
        s.w_global
    ))
}

fn cmd_measure(args: &ParsedArgs) -> Result<String, String> {
    use snoop_sim::trace_mode::simulate_trace_source_measuring;
    let mods = protocol_flag(args)?;
    let n: usize = args.flag_num("n", 4)?;
    let config = TraceSimConfig::new(n, mods);
    let source = config.generator().map_err(|e| e.to_string())?;
    let (sim, params) = simulate_trace_source_measuring(&config.drive_config(), source)
        .map_err(|e| e.to_string())?;
    let scenario = Scenario::with_params(mods, params, n);
    let mva = scenario
        .to_mva_model()
        .map_err(|e| e.to_string())?
        .solve(scenario.n, &scenario.solver_options())
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "workload parameters measured from a trace-driven simulation ({mods}, N = {n}):\n\n{}",
        snoop_workload::file::to_string(&params)
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "trace-simulation speedup: {:.3}   MVA on measured parameters: {:.3} ({:+.1}%)",
        sim.speedup,
        mva.speedup,
        (mva.speedup - sim.speedup) / sim.speedup * 100.0
    );
    let _ = writeln!(out, "(save the block above with --params-file workflows)");
    Ok(out)
}

fn cmd_traffic(args: &ParsedArgs) -> Result<String, String> {
    use snoop_workload::derived::ModelInputs;
    use snoop_workload::timing::TimingModel;
    let mods = protocol_flag(args)?;
    let params = workload_flag(args)?;
    let inputs = ModelInputs::derive_adjusted(&params, mods, &TimingModel::default())
        .map_err(|e| e.to_string())?;
    let breakdown = snoop_mva::traffic::TrafficBreakdown::from_inputs(&inputs);
    Ok(format!("bus-traffic decomposition, {mods}\n{}", breakdown.render()))
}

fn cmd_waits(args: &ParsedArgs) -> Result<String, String> {
    let scenario = scenario_flag(args, 8)?;
    let mods = scenario.protocol;
    let n = scenario.n;
    let params = scenario.params;
    let (measures, profile) = snoop_sim::simulate_with_profile(&scenario.to_sim_config())
        .map_err(|e| e.to_string())?;
    let mva = scenario
        .to_mva_model()
        .map_err(|e| e.to_string())?
        .solve(n, &scenario.solver_options())
        .map_err(|e| e.to_string())?;
    let mut out = format!("bus-wait distribution, {mods}, N = {n} (DES)\n");
    let _ = writeln!(
        out,
        "mean {:.3} (MVA Eq.5: {:.3})   p50 {:.3}   p95 {:.3}   max {:.3}   zero-wait {:.1}%",
        measures.w_bus,
        mva.w_bus,
        profile.p50,
        profile.p95,
        profile.max,
        profile.zero_wait_fraction * 100.0
    );
    out.push_str(&profile.histogram.render(50));
    let _ = writeln!(
        out,
        "\nresponse times (completion − issue): mean {:.3} (MVA R − τ: {:.3}), \
         p50 {:.3}, p99 {:.3}",
        profile.response_times.mean(),
        mva.r - params.tau,
        profile.response_times.quantile(0.5).unwrap_or(0.0),
        profile.response_times.quantile(0.99).unwrap_or(0.0)
    );
    if profile.out_of_range() > 0 {
        let _ = writeln!(
            out,
            "note: {} sample(s) fell outside the histogram ranges and are \
             excluded from the means/quantiles above",
            profile.out_of_range()
        );
    }
    Ok(out)
}

fn cmd_protocol(args: &ParsedArgs) -> Result<String, String> {
    let mods = protocol_flag(args)?;
    let protocol = Protocol::new(mods);
    Ok(format!(
        "{}\n{}",
        snoop_protocol::table::processor_table(&protocol),
        snoop_protocol::table::snoop_table(&protocol)
    ))
}

fn cmd_asymptote(_args: &ParsedArgs) -> Result<String, String> {
    let mut out = String::from("asymptotic (N → ∞) speedups\n");
    let _ = writeln!(out, "{:<12} {:>8} {:>8} {:>8}", "protocol", "1%", "5%", "20%");
    for mods in ["WO", "WO+1", "WO+1+4", "WO+1+2+3", "WO+1+2+3+4"] {
        let set: ModSet = mods.parse().map_err(|e: snoop_protocol::ProtocolError| e.to_string())?;
        let _ = write!(out, "{mods:<12}");
        for sharing in SharingLevel::ALL {
            let model = Scenario::appendix_a(set, sharing, 1)
                .to_mva_model()
                .map_err(|e| e.to_string())?;
            let a = asymptotic(model.inputs());
            let _ = write!(out, " {:>8.3}", a.speedup);
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tokens(tokens: &[&str]) -> Result<String, Failure> {
        run(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn exhausted_result_iterator_is_a_typed_error_not_a_panic() {
        let err = next_result(&mut std::iter::empty(), BackendId::Gtpn, "deadbeef00000000")
            .unwrap_err();
        assert!(err.contains("internal invariant violated"), "{err}");
        assert!(err.contains("gtpn"), "{err}");
        assert!(err.contains("deadbeef00000000"), "{err}");
    }

    #[test]
    fn help_lists_commands() {
        let h = run_tokens(&["help"]).unwrap();
        for cmd in ["solve", "sweep", "table", "figure", "validate", "gtpn", "stress"] {
            assert!(h.contains(cmd), "missing {cmd}");
        }
        assert_eq!(run_tokens(&[]).unwrap(), h);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_tokens(&["frobnicate"]).is_err());
    }

    #[test]
    fn solve_reports_speedup() {
        let out = run_tokens(&["solve", "--protocol", "WO", "--sharing", "5", "--n", "10"])
            .unwrap();
        assert!(out.contains("speedup"));
        assert!(out.contains("5.2") || out.contains("5.3"), "{out}");
    }

    #[test]
    fn solve_accepts_named_protocols() {
        let out = run_tokens(&["solve", "--protocol", "dragon", "--n", "4"]).unwrap();
        assert!(out.contains("WO+1+2+3+4"));
    }

    #[test]
    fn bad_sharing_is_reported() {
        let err = run_tokens(&["solve", "--sharing", "42"]).unwrap_err();
        assert!(err.contains("42"));
    }

    #[test]
    fn table_a_compares_against_paper() {
        let out = run_tokens(&["table", "a"]).unwrap();
        assert!(out.contains("Table 4.1(a)"));
        assert!(out.contains("maximum |error|"));
        // 27 data rows (3 sharing × 9 N).
        assert_eq!(out.lines().filter(|l| l.contains("N=")).count(), 27);
    }

    #[test]
    fn table_util_compares_bus_utilization() {
        let out = run_tokens(&["table", "util"]).unwrap();
        assert!(out.contains("bus utilization"));
    }

    #[test]
    fn figure_csv_is_machine_readable() {
        let out = run_tokens(&["figure", "--csv"]).unwrap();
        assert!(out.starts_with("protocol,sharing,n,"));
        assert!(out.lines().count() > 9 * 10);
    }

    #[test]
    fn figure_gnuplot_has_nine_data_blocks() {
        let out = run_tokens(&["figure", "--gnuplot"]).unwrap();
        assert_eq!(out.matches("<< EOD").count(), 9);
        assert!(out.contains("plot "));
    }

    #[test]
    fn sweep_has_max_n_rows() {
        let out = run_tokens(&["sweep", "--max-n", "5"]).unwrap();
        assert_eq!(out.lines().count(), 2 + 5);
    }

    #[test]
    fn refined_sweep_differs_from_fixed() {
        let fixed = run_tokens(&["sweep", "--max-n", "3", "--sharing", "20"]).unwrap();
        let refined =
            run_tokens(&["sweep", "--max-n", "3", "--sharing", "20", "--refined"]).unwrap();
        assert!(refined.contains("size-dependent"));
        assert_ne!(fixed, refined);
    }

    #[test]
    fn solver_flags_accepted_on_solve() {
        let out = run_tokens(&[
            "solve",
            "--protocol",
            "WO",
            "--sharing",
            "5",
            "--n",
            "10",
            "--max-damping-retries",
            "2",
            "--solve-deadline-ms",
            "5000",
        ])
        .unwrap();
        assert!(out.contains("speedup"));
        // The default workload converges on the first attempt, so no
        // escalation diagnostics are printed.
        assert!(!out.contains("solver:"), "{out}");
    }

    #[test]
    fn sweep_keep_going_matches_default_when_all_points_solve() {
        let plain = run_tokens(&["sweep", "--max-n", "5"]).unwrap();
        let kept = run_tokens(&["sweep", "--max-n", "5", "--keep-going"]).unwrap();
        assert_eq!(plain, kept);
        assert!(!kept.contains("FAILED"));
    }

    #[test]
    fn bad_solver_flag_value_is_reported() {
        assert!(run_tokens(&["solve", "--max-damping-retries", "many"]).is_err());
    }

    #[test]
    fn protocol_prints_tables() {
        let out = run_tokens(&["protocol", "--protocol", "illinois"]).unwrap();
        assert!(out.contains("processor transitions"));
        assert!(out.contains("snoop transitions"));
    }

    #[test]
    fn asymptote_prints_matrix() {
        let out = run_tokens(&["asymptote"]).unwrap();
        assert!(out.contains("WO+1+4"));
        assert!(out.lines().count() >= 6);
    }

    #[test]
    fn gtpn_small_system_agrees() {
        let out = run_tokens(&["gtpn", "--n", "2"]).unwrap();
        assert!(out.contains("GTPN"));
        assert!(out.contains("states"));
    }

    #[test]
    fn dot_emits_graphviz() {
        let out = run_tokens(&["dot", "--protocol", "dragon"]).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("->"));
    }

    #[test]
    fn sensitivity_lists_parameters() {
        let out = run_tokens(&["sensitivity", "--n", "10"]).unwrap();
        assert!(out.contains("h_private"));
        assert!(out.contains("elasticity"));
    }

    #[test]
    fn multiclass_reports_both_classes() {
        let out = run_tokens(&["multiclass", "--light", "3", "--heavy", "5"]).unwrap();
        assert!(out.contains("light class"));
        assert!(out.contains("heavy class"));
        assert!(out.contains("total speedup"));
    }

    #[test]
    fn waits_reports_distribution() {
        let out = run_tokens(&["waits", "--n", "4"]).unwrap();
        assert!(out.contains("p95"));
        assert!(out.contains("MVA Eq.5"));
    }

    #[test]
    fn figure_accepts_threads_flag() {
        let serial = run_tokens(&["figure", "--csv", "--threads", "1"]).unwrap();
        let parallel = run_tokens(&["figure", "--csv", "--threads", "4"]).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn bench_emits_timing_json() {
        let dir = std::env::temp_dir().join("snoop_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = run_tokens(&[
            "bench",
            "--quick",
            "--threads",
            "2",
            "--out-dir",
            dir.to_str().unwrap(),
            "--run-id",
            "nightly-17",
        ])
        .unwrap();
        assert!(out.contains("bit-identical: true"), "{out}");
        let sweep = std::fs::read_to_string(dir.join("BENCH_sweep.json")).unwrap();
        assert!(sweep.contains("\"benchmark\": \"figure_4_1_resilient_sweep\""));
        assert!(sweep.contains("\"bit_identical\": true"));
        // Run metadata: schema tag, thread count, quick-mode flag and the
        // --run-id passthrough, present in every BENCH file exactly once.
        assert!(sweep.contains("\"schema\": \"snoop-bench-v1\""));
        assert!(sweep.contains("\"threads\": 2"));
        assert_eq!(sweep.matches("\"threads\"").count(), 1, "{sweep}");
        assert!(sweep.contains("\"quick\": true"));
        assert!(sweep.contains("\"run_id\": \"nightly-17\""));
        let gtpn = std::fs::read_to_string(dir.join("BENCH_gtpn.json")).unwrap();
        assert!(gtpn.contains("\"benchmark\": \"write_once_gtpn\""));
        assert!(gtpn.contains("\"explore_bit_identical\": true"));
        assert!(gtpn.contains("\"states\": 204"));
        assert!(gtpn.contains("\"schema\": \"snoop-bench-v1\""));
        let sim = std::fs::read_to_string(dir.join("BENCH_sim.json")).unwrap();
        assert!(sim.contains("\"benchmark\": \"sim_replications\""));
        assert!(sim.contains("\"bit_identical\": true"));
        assert!(sim.contains("\"schema\": \"snoop-bench-v1\""));
        let exec = std::fs::read_to_string(dir.join("BENCH_exec.json")).unwrap();
        assert!(exec.contains("\"benchmark\": \"exec_dispatch\""));
        assert!(exec.contains("\"dispatch_ns_per_job\""));
        // Every file records the host's hardware parallelism so CI can
        // tell whether a measured speedup is meaningful on that runner.
        for json in [&sweep, &gtpn, &sim, &exec] {
            assert!(json.contains("\"host_parallelism\": "), "{json}");
        }
    }

    #[test]
    fn bench_stage_flag_limits_the_run() {
        let dir = std::env::temp_dir().join("snoop_bench_stage_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = run_tokens(&[
            "bench",
            "--quick",
            "--threads",
            "2",
            "--stage",
            "exec",
            "--out-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("exec:"), "{out}");
        assert!(dir.join("BENCH_exec.json").exists());
        // Only the requested stage's file is written.
        for skipped in ["BENCH_sweep.json", "BENCH_gtpn.json", "BENCH_sim.json"] {
            assert!(!dir.join(skipped).exists(), "{skipped} written despite --stage exec");
        }
        let err = run_tokens(&[
            "bench",
            "--stage",
            "bogus",
            "--out-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("--stage"), "{err}");
    }

    #[test]
    fn metrics_out_emits_per_stage_spans() {
        let dir = std::env::temp_dir().join("snoop_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        run_tokens(&[
            "bench",
            "--quick",
            "--threads",
            "2",
            "--out-dir",
            dir.to_str().unwrap(),
            "--metrics-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"snoop-metrics-v2\""), "{json}");
        for key in ["\"spans\"", "\"counters\"", "\"events\"", "\"histograms\""] {
            assert!(json.contains(key), "missing {key}");
        }
        // The bench run exercises every instrumented stage.
        for span in [
            "mva_solve",
            "fixed_point_solve",
            "gtpn_reachability",
            "gtpn_steady_state",
            "sim_replications",
            "sim_run",
        ] {
            assert!(json.contains(&format!("\"{span}\"")) || json.contains(&format!("/{span}\"")), "missing span {span}: {json}");
        }
        assert!(json.contains("fixed_point.iterations"), "{json}");
        assert!(json.contains("fixed_point.residual_trajectory"), "{json}");
    }

    #[test]
    fn metrics_out_on_gtpn_and_sensitivity() {
        let dir = std::env::temp_dir().join("snoop_metrics_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let gtpn_path = dir.join("gtpn-metrics.json");
        run_tokens(&["gtpn", "--n", "2", "--metrics-out", gtpn_path.to_str().unwrap()])
            .unwrap();
        let json = std::fs::read_to_string(&gtpn_path).unwrap();
        assert!(json.contains("gtpn_reachability"), "{json}");
        assert!(json.contains("gtpn.wave_size"), "{json}");
        let sens_path = dir.join("sens-metrics.json");
        run_tokens(&[
            "sensitivity",
            "--n",
            "4",
            "--metrics-out",
            sens_path.to_str().unwrap(),
        ])
        .unwrap();
        let json = std::fs::read_to_string(&sens_path).unwrap();
        assert!(json.contains("mva_solve"), "{json}");
    }

    #[test]
    fn params_file_overrides_workload() {
        let dir = std::env::temp_dir().join("snoop_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wl.txt");
        std::fs::write(&path, "h_private = 0.99\n").unwrap();
        let out = run_tokens(&["solve", "--n", "10", "--params-file", path.to_str().unwrap()])
            .unwrap();
        // Fewer misses than the default workload: speedup above 6.
        let speedup: f64 = out
            .lines()
            .find(|l| l.contains("speedup"))
            .and_then(|l| l.split("speedup = ").nth(1))
            .and_then(|s| s.trim().parse().ok())
            .expect("speedup parsed");
        assert!(speedup > 6.0, "{speedup}");
    }

    #[test]
    fn missing_params_file_is_reported() {
        let err =
            run_tokens(&["solve", "--params-file", "/nonexistent/file"]).unwrap_err();
        assert!(err.contains("/nonexistent/file"));
    }

    #[test]
    fn trace_adaptive_flag_works() {
        let out = run_tokens(&["trace", "--protocol", "rwb", "--n", "2", "--adaptive"])
            .unwrap();
        assert!(out.contains("adaptive RWB"));
        assert!(out.contains("per-stream hit rates"));
    }

    #[test]
    fn convergence_shows_trajectory() {
        let out = run_tokens(&["convergence", "--n", "6"]).unwrap();
        assert!(out.contains("w_bus"));
        assert!(out.contains("converged in"));
        // Trajectory rows present (iteration 0 and at least a few more).
        assert!(out.lines().count() > 6);
    }

    #[test]
    fn measure_prints_params_block() {
        let out = run_tokens(&["measure", "--n", "2"]).unwrap();
        assert!(out.contains("h_private ="));
        assert!(out.contains("trace-simulation speedup"));
    }

    #[test]
    fn traffic_decomposes_the_bus() {
        let wo = run_tokens(&["traffic", "--protocol", "WO"]).unwrap();
        assert!(wo.contains("announcements"));
        assert!(wo.contains("100.0%"));
        let m1 = run_tokens(&["traffic", "--protocol", "WO+1"]).unwrap();
        assert_ne!(wo, m1);
    }

    #[test]
    fn hierarchy_reports_both_buses() {
        let out =
            run_tokens(&["hierarchy", "--clusters", "2", "--per-cluster", "4"]).unwrap();
        assert!(out.contains("U_local"));
        assert!(out.contains("U_global"));
        assert!(out.contains("2 clusters × 4 processors"));
    }

    #[test]
    fn table_panel_flag_matches_the_positional_alias() {
        let flagged = run_tokens(&["table", "--panel", "b"]).unwrap();
        let positional = run_tokens(&["table", "b"]).unwrap();
        assert_eq!(flagged, positional);
        assert!(flagged.contains("Table 4.1(b)"));
    }

    #[test]
    fn sweep_n_flag_matches_the_max_n_alias() {
        let harmonized = run_tokens(&["sweep", "--n", "5"]).unwrap();
        let deprecated = run_tokens(&["sweep", "--max-n", "5"]).unwrap();
        assert_eq!(harmonized, deprecated);
    }

    #[test]
    fn stress_accepts_a_protocol() {
        let wo = run_tokens(&["stress", "--n", "4"]).unwrap();
        assert!(wo.contains("WO, N = 4"), "{wo}");
        let illinois = run_tokens(&["stress", "--protocol", "illinois", "--n", "4"]).unwrap();
        assert!(illinois.contains("WO+1+2+3"), "{illinois}");
        assert_ne!(wo, illinois);
    }

    #[test]
    fn eval_requires_a_scenarios_file() {
        assert!(run_tokens(&["eval"]).unwrap_err().contains("--scenarios"));
    }

    #[test]
    fn eval_runs_a_batch_and_repeats_from_the_cache() {
        use snoop_mva::engine::{Scenario, SCHEMA};
        use snoop_protocol::ModSet;
        use snoop_workload::params::SharingLevel;
        let dir = std::env::temp_dir().join("snoop_eval_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let scenarios_path = dir.join("scenarios.json");
        let batch = Scenario::batch_to_json(&[
            Scenario::appendix_a(ModSet::new(), SharingLevel::Five, 4),
            Scenario::appendix_a(ModSet::new(), SharingLevel::Five, 10),
        ]);
        assert!(batch.contains(SCHEMA));
        std::fs::write(&scenarios_path, batch).unwrap();
        let cache_path = dir.join("cache.json");
        let _ = std::fs::remove_file(&cache_path);

        let tokens = [
            "eval",
            "--scenarios",
            scenarios_path.to_str().unwrap(),
            "--backends",
            "mva,mva-resilient",
            "--cache",
            cache_path.to_str().unwrap(),
        ];
        let first = run_tokens(&tokens).unwrap();
        assert!(first.contains("2 scenario(s) × 2 backend(s)"), "{first}");
        // One summary line per (scenario, backend) job.
        assert_eq!(first.matches("speedup=").count(), 4, "{first}");
        assert!(cache_path.exists());
        // The repeat run is served entirely from the spilled cache and is
        // byte-identical (summaries carry no timings).
        let second = run_tokens(&tokens).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn eval_rejects_unknown_backends() {
        let dir = std::env::temp_dir().join("snoop_eval_bad_backend");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.json");
        std::fs::write(
            &path,
            "{\"schema\":\"snoop-scenario-v1\",\"scenarios\":[{\"protocol\":\"WO\",\"n\":2}]}",
        )
        .unwrap();
        let err = run_tokens(&[
            "eval",
            "--scenarios",
            path.to_str().unwrap(),
            "--backends",
            "quantum",
        ])
        .unwrap_err();
        assert!(err.contains("quantum"), "{err}");
    }

    #[test]
    fn eval_missing_scenarios_file_is_a_usage_error() {
        let err =
            run_tokens(&["eval", "--scenarios", "/nonexistent/batch.json"]).unwrap_err();
        assert!(err.contains("cannot read --scenarios file"), "{err}");
        assert!(err.message.contains("/nonexistent/batch.json"), "{err}");
    }

    #[test]
    fn eval_malformed_scenarios_file_points_at_line_and_column() {
        let dir = std::env::temp_dir().join("snoop_eval_malformed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{\"schema\":\"snoop-scenario-v1\",\n\"scenarios\":[\n{oops}\n]}\n")
            .unwrap();
        let err = run_tokens(&["eval", "--scenarios", path.to_str().unwrap()]).unwrap_err();
        assert!(err.contains(":3:"), "line number in {err}");
        assert!(err.contains("invalid JSON in --scenarios file"), "{err}");
        assert!(err.contains("{oops}"), "source line quoted in {err}");
        assert!(err.contains("^"), "caret hint in {err}");
        // Schema-level problems (valid JSON, wrong shape) still name the file.
        std::fs::write(&path, "{\"schema\":\"snoop-scenario-v1\"}").unwrap();
        let err = run_tokens(&["eval", "--scenarios", path.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("scenarios"), "{err}");
        assert!(err.message.contains("broken.json"), "{err}");
    }

    #[test]
    fn eval_resume_and_verify_require_a_store() {
        let dir = std::env::temp_dir().join("snoop_eval_resume_no_store");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.json");
        std::fs::write(
            &path,
            "{\"schema\":\"snoop-scenario-v1\",\"scenarios\":[{\"protocol\":\"WO\",\"n\":2}]}",
        )
        .unwrap();
        for flag in ["--resume", "--store-verify"] {
            let err = run_tokens(&["eval", "--scenarios", path.to_str().unwrap(), flag])
                .unwrap_err();
            assert!(err.contains("--store DIR"), "{err}");
        }
    }

    #[test]
    fn eval_store_round_trip_is_byte_identical() {
        use snoop_mva::engine::Scenario;
        use snoop_protocol::ModSet;
        use snoop_workload::params::SharingLevel;
        let dir = std::env::temp_dir().join("snoop_eval_store_cmd_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let scenarios_path = dir.join("scenarios.json");
        std::fs::write(
            &scenarios_path,
            Scenario::batch_to_json(&[
                Scenario::appendix_a(ModSet::new(), SharingLevel::Five, 4),
                Scenario::appendix_a(ModSet::new(), SharingLevel::Twenty, 8),
            ]),
        )
        .unwrap();
        let store_dir = dir.join("store");
        let tokens = [
            "eval",
            "--scenarios",
            scenarios_path.to_str().unwrap(),
            "--store",
            store_dir.to_str().unwrap(),
        ];
        let first = run_tokens(&tokens).unwrap();
        assert!(store_dir.join("snoop-store.version").exists());
        // Second run (fresh engine, fresh in-memory cache) serves from
        // the store; --resume and --store-verify are accepted and stdout
        // stays byte-identical.
        let mut resumed = tokens.to_vec();
        resumed.extend(["--resume", "--store-verify"]);
        let second = run_tokens(&resumed).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn help_documents_the_deprecated_spellings() {
        let h = run_tokens(&["help"]).unwrap();
        assert!(h.contains("deprecated spellings"), "{h}");
        assert!(h.contains("--max-n"));
        assert!(h.contains("--panel"));
    }

    /// Absolute path into the checked-in trace corpus.
    fn corpus(file: &str) -> String {
        format!("{}/../../scenarios/traces/{file}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn calibrate_without_trace_still_runs_the_grid_search() {
        let out = run_tokens(&["calibrate"]).unwrap();
        assert!(out.contains("grid search"), "{out}");
        assert!(out.contains("shipped defaults"), "{out}");
    }

    #[test]
    fn calibrate_measures_and_validates_the_assignment_corpus() {
        let path = corpus("mesi_small_p0.trace");
        let out = run_tokens(&[
            "calibrate", "--trace", &path, "--validate", "--backends", "mva",
        ])
        .unwrap();
        assert!(out.contains("workload parameters calibrated"), "{out}");
        assert!(out.contains("assignment trace, 4 processors"), "{out}");
        // Think lines in the corpus encode tau = 2.5 exactly.
        assert!(out.contains("tau = 2.5"), "{out}");
        assert!(out.contains("windows: 8"), "{out}");
        assert!(out.contains("validation: trace-driven simulation"), "{out}");
        assert!(out.contains("trace sim:"), "{out}");
        assert!(out.contains("mva:"), "{out}");
        assert!(out.contains("% vs trace sim"), "{out}");
    }

    #[test]
    fn calibrate_shards_the_label_corpus() {
        let path = corpus("lab_shared.trace");
        let out =
            run_tokens(&["calibrate", "--trace", &path, "--n", "4"]).unwrap();
        assert!(out.contains("label trace, 4 processors"), "{out}");
        assert!(out.contains("p_private"), "{out}");
    }

    #[test]
    fn calibrate_malformed_trace_points_at_line_and_column() {
        let path = corpus("malformed.trace");
        let err = run_tokens(&["calibrate", "--trace", &path]).unwrap_err();
        // Usage-style diagnostic: path:line:col, the source line, a caret —
        // and the fixture's bad address is at line 3, column 3.
        assert!(err.contains("malformed.trace:3:3"), "{err}");
        assert!(err.contains("invalid address"), "{err}");
        assert!(err.contains("s 0xZZ"), "{err}");
        assert!(err.contains("^"), "{err}");
        assert!(err.usage_hint, "parse errors are usage errors");
    }

    #[test]
    fn calibrate_emitted_scenario_round_trips_through_the_batch_parser() {
        let dir = std::env::temp_dir().join("snoop_calibrate_emit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let emit = dir.join("measured.json");
        let trace = corpus("mesi_small_p0.trace");
        run_tokens(&[
            "calibrate",
            "--trace",
            &trace,
            "--protocol",
            "berkeley",
            "--emit-scenario",
            emit.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&emit).unwrap();
        let batch = Scenario::parse_batch(&text).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].n, 4);
        assert_eq!(batch[0].protocol, "berkeley".parse::<ModSet>().unwrap());
        batch[0].params.validate().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
