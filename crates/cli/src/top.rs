//! The `top` subcommand: a live terminal dashboard over a running
//! `snoop serve` daemon (or a `--metrics-out` snapshot file).
//!
//! `snoop top --url http://127.0.0.1:7077` polls the daemon's
//! `GET /metrics?format=prometheus` endpoint every `--interval-ms`
//! (default 1000) and redraws one plain-ANSI frame: queue depth and
//! bound, in-flight requests vs. workers (utilization), request rate
//! since the previous poll, cache hit ratio, and per-series latency
//! histograms (p50/p99) — per-backend `engine.job_ms.*`, per-endpoint
//! `serve.service_ms.*` and the queue wait. `snoop top --metrics FILE`
//! renders the same dashboard from a `snoop-metrics-v2` JSON file
//! instead (re-reading it each interval, so a long sweep writing
//! `--metrics-out` can be watched mid-run once the file exists).
//!
//! `--once` renders exactly one frame with no escape codes and returns
//! it as the command output — the CI-friendly mode, also handy for
//! piping. The live loop runs until the poll fails hard (daemon gone)
//! or the process is interrupted.
//!
//! Everything here is std-only: a raw `TcpStream` HTTP/1.1 GET, a
//! line-based parser for the Prometheus text exposition, and the
//! workspace's own `JsonValue` for metrics files.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use snoop_numeric::json::JsonValue;

use crate::args::ParsedArgs;

/// Where one frame's numbers come from.
enum Source {
    /// Scrape `http://ADDR/metrics?format=prometheus`.
    Daemon { addr: String },
    /// Re-read a `snoop-metrics-v2` file each interval.
    File { path: String },
}

/// One histogram series as the dashboard shows it.
struct HistRow {
    name: String,
    count: u64,
    p50: f64,
    p99: f64,
}

/// One rendered-frame's worth of parsed telemetry. Absent gauges (file
/// mode has no daemon to ask) render as `-`.
#[derive(Default)]
struct Frame {
    gauges: BTreeMap<String, f64>,
    counters: BTreeMap<String, f64>,
    hists: Vec<HistRow>,
}

/// `snoop top (--url URL | --metrics FILE) [--interval-ms N] [--once]`.
///
/// # Errors
///
/// Usage errors for missing/conflicting sources; poll errors for an
/// unreachable daemon or unreadable file.
pub fn cmd_top(args: &ParsedArgs) -> Result<String, String> {
    let url = args.flag_str("url", "");
    let file = args.flag_str("metrics", "");
    let source = match (url.is_empty(), file.is_empty()) {
        (false, true) => Source::Daemon { addr: strip_scheme(&url)? },
        (true, false) => Source::File { path: file },
        (true, true) => {
            return Err(
                "top needs a source: --url http://HOST:PORT or --metrics FILE".to_string()
            )
        }
        (false, false) => {
            return Err("--url and --metrics are mutually exclusive".to_string())
        }
    };
    let interval = Duration::from_millis(args.flag_num::<u64>("interval-ms", 1000)?.max(100));

    if args.switch("once") {
        let frame = poll(&source)?;
        return Ok(render(&frame, &source, None));
    }

    // Live loop: clear + home between frames, rate from the requests
    // delta. A failed poll after a successful one usually means the
    // daemon exited — report and stop rather than spinning.
    let mut previous: Option<(f64, Instant)> = None;
    loop {
        let frame = poll(&source)?;
        let now = Instant::now();
        let requests = frame.gauges.get("snoop_http_requests_total").copied();
        let rps = match (previous, requests) {
            (Some((prev, at)), Some(cur)) => {
                let dt = now.duration_since(at).as_secs_f64();
                (dt > 0.0).then(|| (cur - prev).max(0.0) / dt)
            }
            _ => None,
        };
        if let Some(cur) = requests {
            previous = Some((cur, now));
        }
        let body = render(&frame, &source, rps);
        // \x1b[2J clears, \x1b[H homes the cursor: a full redraw per
        // frame, no terminal library needed.
        print!("\x1b[2J\x1b[H{body}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

/// Accepts `http://host:port`, `host:port` or `host:port/` and returns
/// the bare `host:port`.
fn strip_scheme(url: &str) -> Result<String, String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    if let Some(stripped) = rest.strip_prefix("https://") {
        return Err(format!("snoop serve speaks plain http, not https ({stripped})"));
    }
    let addr = rest.trim_end_matches('/');
    if addr.is_empty() || !addr.contains(':') {
        return Err(format!("--url needs host:port, got {url:?}"));
    }
    Ok(addr.to_string())
}

fn poll(source: &Source) -> Result<Frame, String> {
    match source {
        Source::Daemon { addr } => {
            let body = http_get(addr, "/metrics?format=prometheus")?;
            Ok(parse_exposition(&body))
        }
        Source::File { path } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_metrics_json(&text).map_err(|e| format!("{path}: {e}"))
        }
    }
}

/// One blocking HTTP/1.1 GET; the daemon closes the connection after
/// each response, so reading to EOF captures the whole body.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("cannot read response from {addr}: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(format!("{addr}{path} answered {status}: {}", body.trim()));
    }
    Ok(body.to_string())
}

/// Parses the subset of the Prometheus text exposition the daemon
/// emits: `name value` and `name{label="...",...} value` lines.
fn parse_exposition(body: &str) -> Frame {
    let mut frame = Frame::default();
    // Bucket accumulation per histogram name, in exposition order
    // (ascending `le`, `+Inf` last).
    let mut buckets: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<String, u64> = BTreeMap::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else { continue };
        let Ok(value) = value.parse::<f64>() else { continue };
        match series.split_once('{') {
            None => {
                frame.gauges.insert(series.to_string(), value);
            }
            Some((metric, labels)) => {
                let labels = parse_labels(labels.trim_end_matches('}'));
                let name = labels.get("name").cloned().unwrap_or_default();
                match metric {
                    "snoop_hist_bucket" => {
                        let le = match labels.get("le").map(String::as_str) {
                            Some("+Inf") => f64::INFINITY,
                            Some(le) => le.parse().unwrap_or(f64::INFINITY),
                            None => continue,
                        };
                        buckets.entry(name).or_default().push((le, value as u64));
                    }
                    "snoop_hist_count" => {
                        hist_counts.insert(name, value as u64);
                    }
                    "snoop_counter_total" => {
                        frame.counters.insert(name, value);
                    }
                    "snoop_requests_total" => {
                        let endpoint =
                            labels.get("endpoint").cloned().unwrap_or_default();
                        let status = labels.get("status").cloned().unwrap_or_default();
                        frame
                            .counters
                            .insert(format!("serve.red.{endpoint}.{status}"), value);
                    }
                    _ => {}
                }
            }
        }
    }
    for (name, series) in buckets {
        let count = hist_counts.get(&name).copied().unwrap_or(0);
        frame.hists.push(HistRow {
            p50: bucket_quantile(&series, count, 0.50),
            p99: bucket_quantile(&series, count, 0.99),
            name,
            count,
        });
    }
    frame
}

/// Parses `k="v",k2="v2"` with exposition escapes in values.
fn parse_labels(text: &str) -> BTreeMap<String, String> {
    let mut labels = BTreeMap::new();
    let mut chars = text.chars().peekable();
    loop {
        let key: String =
            chars.by_ref().take_while(|&c| c != '=').collect::<String>();
        let key = key.trim_matches(',').trim().to_string();
        if key.is_empty() {
            break;
        }
        if chars.next() != Some('"') {
            break;
        }
        let mut value = String::new();
        while let Some(c) = chars.next() {
            match c {
                '"' => break,
                '\\' => match chars.next() {
                    Some('n') => value.push('\n'),
                    Some(other) => value.push(other),
                    None => break,
                },
                c => value.push(c),
            }
        }
        labels.insert(key, value);
        if chars.peek().is_none() {
            break;
        }
    }
    labels
}

/// Reads a quantile off cumulative bucket counts: the upper bound of
/// the first bucket reaching rank `ceil(q * count)` (the terminal
/// `+Inf` bucket reports the previous finite bound).
fn bucket_quantile(buckets: &[(f64, u64)], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut last_finite = 0.0;
    for &(le, cumulative) in buckets {
        if cumulative >= target {
            return if le.is_finite() { le } else { last_finite };
        }
        if le.is_finite() {
            last_finite = le;
        }
    }
    last_finite
}

/// Parses a `snoop-metrics-v2` (or `-v1`, histogram-free) JSON file
/// into the same frame shape the daemon scrape produces.
fn parse_metrics_json(text: &str) -> Result<Frame, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = doc.get("schema").and_then(JsonValue::as_str).unwrap_or("");
    if schema != snoop_numeric::probe::SCHEMA && schema != snoop_numeric::probe::SCHEMA_V1 {
        return Err(format!(
            "expected a snoop-metrics-v1/-v2 file, got schema {schema:?}"
        ));
    }
    let mut frame = Frame::default();
    if let Some(counters) = doc.get("counters").and_then(JsonValue::as_object) {
        for (name, value) in counters {
            if let Some(v) = value.as_f64() {
                frame.counters.insert(name.clone(), v);
            }
        }
    }
    if let Some(hists) = doc.get("histograms").and_then(JsonValue::as_object) {
        for (name, h) in hists {
            let get = |k: &str| h.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
            frame.hists.push(HistRow {
                name: name.clone(),
                count: get("count") as u64,
                p50: get("p50"),
                p99: get("p99"),
            });
        }
    }
    Ok(frame)
}

/// Renders one dashboard frame as plain text (the `--once` output; the
/// live loop adds only the clear-screen prefix).
fn render(frame: &Frame, source: &Source, rps: Option<f64>) -> String {
    let title = match source {
        Source::Daemon { addr } => format!("snoop top — http://{addr}"),
        Source::File { path } => format!("snoop top — {path}"),
    };
    let gauge = |name: &str| frame.gauges.get(name).copied();
    let fmt_opt = |v: Option<f64>| match v {
        Some(v) if v == v.trunc() && v.abs() < 1e15 => format!("{v}"),
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    };

    let mut out = title;
    if let Some(uptime) = gauge("snoop_uptime_seconds") {
        let _ = write!(out, "  (up {uptime:.1}s)");
    }
    out.push('\n');

    let _ = writeln!(
        out,
        "  queue {}/{}  inflight {}/{} workers{}  requests {}{}  429s {}",
        fmt_opt(gauge("snoop_queue_depth")),
        fmt_opt(gauge("snoop_queue_bound")),
        fmt_opt(gauge("snoop_inflight_requests")),
        fmt_opt(gauge("snoop_workers")),
        match (gauge("snoop_inflight_requests"), gauge("snoop_workers")) {
            (Some(inflight), Some(workers)) if workers > 0.0 =>
                format!(" ({:.0}% util)", inflight / workers * 100.0),
            _ => String::new(),
        },
        fmt_opt(gauge("snoop_http_requests_total")),
        match rps {
            Some(rps) => format!(" ({rps:.1} rps)"),
            None => String::new(),
        },
        fmt_opt(gauge("snoop_http_rejected_total")),
    );

    let hits = frame.counters.get("engine.cache.hits").copied().unwrap_or(0.0);
    let misses = frame.counters.get("engine.cache.misses").copied().unwrap_or(0.0);
    if hits + misses > 0.0 {
        let _ = writeln!(
            out,
            "  cache hit {:.1}% (hits {hits} misses {misses})",
            hits / (hits + misses) * 100.0
        );
    }

    if !frame.hists.is_empty() {
        let width =
            frame.hists.iter().map(|h| h.name.len()).max().unwrap_or(9).max(9);
        let _ = writeln!(
            out,
            "  {:<width$}  {:>8}  {:>10}  {:>10}",
            "histogram", "count", "p50", "p99"
        );
        for h in &frame.hists {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>8}  {:>10.3}  {:>10.3}",
                h.name, h.count, h.p50, h.p99
            );
        }
    }

    // RED summary: one line per endpoint with its status-class counts.
    let mut red: BTreeMap<&str, Vec<(&str, f64)>> = BTreeMap::new();
    for (name, value) in &frame.counters {
        if let Some(rest) = name.strip_prefix("serve.red.") {
            if let Some((endpoint, class)) = rest.split_once('.') {
                red.entry(endpoint).or_default().push((class, *value));
            }
        }
    }
    if !red.is_empty() {
        out.push_str("  requests by endpoint:\n");
        for (endpoint, classes) in red {
            let detail: Vec<String> =
                classes.iter().map(|(class, n)| format!("{class}={n}")).collect();
            let _ = writeln!(out, "    {endpoint:<10} {}", detail.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_scheme_accepts_common_spellings() {
        assert_eq!(strip_scheme("http://127.0.0.1:7077").unwrap(), "127.0.0.1:7077");
        assert_eq!(strip_scheme("127.0.0.1:7077/").unwrap(), "127.0.0.1:7077");
        assert!(strip_scheme("localhost").is_err());
        assert!(strip_scheme("https://x:1").is_err());
    }

    #[test]
    fn exposition_parses_into_a_frame() {
        let body = "\
# TYPE snoop_queue_depth gauge
snoop_queue_depth 3
# TYPE snoop_http_requests_total counter
snoop_http_requests_total 41
# TYPE snoop_requests_total counter
snoop_requests_total{endpoint=\"eval\",status=\"2xx\"} 5
# TYPE snoop_counter_total counter
snoop_counter_total{name=\"engine.cache.hits\"} 7
# TYPE snoop_hist histogram
snoop_hist_bucket{name=\"serve.queue_wait_ms\",le=\"1\"} 2
snoop_hist_bucket{name=\"serve.queue_wait_ms\",le=\"4\"} 9
snoop_hist_bucket{name=\"serve.queue_wait_ms\",le=\"+Inf\"} 10
snoop_hist_sum{name=\"serve.queue_wait_ms\"} 30
snoop_hist_count{name=\"serve.queue_wait_ms\"} 10
";
        let frame = parse_exposition(body);
        assert_eq!(frame.gauges.get("snoop_queue_depth"), Some(&3.0));
        assert_eq!(frame.counters.get("serve.red.eval.2xx"), Some(&5.0));
        assert_eq!(frame.counters.get("engine.cache.hits"), Some(&7.0));
        assert_eq!(frame.hists.len(), 1);
        let h = &frame.hists[0];
        assert_eq!(h.name, "serve.queue_wait_ms");
        assert_eq!(h.count, 10);
        assert_eq!(h.p50, 4.0, "rank 5 falls in the le=4 bucket");
        assert_eq!(h.p99, 4.0, "+Inf bucket reports the last finite bound");
    }

    #[test]
    fn label_escapes_round_trip() {
        let labels = parse_labels("name=\"a\\\\b\\\"c\\nd\",le=\"+Inf\"");
        assert_eq!(labels.get("name").unwrap(), "a\\b\"c\nd");
        assert_eq!(labels.get("le").unwrap(), "+Inf");
    }

    #[test]
    fn metrics_file_mode_reads_v2_histograms() {
        let text = r#"{
  "schema": "snoop-metrics-v2",
  "spans": {},
  "counters": {"engine.cache.hits": 3, "engine.cache.misses": 1},
  "events": {},
  "histograms": {
    "fixed_point.iterations": {"count": 12, "rejected": 0, "sum": 100.0,
      "mean": 8.3, "min": 5.0, "max": 11.0, "p50": 8.0, "p90": 10.0,
      "p99": 11.0, "p999": 11.0, "buckets": [[11.0, 12]]}
  }
}"#;
        let frame = parse_metrics_json(text).unwrap();
        assert_eq!(frame.hists.len(), 1);
        assert_eq!(frame.hists[0].p99, 11.0);
        let body = render(&frame, &Source::File { path: "m.json".to_string() }, None);
        assert!(body.contains("fixed_point.iterations"), "{body}");
        assert!(body.contains("cache hit 75.0%"), "{body}");
        assert!(!body.contains('\x1b'), "--once output must be escape-free: {body:?}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(parse_metrics_json("{\"schema\": \"other\"}").is_err());
        assert!(parse_metrics_json("not json").is_err());
    }

    #[test]
    fn bucket_quantile_clamps_and_handles_empty() {
        assert_eq!(bucket_quantile(&[], 0, 0.5), 0.0);
        let buckets = [(1.0, 5u64), (2.0, 10u64), (f64::INFINITY, 10u64)];
        assert_eq!(bucket_quantile(&buckets, 10, 0.5), 1.0);
        assert_eq!(bucket_quantile(&buckets, 10, 0.99), 2.0);
    }
}
