//! End-to-end tests of the `snoop` binary itself (process spawn, exit
//! codes, stdout/stderr), complementing the in-process dispatcher tests.

use std::process::Command;

fn snoop(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_snoop"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_arguments_prints_help_and_succeeds() {
    let out = snoop(&[]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: snoop"));
}

#[test]
fn solve_prints_solution() {
    let out = snoop(&["solve", "--protocol", "WO+1", "--sharing", "5", "--n", "10"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("speedup"));
    assert!(stdout.contains("WO+1"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = snoop(&["bogus"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bogus"));
    assert!(stderr.contains("snoop help"));
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let out = snoop(&["solve", "--n", "many"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--n"));
}

#[test]
fn figure_csv_is_parseable() {
    let out = snoop(&["figure", "--csv"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let header = lines.next().expect("header");
    let columns = header.split(',').count();
    for line in lines {
        assert_eq!(line.split(',').count(), columns, "ragged CSV line: {line}");
    }
}

#[test]
fn eval_repeat_run_is_fully_cached_and_byte_identical() {
    let dir = std::env::temp_dir().join("snoop_eval_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache.json");
    let _ = std::fs::remove_file(&cache);
    // The checked-in example batch, resolved relative to the workspace root.
    let scenarios = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/example.json");

    let args = [
        "eval",
        "--scenarios",
        scenarios,
        "--backends",
        "mva",
        "--cache",
        cache.to_str().unwrap(),
    ];
    let first = snoop(&args);
    assert!(first.status.success(), "{}", String::from_utf8_lossy(&first.stderr));
    let stderr1 = String::from_utf8_lossy(&first.stderr);
    assert!(stderr1.contains("hits=0"), "{stderr1}");
    assert!(cache.exists());

    let second = snoop(&args);
    assert!(second.status.success());
    assert_eq!(first.stdout, second.stdout, "repeat stdout must be byte-identical");
    let stderr2 = String::from_utf8_lossy(&second.stderr);
    assert!(stderr2.contains("hit_rate=100.0%"), "{stderr2}");
    assert!(stderr2.contains("misses=0"), "{stderr2}");
}

#[test]
fn eval_without_scenarios_fails_cleanly() {
    let out = snoop(&["eval"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scenarios"));
}

#[test]
fn dot_output_pipes_cleanly() {
    let out = snoop(&["dot", "--protocol", "berkeley"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.trim_end().ends_with('}'));
}
