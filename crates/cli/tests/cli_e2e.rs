//! End-to-end tests of the `snoop` binary itself (process spawn, exit
//! codes, stdout/stderr), complementing the in-process dispatcher tests.

use std::process::Command;

fn snoop(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_snoop"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_arguments_prints_help_and_succeeds() {
    let out = snoop(&[]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: snoop"));
}

#[test]
fn solve_prints_solution() {
    let out = snoop(&["solve", "--protocol", "WO+1", "--sharing", "5", "--n", "10"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("speedup"));
    assert!(stdout.contains("WO+1"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = snoop(&["bogus"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bogus"));
    assert!(stderr.contains("snoop help"));
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let out = snoop(&["solve", "--n", "many"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--n"));
}

#[test]
fn figure_csv_is_parseable() {
    let out = snoop(&["figure", "--csv"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let header = lines.next().expect("header");
    let columns = header.split(',').count();
    for line in lines {
        assert_eq!(line.split(',').count(), columns, "ragged CSV line: {line}");
    }
}

#[test]
fn dot_output_pipes_cleanly() {
    let out = snoop(&["dot", "--protocol", "berkeley"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.trim_end().ends_with('}'));
}
