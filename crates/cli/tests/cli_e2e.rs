//! End-to-end tests of the `snoop` binary itself (process spawn, exit
//! codes, stdout/stderr), complementing the in-process dispatcher tests.

use std::process::Command;

fn snoop(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_snoop"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_arguments_prints_help_and_succeeds() {
    let out = snoop(&[]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: snoop"));
}

#[test]
fn solve_prints_solution() {
    let out = snoop(&["solve", "--protocol", "WO+1", "--sharing", "5", "--n", "10"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("speedup"));
    assert!(stdout.contains("WO+1"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = snoop(&["bogus"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bogus"));
    assert!(stderr.contains("snoop help"));
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let out = snoop(&["solve", "--n", "many"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--n"));
}

#[test]
fn figure_csv_is_parseable() {
    let out = snoop(&["figure", "--csv"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let header = lines.next().expect("header");
    let columns = header.split(',').count();
    for line in lines {
        assert_eq!(line.split(',').count(), columns, "ragged CSV line: {line}");
    }
}

#[test]
fn eval_repeat_run_is_fully_cached_and_byte_identical() {
    let dir = std::env::temp_dir().join("snoop_eval_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache.json");
    let _ = std::fs::remove_file(&cache);
    // The checked-in example batch, resolved relative to the workspace root.
    let scenarios = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/example.json");

    let args = [
        "eval",
        "--scenarios",
        scenarios,
        "--backends",
        "mva",
        "--cache",
        cache.to_str().unwrap(),
    ];
    let first = snoop(&args);
    assert!(first.status.success(), "{}", String::from_utf8_lossy(&first.stderr));
    let stderr1 = String::from_utf8_lossy(&first.stderr);
    assert!(stderr1.contains("hits=0"), "{stderr1}");
    assert!(cache.exists());

    let second = snoop(&args);
    assert!(second.status.success());
    assert_eq!(first.stdout, second.stdout, "repeat stdout must be byte-identical");
    let stderr2 = String::from_utf8_lossy(&second.stderr);
    assert!(stderr2.contains("hit_rate=100.0%"), "{stderr2}");
    assert!(stderr2.contains("misses=0"), "{stderr2}");
}

#[test]
fn probe_ring_env_shrinks_rings_and_reports_capacity_drops() {
    let dir = std::env::temp_dir().join("snoop_ring_env_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.json");
    let _ = std::fs::remove_file(&metrics);

    // A validate run pushes the whole residual trajectory through the
    // event rings; with SNOOP_PROBE_RING=2 every ring keeps only the
    // last two samples and counts the rest as capacity drops.
    let out = Command::new(env!("CARGO_BIN_EXE_snoop"))
        .args(["validate", "--n", "8", "--metrics-out", metrics.to_str().unwrap()])
        .env("SNOOP_PROBE_RING", "2")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"schema\": \"snoop-metrics-v2\""), "{json}");
    assert!(json.contains("fixed_point.residual_trajectory"), "{json}");
    // At least one ring must have shed samples to the tiny capacity,
    // and none may exceed it.
    let mut saw_drop = false;
    for piece in json.split("\"dropped_capacity\": ").skip(1) {
        let n: u64 = piece
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap();
        saw_drop |= n > 0;
    }
    assert!(saw_drop, "expected a nonzero dropped_capacity in {json}");
    // The profile table on stderr surfaces the drop column too.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drop-cap"), "{stderr}");
}

#[test]
fn eval_without_scenarios_fails_cleanly() {
    let out = snoop(&["eval"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scenarios"));
}

#[test]
fn eval_trace_out_emits_valid_chrome_trace() {
    use snoop_numeric::json::JsonValue;

    let dir = std::env::temp_dir().join("snoop_trace_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let _ = std::fs::remove_file(&trace_path);
    let scenarios = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/example.json");

    let out = snoop(&[
        "eval",
        "--scenarios",
        scenarios,
        "--backends",
        "mva",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trace:"), "{stderr}");

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc = JsonValue::parse(&text).expect("trace file is valid JSON");
    assert_eq!(
        doc.get("otherData").and_then(|d| d.get("schema")).and_then(JsonValue::as_str),
        Some("snoop-trace-v1")
    );
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");

    // Every event is well-formed, timestamps are monotone, and per-thread
    // begin/end events nest like a stack.
    let mut last_ts = f64::NEG_INFINITY;
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> =
        std::collections::BTreeMap::new();
    let mut saw_job_begin = false;
    let mut saw_cache_arg = false;
    for event in events {
        let name = event.get("name").and_then(JsonValue::as_str).expect("name").to_string();
        let phase = event.get("ph").and_then(JsonValue::as_str).expect("ph");
        let ts = event.get("ts").and_then(JsonValue::as_f64).expect("ts");
        let tid = event.get("tid").and_then(JsonValue::as_u64).expect("tid");
        assert!(ts >= last_ts, "timestamps not monotone at {name}");
        last_ts = ts;
        let stack = stacks.entry(tid).or_default();
        match phase {
            "B" => {
                if name == "engine.job" {
                    saw_job_begin = true;
                    let args = event.get("args").expect("engine.job args");
                    let scenario =
                        args.get("scenario").and_then(JsonValue::as_str).expect("scenario arg");
                    assert_eq!(scenario.len(), 16, "scenario hash is 16 hex digits");
                    assert_eq!(
                        args.get("backend").and_then(JsonValue::as_str),
                        Some("mva")
                    );
                }
                stack.push(name);
            }
            "E" => {
                let open = stack.pop().unwrap_or_else(|| panic!("E without B: {name}"));
                assert_eq!(open, name, "mismatched span nesting on tid {tid}");
                if name == "engine.job" {
                    let cache = event
                        .get("args")
                        .and_then(|a| a.get("cache"))
                        .and_then(JsonValue::as_str)
                        .expect("cache arg on engine.job end");
                    assert!(cache == "hit" || cache == "miss", "cache={cache}");
                    saw_cache_arg = true;
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} has unmatched begins: {stack:?}");
    }
    assert!(saw_job_begin, "no engine.job span in trace");
    assert!(saw_cache_arg, "no cache hit/miss arg in trace");
}

#[test]
fn perf_diff_gate_passes_and_fails_end_to_end() {
    let dir = std::env::temp_dir().join("snoop_perf_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let same = dir.join("same.json");
    let slow = dir.join("slow.json");
    std::fs::write(&base, r#"{"serial_ms": 100.0, "parallel_ms": 40.0}"#).unwrap();
    std::fs::write(&same, r#"{"serial_ms": 100.0, "parallel_ms": 40.0}"#).unwrap();
    std::fs::write(&slow, r#"{"serial_ms": 101.0, "parallel_ms": 90.0}"#).unwrap();

    let ok = snoop(&["perf", "diff", base.to_str().unwrap(), same.to_str().unwrap()]);
    assert!(ok.status.success(), "{}", String::from_utf8_lossy(&ok.stderr));
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("ok: no stage regressed"), "{stdout}");

    let bad = snoop(&[
        "perf",
        "diff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--threshold-pct",
        "25",
    ]);
    assert!(!bad.status.success());
    let stdout = String::from_utf8_lossy(&bad.stdout);
    // The delta table goes to stdout even on failure; only the offending
    // stage is flagged.
    assert!(stdout.contains("delta %"), "{stdout}");
    assert!(stdout.contains("parallel_ms"), "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    let serial_row =
        stdout.lines().find(|l| l.trim_start().starts_with("serial_ms")).unwrap();
    assert!(!serial_row.contains("REGRESSED"), "{stdout}");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("perf regression"), "{stderr}");
    assert!(!stderr.contains("snoop help"), "gate verdicts are not usage errors");
}

#[test]
fn dot_output_pipes_cleanly() {
    let out = snoop(&["dot", "--protocol", "berkeley"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.trim_end().ends_with('}'));
}

#[test]
fn calibrate_trace_validate_succeeds_end_to_end() {
    let trace =
        format!("{}/../../scenarios/traces/mesi_small_p0.trace", env!("CARGO_MANIFEST_DIR"));
    let out = snoop(&["calibrate", "--trace", &trace, "--validate", "--backends", "mva"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("workload parameters calibrated"), "{stdout}");
    assert!(stdout.contains("validation: trace-driven simulation"), "{stdout}");
}

#[test]
fn calibrate_malformed_trace_exits_nonzero_with_caret_diagnostic() {
    let trace =
        format!("{}/../../scenarios/traces/malformed.trace", env!("CARGO_MANIFEST_DIR"));
    let out = snoop(&["calibrate", "--trace", &trace]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed.trace:3:3"), "{stderr}");
    assert!(stderr.contains('^'), "{stderr}");
}
