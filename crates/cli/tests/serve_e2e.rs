//! End-to-end tests of `snoop serve`: a real daemon process on an
//! ephemeral port, driven over real TCP.
//!
//! Covers the service contract: concurrent clients stream batch
//! results, a repeated batch is answered entirely from the warm cache
//! (verified through `GET /metrics`, not trusted from the response),
//! a full submission queue answers `429` with `Retry-After`, and
//! shutdown — administrative or SIGTERM — drains in-flight work and
//! exits cleanly.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use snoop_mva::engine::Scenario;
use snoop_protocol::ModSet;
use snoop_workload::params::SharingLevel;

/// A running daemon: the child process plus its parsed listen address.
/// Kills the process on drop so a failed test cannot leak a daemon.
struct Daemon {
    child: Child,
    addr: String,
    /// Kept open so the daemon's stderr writes never hit a closed pipe.
    _stderr: BufReader<std::process::ChildStderr>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Boots `snoop serve` on an ephemeral port and parses the actual
/// address from the startup line on stderr.
fn boot(extra_args: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_snoop"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut addr = String::new();
    for _ in 0..20 {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read startup line") == 0 {
            break;
        }
        if let Some(rest) = line.trim().strip_prefix("serve: listening on http://") {
            addr = rest.to_string();
            break;
        }
    }
    assert!(!addr.is_empty(), "daemon never printed its listen address");
    Daemon { child, addr, _stderr: stderr }
}

fn batch_json(sizes: &[usize]) -> String {
    let scenarios: Vec<Scenario> = sizes
        .iter()
        .map(|&n| Scenario::appendix_a(ModSet::new(), SharingLevel::Five, n))
        .collect();
    Scenario::batch_to_json(&scenarios)
}

/// One full HTTP request over a fresh connection; returns
/// `(status, headers, body)` with chunked transfer decoding applied.
fn roundtrip(addr: &str, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, String, String) {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response head");
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status code");
    let body = if head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        decode_chunked(body)
    } else {
        body.to_string()
    };
    (status, head.to_string(), body)
}

fn decode_chunked(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else { break };
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..];
    }
    out
}

fn eval_request(batch: &str) -> String {
    format!(
        "POST /eval HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{batch}",
        batch.len()
    )
}

/// Reads a counter out of the `/metrics` JSON (`"name": 42` under the
/// pretty-printed snapshot).
fn counter(metrics: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\": ");
    let at = metrics.find(&needle).unwrap_or_else(|| panic!("{name} not in metrics"));
    metrics[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value")
}

#[test]
fn concurrent_clients_stream_results_and_the_repeat_batch_is_all_cache_hits() {
    let mut daemon = boot(&[]);
    let batch = batch_json(&[2, 3, 4]);

    // First pass: two clients race on the same fresh batch.
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let addr = daemon.addr.clone();
            let request = eval_request(&batch);
            std::thread::spawn(move || roundtrip(&addr, &request))
        })
        .collect();
    for client in clients {
        let (status, _, body) = client.join().unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.lines().count(), 4, "3 jobs + done line: {body}");
        assert!(body.lines().last().unwrap().contains("\"done\":true"), "{body}");
        assert!(body.contains("\"errors\":0"), "{body}");
    }

    // Second pass: one more client, everything from the warm cache —
    // claimed per line and verified against the probe counters.
    let (status, _, body) = roundtrip(&daemon.addr, &eval_request(&batch));
    assert_eq!(status, 200);
    let result_lines: Vec<&str> =
        body.lines().filter(|l| l.contains("\"evaluation\"")).collect();
    assert_eq!(result_lines.len(), 3, "{body}");
    assert!(result_lines.iter().all(|l| l.contains("\"cached\":true")), "{body}");

    let (status, _, metrics) = roundtrip(&daemon.addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(metrics.contains("snoop-metrics-v2"), "{metrics}");
    // 9 jobs total across 3 eval requests. The two first-pass clients
    // race on a cold cache with no cross-batch claim, so a scenario
    // both consult before either publishes is computed twice — each
    // client computes a scenario at most once, and every job that was
    // not computed is a cache hit.
    assert_eq!(counter(&metrics, "engine.jobs"), 9);
    let computed = counter(&metrics, "engine.computed");
    assert!((3..=6).contains(&computed), "computed = {computed}");
    assert_eq!(counter(&metrics, "engine.cache.hits"), 9 - computed);
    assert_eq!(counter(&metrics, "serve.requests.eval"), 3);
    // The 2-client load moved the RED counters and the queue-wait and
    // service-time histograms: every eval answered 2xx, and one wait /
    // service sample exists per routed request so far.
    assert_eq!(counter(&metrics, "serve.red.eval.2xx"), 3);
    // A request's own RED increment lands after its snapshot, so the
    // previous scrape shows up in the next one.
    let (_, _, second) = roundtrip(&daemon.addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(counter(&second, "serve.red.metrics.2xx") >= 1, "{second}");
    let wait_section = metrics
        .split("\"histograms\"")
        .nth(1)
        .expect("v2 snapshot has a histograms section");
    assert!(wait_section.contains("\"serve.queue_wait_ms\""), "{metrics}");
    assert!(wait_section.contains("\"serve.service_ms.eval\""), "{metrics}");
    assert!(wait_section.contains("\"engine.job_ms.mva\""), "{metrics}");
    // Queue-wait histogram count covers at least the 4 requests routed
    // before this scrape (3 evals + this connection's predecessors).
    let hist_count = {
        let at = wait_section.find("\"serve.queue_wait_ms\"").unwrap();
        counter(&wait_section[at..], "count")
    };
    assert!(hist_count >= 4, "queue-wait histogram barely moved: {hist_count}");

    // Administrative shutdown: the daemon exits cleanly and prints its
    // lifetime summary on stdout.
    let (status, _, _) =
        roundtrip(&daemon.addr, "POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 200);
    let code = daemon.child.wait().expect("daemon exits");
    assert!(code.success(), "daemon exit: {code:?}");
    let mut stdout = String::new();
    daemon.child.stdout.take().unwrap().read_to_string(&mut stdout).unwrap();
    assert!(stdout.contains("serve:"), "{stdout}");
    assert!(stdout.contains("rejected"), "{stdout}");
}

#[test]
fn full_queue_answers_429_and_sigterm_drains_in_flight_work() {
    let daemon = boot(&["--threads", "1", "--queue-bound", "1"]);
    let batch = batch_json(&[2]);

    // Occupy the single worker with a half-sent request…
    let mut holder = TcpStream::connect(&daemon.addr).unwrap();
    holder.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    holder.write_all(b"POST /eval HTTP/1.1\r\nHost: t\r\n").unwrap();
    holder.flush().unwrap();
    std::thread::sleep(Duration::from_millis(300)); // worker picks it up

    // …fill the one queue slot with a complete request…
    let mut queued = TcpStream::connect(&daemon.addr).unwrap();
    queued.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    queued.write_all(eval_request(&batch).as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // acceptor enqueues it

    // …so the next connection is turned away with Retry-After.
    let (status, head, body) = roundtrip(&daemon.addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 429, "{body}");
    assert!(head.contains("Retry-After: 1"), "{head}");
    assert!(body.contains("queue is full"), "{body}");

    // SIGTERM now: the held and queued requests are in flight /
    // accepted, and graceful shutdown must finish both.
    let pid = daemon.child.id().to_string();
    let killed = Command::new("kill").args(["-TERM", &pid]).status().expect("kill runs");
    assert!(killed.success());

    holder.write_all(format!("Content-Length: {}\r\n\r\n{batch}", batch.len()).as_bytes()).unwrap();
    let mut raw = Vec::new();
    holder.read_to_end(&mut raw).unwrap();
    let (status, _, body) = parse_response(&raw);
    assert_eq!(status, 200, "held request must complete through shutdown: {body}");
    assert!(body.contains("\"done\":true"), "{body}");

    let mut raw = Vec::new();
    queued.read_to_end(&mut raw).unwrap();
    let (status, _, body) = parse_response(&raw);
    assert_eq!(status, 200, "queued request must drain through shutdown: {body}");
    assert!(body.contains("\"done\":true"), "{body}");

    // A drained daemon exits 0 (not killed by the signal).
    let mut daemon = daemon;
    let code = daemon.child.wait().expect("daemon exits");
    assert!(code.success(), "daemon exit after SIGTERM: {code:?}");
}

#[test]
fn malformed_batches_are_client_errors_not_crashes() {
    let mut daemon = boot(&[]);

    let request = "POST /eval HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\nnot json!";
    let (status, _, body) = roundtrip(&daemon.addr, request);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"), "{body}");

    let (status, _, _) = roundtrip(&daemon.addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 404);

    // The daemon survived both and still serves.
    let (status, _, body) = roundtrip(&daemon.addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, _, _) =
        roundtrip(&daemon.addr, "POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 200);
    assert!(daemon.child.wait().unwrap().success());
}

#[test]
fn prometheus_scrape_and_snoop_top_render_against_a_live_daemon() {
    let mut daemon = boot(&["--git-sha", "e2etest1"]);

    // Drive load so histograms and RED counters have data.
    let batch = batch_json(&[2, 3]);
    let (status, _, _) = roundtrip(&daemon.addr, &eval_request(&batch));
    assert_eq!(status, 200);

    // The enriched health body.
    let (status, _, health) = roundtrip(&daemon.addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    for field in [
        "\"status\":\"ok\"",
        "\"queue_depth\":",
        "\"uptime_seconds\":",
        "\"version\":",
        "\"git_sha\":\"e2etest1\"",
        "\"workers\":",
        "\"queue_bound\":",
        "\"requests\":",
    ] {
        assert!(health.contains(field), "missing {field}: {health}");
    }

    // A valid Prometheus scrape with native histogram series.
    let (status, head, prom) =
        roundtrip(&daemon.addr, "GET /metrics?format=prometheus HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert!(prom.contains("# TYPE snoop_queue_depth gauge"), "{prom}");
    assert!(prom.contains("snoop_requests_total{endpoint=\"eval\",status=\"2xx\"} 1"), "{prom}");
    assert!(prom.contains("snoop_hist_bucket{name=\"serve.queue_wait_ms\",le=\"+Inf\"}"), "{prom}");
    assert!(prom.contains("snoop_hist_count{name=\"engine.job_ms.mva\"} 2"), "{prom}");

    // `snoop top --once` renders one escape-free frame off the scrape.
    let top = Command::new(env!("CARGO_BIN_EXE_snoop"))
        .args(["top", "--url", &format!("http://{}", daemon.addr), "--once"])
        .output()
        .expect("snoop top runs");
    let frame = String::from_utf8_lossy(&top.stdout);
    assert!(top.status.success(), "snoop top failed: {frame}\n{}", String::from_utf8_lossy(&top.stderr));
    assert!(frame.contains("snoop top"), "{frame}");
    assert!(frame.contains("queue 0/64"), "{frame}");
    assert!(frame.contains("workers"), "{frame}");
    assert!(frame.contains("serve.queue_wait_ms"), "{frame}");
    assert!(frame.contains("engine.job_ms.mva"), "{frame}");
    assert!(frame.contains("requests by endpoint:"), "{frame}");
    assert!(!frame.contains('\x1b'), "--once output must be escape-free: {frame:?}");

    let (status, _, _) =
        roundtrip(&daemon.addr, "POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 200);
    assert!(daemon.child.wait().unwrap().success());
}

#[test]
fn access_log_records_requests_as_ndjson() {
    let dir = std::env::temp_dir().join(format!("snoop-e2e-access-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.log");
    let mut daemon = boot(&["--access-log", log_path.to_str().unwrap()]);

    let batch = batch_json(&[2]);
    let (status, _, _) = roundtrip(&daemon.addr, &eval_request(&batch));
    assert_eq!(status, 200);
    let (status, _, _) = roundtrip(&daemon.addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 404);

    let (status, _, _) =
        roundtrip(&daemon.addr, "POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 200);
    assert!(daemon.child.wait().unwrap().success());

    // The daemon flushed the log on graceful exit: one line per request,
    // each a complete JSON object with the documented fields.
    let text = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    for line in &lines {
        for field in ["\"ts\":", "\"method\":", "\"path\":", "\"status\":", "\"bytes\":",
                      "\"queue_wait_ms\":", "\"service_ms\":", "\"jobs\":", "\"cache_hits\":"] {
            assert!(line.contains(field), "missing {field}: {line}");
        }
    }
    assert!(lines[0].contains("\"path\":\"/eval\"") && lines[0].contains("\"jobs\":1"), "{text}");
    assert!(lines[1].contains("\"status\":404"), "{text}");
    assert!(lines[2].contains("\"path\":\"/shutdown\""), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}
