//! End-to-end kill–resume test over `snoop eval --store DIR`.
//!
//! The scenario the durable store exists for: a sweep is killed mid-run
//! (here, deterministically, via the store's `SNOOP_STORE_KILL_AFTER_PUTS`
//! kill-point hook), the rerun with `--resume` executes only the
//! scenarios that never made it to disk, and the final output is
//! byte-identical to a run that was never interrupted. The "only the
//! uncomputed scenarios execute" claim is asserted mechanically through
//! the `engine.computed` probe counter in the `--metrics-out` snapshot.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use snoop_mva::engine::Scenario;
use snoop_protocol::ModSet;
use snoop_workload::params::SharingLevel;

const BIN: &str = env!("CARGO_BIN_EXE_snoop");

/// Total (scenario, backend) jobs in the batch below (MVA backend only).
const TOTAL_JOBS: u64 = 6;

/// Entry publishes the killed run survives before the injected death.
const KILL_AFTER: u64 = 2;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("snoop-store-resume-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Six Appendix-A scenarios across two sharing families, so the batch
/// spans several warm-start groups the way a real sweep does.
fn write_batch(path: &Path) {
    let mut scenarios = Vec::new();
    for sharing in [SharingLevel::Five, SharingLevel::Twenty] {
        for n in [2, 5, 9] {
            scenarios.push(Scenario::appendix_a(ModSet::new(), sharing, n));
        }
    }
    assert_eq!(scenarios.len() as u64, TOTAL_JOBS);
    std::fs::write(path, Scenario::batch_to_json(&scenarios)).unwrap();
}

fn eval(batch: &Path, store: &Path, extra: &[&str], kill_after: Option<u64>) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.arg("eval")
        .arg("--scenarios")
        .arg(batch)
        .arg("--store")
        .arg(store)
        .args(extra);
    match kill_after {
        Some(n) => cmd.env("SNOOP_STORE_KILL_AFTER_PUTS", n.to_string()),
        None => cmd.env_remove("SNOOP_STORE_KILL_AFTER_PUTS"),
    };
    cmd.output().expect("spawn snoop eval")
}

/// Entry files currently on disk under `<store>/shards/`.
fn entries_on_disk(store: &Path) -> usize {
    let mut count = 0;
    for shard in std::fs::read_dir(store.join("shards")).unwrap() {
        for file in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            if file.unwrap().path().extension().is_some_and(|e| e == "entry") {
                count += 1;
            }
        }
    }
    count
}

/// Reads the `engine.computed` counter out of a `snoop-metrics-v1`
/// snapshot (absent counter = nothing computed: the counter is only
/// registered when at least one group executes).
fn computed_jobs(metrics: &Path) -> u64 {
    let text = std::fs::read_to_string(metrics).unwrap();
    text.lines()
        .find_map(|line| {
            let rest = line.trim().strip_prefix("\"engine.computed\": ")?;
            rest.trim_end_matches(',').parse().ok()
        })
        .unwrap_or(0)
}

#[test]
fn killed_sweep_resumes_and_computes_only_the_missing_scenarios() {
    let dir = fresh_dir("kill-resume");
    let batch = dir.join("batch.json");
    write_batch(&batch);

    // Reference: an uninterrupted sweep into its own store.
    let full_metrics = dir.join("full-metrics.json");
    let full = eval(
        &batch,
        &dir.join("store-uninterrupted"),
        &["--metrics-out", full_metrics.to_str().unwrap()],
        None,
    );
    assert!(full.status.success(), "{}", String::from_utf8_lossy(&full.stderr));
    assert_eq!(computed_jobs(&full_metrics), TOTAL_JOBS);

    // The victim: the same sweep, killed at an exact persistence
    // boundary after KILL_AFTER entries were durably published.
    let store = dir.join("store-killed");
    let killed = eval(&batch, &store, &[], Some(KILL_AFTER));
    assert!(!killed.status.success(), "the injected kill must abort the run");
    assert_eq!(killed.status.code(), Some(3), "kill-point exit status");
    assert_eq!(
        entries_on_disk(&store) as u64,
        KILL_AFTER,
        "exactly the pre-kill publishes survive on disk"
    );

    // Resume: only the uncomputed scenarios execute…
    let resume_metrics = dir.join("resume-metrics.json");
    let resumed = eval(
        &batch,
        &store,
        &["--resume", "--metrics-out", resume_metrics.to_str().unwrap()],
        None,
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(resumed.status.success(), "{stderr}");
    assert_eq!(
        computed_jobs(&resume_metrics),
        TOTAL_JOBS - KILL_AFTER,
        "resume recomputes only what the kill lost ({stderr})"
    );
    assert!(
        stderr.contains(&format!("resume: {KILL_AFTER} of {TOTAL_JOBS} job(s) already in store")),
        "resume plan on stderr: {stderr}"
    );

    // …and the merged output is byte-identical to the uninterrupted run.
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&full.stdout),
        "resumed results must be bit-identical to an uninterrupted sweep"
    );
    assert_eq!(entries_on_disk(&store) as u64, TOTAL_JOBS, "the store is now complete");

    // A third run computes nothing at all: everything serves from disk.
    let warm_metrics = dir.join("warm-metrics.json");
    let warm = eval(
        &batch,
        &store,
        &["--resume", "--metrics-out", warm_metrics.to_str().unwrap()],
        None,
    );
    assert!(warm.status.success());
    assert_eq!(computed_jobs(&warm_metrics), 0, "fully-resumed run computes nothing");
    assert_eq!(String::from_utf8_lossy(&warm.stdout), String::from_utf8_lossy(&full.stdout));
}

#[test]
fn corrupted_entries_are_quarantined_and_recomputed_on_resume() {
    let dir = fresh_dir("corrupt-resume");
    let batch = dir.join("batch.json");
    write_batch(&batch);

    let store = dir.join("store");
    let full = eval(&batch, &store, &[], None);
    assert!(full.status.success());
    assert_eq!(entries_on_disk(&store) as u64, TOTAL_JOBS);

    // Damage two entries on disk: flip one byte in the first, truncate
    // the second — exactly what the CI crash-recovery job does with dd.
    let mut entries: Vec<PathBuf> = Vec::new();
    for shard in std::fs::read_dir(store.join("shards")).unwrap() {
        for file in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            let path = file.unwrap().path();
            if path.extension().is_some_and(|e| e == "entry") {
                entries.push(path);
            }
        }
    }
    entries.sort();
    let mut bytes = std::fs::read(&entries[0]).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    std::fs::write(&entries[0], &bytes).unwrap();
    let bytes = std::fs::read(&entries[1]).unwrap();
    std::fs::write(&entries[1], &bytes[..bytes.len() / 2]).unwrap();

    // --store-verify quarantines exactly the two damaged entries, the
    // resumed run recomputes them, and the output still matches.
    let resumed = eval(&batch, &store, &["--resume", "--store-verify"], None);
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(resumed.status.success(), "{stderr}");
    assert!(
        stderr.contains("4 intact, 2 quarantined"),
        "verify scan reports the damage: {stderr}"
    );
    assert_eq!(String::from_utf8_lossy(&resumed.stdout), String::from_utf8_lossy(&full.stdout));
    assert_eq!(entries_on_disk(&store) as u64, TOTAL_JOBS, "damage was re-published");
    assert_eq!(
        std::fs::read_dir(store.join("quarantine")).unwrap().count(),
        2,
        "damaged files are kept for autopsy"
    );
}
