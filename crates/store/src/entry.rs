//! The on-disk entry format and its checksummed decoder.
//!
//! An entry file is three parts, designed so that every physical failure
//! mode maps to a *detectable* decode error:
//!
//! ```text
//! snoop-store-entry-v1 <payload-len> <fnv1a64-of-payload-hex>\n
//! <key>\n
//! <payload bytes, exactly payload-len of them>
//! ```
//!
//! * A torn header (crash mid-write before the rename — should be
//!   impossible under the final name, but `tmp/` debris and hand-damaged
//!   files exist) fails the magic or header parse;
//! * truncation (torn write, `truncate(1)`, short read) leaves fewer
//!   payload bytes than the header promises;
//! * silent corruption (bit flip) fails the checksum;
//! * a key mismatch (renamed or cross-linked file) is caught by
//!   comparing the embedded key against the requested one.
//!
//! The checksum is 64-bit FNV-1a — not cryptographic, but it detects any
//! single-bit flip and any truncation, which is the storage threat model
//! here, and it keeps the crate dependency-free.

use std::fmt;

/// Magic tag opening every entry file.
pub const ENTRY_MAGIC: &str = "snoop-store-entry-v1";

/// Why an entry file could not be decoded. Every variant is treated as
/// "corrupt — quarantine" by the store; the distinction exists for
/// diagnostics and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The file does not start with [`ENTRY_MAGIC`].
    BadMagic,
    /// The header line is structurally malformed.
    BadHeader(String),
    /// The file holds fewer payload bytes than the header promises.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The embedded key differs from the requested key.
    KeyMismatch {
        /// Key stored in the entry.
        found: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "missing {ENTRY_MAGIC:?} magic"),
            DecodeError::BadHeader(why) => write!(f, "malformed header: {why}"),
            DecodeError::Truncated { expected, actual } => {
                write!(f, "truncated payload: expected {expected} bytes, found {actual}")
            }
            DecodeError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: header {expected:016x}, payload {actual:016x}")
            }
            DecodeError::KeyMismatch { found } => {
                write!(f, "entry belongs to key {found:?}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// 64-bit FNV-1a over `bytes` (the same hash the engine uses for
/// scenario content addresses).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes one entry (header, key line, payload). The checksum covers
/// the key line *and* the payload, so a flipped key byte is as detectable
/// as a flipped payload byte.
pub fn encode_entry(key: &str, payload: &[u8]) -> Vec<u8> {
    debug_assert!(!key.contains('\n'), "entry keys must be single-line");
    let mut body = Vec::with_capacity(key.len() + 1 + payload.len());
    body.extend_from_slice(key.as_bytes());
    body.push(b'\n');
    body.extend_from_slice(payload);
    let header = format!("{ENTRY_MAGIC} {} {:016x}\n", payload.len(), fnv1a64(&body));
    let mut out = Vec::with_capacity(header.len() + body.len());
    out.extend_from_slice(header.as_bytes());
    out.append(&mut body);
    out
}

/// Strict lowercase-hex parse (16 digits exactly). `from_str_radix` also
/// accepts uppercase, which would let the case bit of a hex letter flip
/// undetected.
fn parse_checksum(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Decodes and fully validates one entry file.
///
/// `expected_key` of `None` skips the key check (recovery scans don't
/// know the key in advance; they return the embedded one).
///
/// # Errors
///
/// Returns the first [`DecodeError`] encountered; the caller quarantines.
pub fn decode_entry(
    bytes: &[u8],
    expected_key: Option<&str>,
) -> Result<(String, Vec<u8>), DecodeError> {
    let header_end =
        bytes.iter().position(|&b| b == b'\n').ok_or(DecodeError::BadMagic)?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| DecodeError::BadMagic)?;
    let mut parts = header.split(' ');
    if parts.next() != Some(ENTRY_MAGIC) {
        return Err(DecodeError::BadMagic);
    }
    let len: usize = parts
        .next()
        .filter(|s| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| DecodeError::BadHeader("unparseable payload length".into()))?;
    let checksum = parts
        .next()
        .and_then(parse_checksum)
        .ok_or_else(|| DecodeError::BadHeader("unparseable checksum".into()))?;
    if parts.next().is_some() {
        return Err(DecodeError::BadHeader("trailing header fields".into()));
    }

    let rest = &bytes[header_end + 1..];
    let key_end = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| DecodeError::BadHeader("missing key line".into()))?;
    let key = std::str::from_utf8(&rest[..key_end])
        .map_err(|_| DecodeError::BadHeader("key is not UTF-8".into()))?
        .to_string();

    let payload = &rest[key_end + 1..];
    if payload.len() != len {
        return Err(DecodeError::Truncated { expected: len, actual: payload.len() });
    }
    let actual = fnv1a64(rest);
    if actual != checksum {
        return Err(DecodeError::ChecksumMismatch { expected: checksum, actual });
    }
    if let Some(expected) = expected_key {
        if key != expected {
            return Err(DecodeError::KeyMismatch { found: key });
        }
    }
    Ok((key, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let encoded = encode_entry("mva:0011223344556677", b"payload bytes");
        let (key, payload) = decode_entry(&encoded, Some("mva:0011223344556677")).unwrap();
        assert_eq!(key, "mva:0011223344556677");
        assert_eq!(payload, b"payload bytes");
        // Recovery scans decode without knowing the key.
        assert_eq!(decode_entry(&encoded, None).unwrap().0, key);
    }

    #[test]
    fn empty_payload_round_trips() {
        let encoded = encode_entry("k", b"");
        assert_eq!(decode_entry(&encoded, Some("k")).unwrap().1, b"");
    }

    #[test]
    fn truncation_is_detected_at_every_cut_point() {
        let encoded = encode_entry("mva:aa", b"0123456789");
        for cut in 0..encoded.len() {
            let err = decode_entry(&encoded[..cut], Some("mva:aa"))
                .expect_err(&format!("cut at {cut} must not decode"));
            // Any prefix decodes to *some* structured error, never Ok.
            let _ = err.to_string();
        }
    }

    #[test]
    fn single_bit_flips_are_detected_everywhere() {
        let encoded = encode_entry("mva:bb", b"the payload under test");
        for byte in 0..encoded.len() {
            for bit in 0..8 {
                let mut damaged = encoded.clone();
                damaged[byte] ^= 1 << bit;
                assert!(
                    decode_entry(&damaged, Some("mva:bb")).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn key_mismatch_is_reported() {
        let encoded = encode_entry("mva:cc", b"x");
        assert_eq!(
            decode_entry(&encoded, Some("mva:dd")),
            Err(DecodeError::KeyMismatch { found: "mva:cc".into() })
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
