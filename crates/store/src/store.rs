//! [`DiskStore`]: the durable, sharded, crash-safe key-value store.
//!
//! # Layout
//!
//! ```text
//! <root>/
//!   snoop-store.version      # marker: "snoop-store-v1\n"
//!   shards/<hh>/<name>.entry # hh = top byte of fnv1a64(key), hex
//!   tmp/                     # write-temp-then-rename staging
//!   quarantine/              # corrupt entries, moved aside on detection
//!   claims/                  # advisory per-group claim files
//! ```
//!
//! # Crash-safety invariants
//!
//! 1. An entry file only ever appears under its final name via an atomic
//!    `rename(2)` from `tmp/`; readers never observe partial writes.
//! 2. Every entry carries a length and checksum covering its key and
//!    payload; any decode failure quarantines the file and reads as a
//!    miss — corruption is never served and never fatal.
//! 3. `open` never aborts on damage: it sweeps `tmp/` debris and leaves
//!    entry validation to reads (or an explicit [`DiskStore::recover`]
//!    scan). The worst outcome of any single-file damage is
//!    recomputation of that one entry.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::entry::{decode_entry, encode_entry, fnv1a64};
use crate::fs::{RealFs, StoreFs};

/// Contents (first line) of the store marker file.
pub const STORE_VERSION: &str = "snoop-store-v1";

/// File name of the store marker.
pub const STORE_MARKER: &str = "snoop-store.version";

/// Test-only crash hook: when this environment variable holds `N`, the
/// process exits with status 3 immediately after the `N`-th successful
/// entry publish. Deterministic kill-point tests use it to die at an
/// exact persistence boundary; production runs never set it.
pub const KILL_AFTER_PUTS_ENV: &str = "SNOOP_STORE_KILL_AFTER_PUTS";

/// A failure the store could not absorb (all *entry-level* damage is
/// absorbed and surfaces as misses + quarantine instead).
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What the store was doing.
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error text.
        error: String,
    },
    /// The directory exists but is not a compatible store.
    NotAStore {
        /// The directory that was opened.
        path: PathBuf,
        /// The marker contents found (`None`: unreadable).
        found: Option<String>,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, error } => {
                write!(f, "store: cannot {op} {}: {error}", path.display())
            }
            StoreError::NotAStore { path, found } => write!(
                f,
                "store: {} is not a {STORE_VERSION} store (marker: {found:?})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Evict oldest entries beyond this bound after writes (`None`:
    /// unbounded).
    pub max_entries: Option<usize>,
    /// Claims older than this are presumed dead and may be stolen.
    pub stale_claim: Duration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { max_entries: None, stale_claim: Duration::from_secs(300) }
    }
}

/// Monotonic operation accounting (since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Reads served with a validated entry.
    pub hits: u64,
    /// Reads that found nothing (or only damage).
    pub misses: u64,
    /// Entries successfully published.
    pub writes: u64,
    /// Writes that failed before publish (torn write, ENOSPC, …).
    pub write_errors: u64,
    /// Damaged files moved to `quarantine/`.
    pub quarantined: u64,
    /// Reads that failed once but succeeded on the one retry
    /// (transient short reads).
    pub transient_reads: u64,
    /// Entries removed by the size bound.
    pub evictions: u64,
    /// `tmp/` debris files swept at open.
    pub recovered_tmp: u64,
    /// Advisory claims granted.
    pub claims_taken: u64,
    /// Advisory claims refused (held by a live peer).
    pub claims_refused: u64,
    /// Stale claims stolen from presumed-dead peers.
    pub claims_stolen: u64,
}

/// Result of a full [`DiskStore::recover`] scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Entry files examined.
    pub scanned: usize,
    /// Entries that decoded and verified.
    pub intact: usize,
    /// Damaged files moved to `quarantine/`.
    pub quarantined: usize,
}

/// An advisory claim on a unit of work. Dropping releases it. Claims are
/// cooperative only: holding one grants no exclusion guarantee, it just
/// lets N worker processes divide a sweep instead of duplicating it.
pub struct Claim {
    fs: Arc<dyn StoreFs>,
    path: PathBuf,
}

impl std::fmt::Debug for Claim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Claim").field("path", &self.path).finish()
    }
}

impl Drop for Claim {
    fn drop(&mut self) {
        // Best-effort: a leaked claim file is reclaimed via staleness.
        let _ = self.fs.remove_file(&self.path);
    }
}

/// The durable sharded result store. Thread-safe: worker threads persist
/// entries concurrently; cross-process safety comes from rename
/// atomicity and per-entry validation, not locking.
pub struct DiskStore {
    root: PathBuf,
    fs: Arc<dyn StoreFs>,
    config: StoreConfig,
    stats: Mutex<StoreStats>,
    /// Approximate entry count (exact while this process is the only
    /// writer; resynced by `recover`).
    entries: AtomicUsize,
    /// Unique temp-file discriminator within this process.
    temp_seq: AtomicU64,
    /// Successful publishes, for the kill-point hook.
    puts: AtomicU64,
    kill_after: Option<u64>,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("root", &self.root)
            .field("entries", &self.entries.load(Ordering::Relaxed))
            .finish()
    }
}

impl DiskStore {
    /// Opens (creating if necessary) a store on the real filesystem with
    /// default configuration.
    ///
    /// # Errors
    ///
    /// Fails only for directory-level problems: unwritable root, or a
    /// root that carries a foreign marker. Entry damage never fails an
    /// open.
    pub fn open(root: impl AsRef<Path>) -> Result<DiskStore, StoreError> {
        DiskStore::open_with(root, StoreConfig::default(), Arc::new(RealFs))
    }

    /// Opens on the real filesystem with explicit configuration.
    ///
    /// # Errors
    ///
    /// See [`DiskStore::open`].
    pub fn open_config(
        root: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<DiskStore, StoreError> {
        DiskStore::open_with(root, config, Arc::new(RealFs))
    }

    /// Opens with explicit configuration and filesystem (tests inject
    /// [`crate::FaultyFs`] here).
    ///
    /// # Errors
    ///
    /// See [`DiskStore::open`].
    pub fn open_with(
        root: impl AsRef<Path>,
        config: StoreConfig,
        fs: Arc<dyn StoreFs>,
    ) -> Result<DiskStore, StoreError> {
        let root = root.as_ref().to_path_buf();
        let io = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |e: std::io::Error| StoreError::Io { op, path, error: e.to_string() }
        };
        for sub in ["shards", "tmp", "quarantine", "claims"] {
            let dir = root.join(sub);
            fs.create_dir_all(&dir).map_err(io("create", &dir))?;
        }

        // Marker: verify a compatible store, or stamp a fresh one.
        let marker = root.join(STORE_MARKER);
        if fs.exists(&marker) {
            let bytes = fs.read(&marker).map_err(io("read", &marker))?;
            let found = String::from_utf8_lossy(&bytes).lines().next().unwrap_or("").to_string();
            if found != STORE_VERSION {
                return Err(StoreError::NotAStore { path: root, found: Some(found) });
            }
        } else {
            // create_new tolerates a concurrent opener stamping first.
            match fs.create_new(&marker, format!("{STORE_VERSION}\n").as_bytes()) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {}
                Err(e) => return Err(io("stamp", &marker)(e)),
            }
        }

        let mut stats = StoreStats::default();

        // Crash recovery: anything in tmp/ is debris from a died writer.
        let tmp = root.join("tmp");
        for leftover in fs.read_dir_sorted(&tmp).map_err(io("list", &tmp))? {
            if fs.remove_file(&leftover).is_ok() {
                stats.recovered_tmp += 1;
            }
        }

        // Entry count: one read_dir per populated shard.
        let mut entries = 0usize;
        let shards = root.join("shards");
        for shard in fs.read_dir_sorted(&shards).map_err(io("list", &shards))? {
            entries += fs
                .read_dir_sorted(&shard)
                .map(|files| {
                    files
                        .iter()
                        .filter(|p| p.extension().is_some_and(|e| e == "entry"))
                        .count()
                })
                .unwrap_or(0);
        }

        let kill_after = std::env::var(KILL_AFTER_PUTS_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok());

        Ok(DiskStore {
            root,
            fs,
            config,
            stats: Mutex::new(stats),
            entries: AtomicUsize::new(entries),
            temp_seq: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            kill_after,
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> StoreStats {
        *self.stats.lock().expect("store stats lock")
    }

    /// Approximate number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        let hash = fnv1a64(key.as_bytes());
        self.root
            .join("shards")
            .join(format!("{:02x}", hash >> 56))
            .join(format!("{}-{hash:016x}.entry", sanitize(key)))
    }

    /// Looks up `key`, fully validating the entry. Damage quarantines
    /// the file and reads as a miss. A decode failure is retried once
    /// (reads are not atomic against concurrent writers on every
    /// filesystem), so a transient short read does not quarantine an
    /// intact entry.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        for attempt in 0..2 {
            let bytes = match self.fs.read(&path) {
                Ok(bytes) => bytes,
                Err(_) => {
                    // Missing or unreadable: a miss, nothing to quarantine.
                    self.stat(|s| s.misses += 1);
                    return None;
                }
            };
            match decode_entry(&bytes, Some(key)) {
                Ok((_, payload)) => {
                    self.stat(|s| {
                        s.hits += 1;
                        if attempt > 0 {
                            s.transient_reads += 1;
                        }
                    });
                    return Some(payload);
                }
                Err(_) if attempt == 0 => continue,
                Err(reason) => {
                    self.quarantine(&path, &reason.to_string());
                    self.stat(|s| s.misses += 1);
                    return None;
                }
            }
        }
        unreachable!("loop returns on every path");
    }

    /// Whether an entry file exists for `key` (no validation, no
    /// accounting — used for resume planning).
    pub fn contains(&self, key: &str) -> bool {
        self.fs.exists(&self.entry_path(key))
    }

    /// Durably publishes `payload` under `key`: write to `tmp/`, then
    /// atomic rename into the shard. Re-putting a key replaces its entry
    /// atomically.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the write or rename fails; the
    /// store is unchanged (a torn temp file is removed, and swept at the
    /// next open even if the process dies first).
    pub fn put(&self, key: &str, payload: &[u8]) -> Result<(), StoreError> {
        let final_path = self.entry_path(key);
        let temp_path = self.root.join("tmp").join(format!(
            "{}.{}.{}.tmp",
            final_path.file_stem().and_then(|s| s.to_str()).unwrap_or("entry"),
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let encoded = encode_entry(key, payload);

        if let Err(e) = self.fs.write(&temp_path, &encoded) {
            self.stat(|s| s.write_errors += 1);
            let _ = self.fs.remove_file(&temp_path); // best effort
            return Err(StoreError::Io {
                op: "write",
                path: temp_path,
                error: e.to_string(),
            });
        }
        // Shard directories materialize on first use (256 up-front mkdirs
        // would dwarf most stores).
        if let Some(shard) = final_path.parent() {
            if let Err(e) = self.fs.create_dir_all(shard) {
                self.stat(|s| s.write_errors += 1);
                let _ = self.fs.remove_file(&temp_path);
                return Err(StoreError::Io {
                    op: "create shard",
                    path: shard.to_path_buf(),
                    error: e.to_string(),
                });
            }
        }
        let existed = self.fs.exists(&final_path);
        if let Err(e) = self.fs.rename(&temp_path, &final_path) {
            self.stat(|s| s.write_errors += 1);
            let _ = self.fs.remove_file(&temp_path);
            return Err(StoreError::Io {
                op: "publish",
                path: final_path,
                error: e.to_string(),
            });
        }
        if !existed {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        self.stat(|s| s.writes += 1);
        self.enforce_bound();

        // Deterministic kill point for crash tests (see KILL_AFTER_PUTS_ENV).
        if let Some(limit) = self.kill_after {
            if self.puts.fetch_add(1, Ordering::Relaxed) + 1 == limit {
                eprintln!("store: injected kill after {limit} put(s)");
                std::process::exit(3);
            }
        }
        Ok(())
    }

    /// Tries to claim an advisory work token. `None` means a live peer
    /// holds it. Claims whose file is older than
    /// [`StoreConfig::stale_claim`] are presumed dead and stolen.
    pub fn try_claim(&self, token: &str) -> Option<Claim> {
        let hash = fnv1a64(token.as_bytes());
        let path = self
            .root
            .join("claims")
            .join(format!("{}-{hash:016x}.claim", sanitize(token)));
        let body = format!("pid {}\n", std::process::id());
        for attempt in 0..2 {
            match self.fs.create_new(&path, body.as_bytes()) {
                Ok(()) => {
                    self.stat(|s| {
                        s.claims_taken += 1;
                        if attempt > 0 {
                            s.claims_stolen += 1;
                        }
                    });
                    return Some(Claim { fs: Arc::clone(&self.fs), path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists && attempt == 0 => {
                    let stale = self
                        .fs
                        .modified(&path)
                        .ok()
                        .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
                        .is_some_and(|age| age >= self.config.stale_claim);
                    if !stale {
                        self.stat(|s| s.claims_refused += 1);
                        return None;
                    }
                    // Presumed dead: remove and retry once. Losing the
                    // race to another thief just refuses the claim.
                    let _ = self.fs.remove_file(&path);
                }
                Err(_) => {
                    self.stat(|s| s.claims_refused += 1);
                    return None;
                }
            }
        }
        self.stat(|s| s.claims_refused += 1);
        None
    }

    /// Full integrity scan: decodes every entry, quarantining damage.
    /// Also resynchronizes the entry counter (another process may have
    /// written since open).
    pub fn recover(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let shards = self.root.join("shards");
        for shard in self.fs.read_dir_sorted(&shards).unwrap_or_default() {
            for file in self.fs.read_dir_sorted(&shard).unwrap_or_default() {
                if file.extension().is_none_or(|e| e != "entry") {
                    continue;
                }
                report.scanned += 1;
                let intact = match self.fs.read(&file) {
                    Ok(bytes) => decode_entry(&bytes, None).is_ok(),
                    Err(_) => false,
                };
                if intact {
                    report.intact += 1;
                } else {
                    self.quarantine(&file, "recovery scan");
                    report.quarantined += 1;
                }
            }
        }
        self.entries.store(report.intact, Ordering::Relaxed);
        report
    }

    /// Moves a damaged file into `quarantine/`, keeping it for autopsy
    /// instead of deleting. Never fails: if even the rename fails the
    /// file is removed, and if that fails too the entry simply stays
    /// (and keeps reading as a miss).
    fn quarantine(&self, path: &Path, reason: &str) {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let dest = self.root.join("quarantine").join(format!(
            "{}.{}.{}",
            name,
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let moved = self.fs.rename(path, &dest).is_ok();
        if !moved && self.fs.remove_file(path).is_err() && self.fs.exists(path) {
            return; // nothing worked; leave it (still never served)
        }
        eprintln!("store: quarantined {name} ({reason})");
        self.stat(|s| s.quarantined += 1);
        let before = self.entries.load(Ordering::Relaxed);
        if before > 0 {
            self.entries.store(before - 1, Ordering::Relaxed);
        }
    }

    /// Evicts oldest entries (by modification time, then name) while the
    /// store exceeds `max_entries`.
    fn enforce_bound(&self) {
        let Some(max) = self.config.max_entries else { return };
        if self.entries.load(Ordering::Relaxed) <= max {
            return;
        }
        // Collect (mtime, file name, path) across all shards; oldest
        // leave first. The file name — sanitize(key) + key hash — is
        // the tie-break, so among same-mtime entries (coarse filesystem
        // timestamps, same-batch writes) the eviction set is a pure
        // function of the keys, not of shard layout or enumeration
        // order.
        let mut candidates: Vec<(std::time::SystemTime, std::ffi::OsString, PathBuf)> =
            Vec::new();
        let shards = self.root.join("shards");
        for shard in self.fs.read_dir_sorted(&shards).unwrap_or_default() {
            for file in self.fs.read_dir_sorted(&shard).unwrap_or_default() {
                if file.extension().is_none_or(|e| e != "entry") {
                    continue;
                }
                let mtime =
                    self.fs.modified(&file).unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                let name = file.file_name().map(ToOwned::to_owned).unwrap_or_default();
                candidates.push((mtime, name, file));
            }
        }
        candidates.sort();
        let excess = candidates.len().saturating_sub(max);
        let mut evicted = 0u64;
        for (_, _, path) in candidates.into_iter().take(excess) {
            if self.fs.remove_file(&path).is_ok() {
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.stat(|s| s.evictions += evicted);
            let now = self.entries.load(Ordering::Relaxed);
            self.entries.store(now.saturating_sub(evicted as usize), Ordering::Relaxed);
        }
    }

    fn stat(&self, update: impl FnOnce(&mut StoreStats)) {
        update(&mut self.stats.lock().expect("store stats lock"));
    }
}

/// Filesystem-safe rendering of a key (the exact key lives inside the
/// entry; collisions are disambiguated by the appended hash and caught
/// by the embedded-key check).
fn sanitize(key: &str) -> String {
    key.chars()
        .take(64)
        .map(|c| if c.is_ascii_alphanumeric() || "._-".contains(c) { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FaultyFs;
    use snoop_numeric::fault::{StorageFault, StoragePlan};
    use std::time::SystemTime;

    fn fresh(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("snoop-store-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn faulty(dir: &Path, plan: StoragePlan) -> DiskStore {
        DiskStore::open_with(dir, StoreConfig::default(), FaultyFs::real(plan)).unwrap()
    }

    #[test]
    fn put_get_round_trip_and_persistence() {
        let dir = fresh("round-trip");
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.put("mva:00aa", b"one").unwrap();
        store.put("sim:00bb", b"two").unwrap();
        assert_eq!(store.get("mva:00aa").unwrap(), b"one");
        assert_eq!(store.len(), 2);
        assert!(store.get("gtpn:none").is_none());
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes), (1, 1, 2));

        // A second open (same or another process) sees everything.
        let reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("sim:00bb").unwrap(), b"two");
        assert!(reopened.contains("mva:00aa"));
    }

    #[test]
    fn reput_replaces_atomically_without_growth() {
        let dir = fresh("reput");
        let store = DiskStore::open(&dir).unwrap();
        store.put("k", b"v1").unwrap();
        store.put("k", b"v2").unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("k").unwrap(), b"v2");
    }

    #[test]
    fn awkward_keys_round_trip() {
        let dir = fresh("awkward");
        let store = DiskStore::open(&dir).unwrap();
        for key in ["mva:0123456789abcdef", "a/b\\c d:e", "ключ", "..", ""] {
            store.put(key, key.as_bytes()).unwrap();
        }
        for key in ["mva:0123456789abcdef", "a/b\\c d:e", "ключ", "..", ""] {
            assert_eq!(store.get(key).unwrap(), key.as_bytes(), "{key:?}");
        }
        // Sanitization collisions resolve by hash suffix: these two keys
        // sanitize identically but stay distinct entries.
        store.put("x:y", b"colon").unwrap();
        store.put("x_y", b"underscore").unwrap();
        assert_eq!(store.get("x:y").unwrap(), b"colon");
        assert_eq!(store.get("x_y").unwrap(), b"underscore");
    }

    #[test]
    fn torn_write_publishes_nothing_and_recovers() {
        let dir = fresh("torn");
        let store = faulty(
            &dir,
            // Write op 1 is the first entry's temp write (the marker is
            // stamped with create_new, which is not faultable).
            StoragePlan::new().with_fault(StorageFault::TornWrite { op: 1, keep: 10 }),
        );
        let err = store.put("mva:aa", b"payload").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert!(store.get("mva:aa").is_none());
        assert_eq!(store.stats().write_errors, 1);
        // The failed put left no entry and the next put succeeds.
        store.put("mva:aa", b"payload").unwrap();
        assert_eq!(store.get("mva:aa").unwrap(), b"payload");
        assert_eq!(store.len(), 1);
        // Even if the torn temp file had survived (process death before
        // cleanup), a reopen sweeps tmp/ — simulate the debris.
        std::fs::write(dir.join("tmp").join("debris.tmp"), b"partial").unwrap();
        let reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(reopened.stats().recovered_tmp, 1);
        assert!(DiskStore::open(&dir).unwrap().stats().recovered_tmp == 0);
    }

    #[test]
    fn enospc_is_a_clean_error() {
        let dir = fresh("enospc");
        let store =
            faulty(&dir, StoragePlan::new().with_fault(StorageFault::Enospc { op: 1 }));
        let err = store.put("k", b"v").unwrap_err();
        assert!(err.to_string().contains("space"), "{err}");
        assert!(store.is_empty());
        store.put("k", b"v").unwrap();
        assert_eq!(store.get("k").unwrap(), b"v");
    }

    #[test]
    fn bit_flip_is_detected_and_quarantined() {
        let dir = fresh("bitflip");
        let store = faulty(
            &dir,
            StoragePlan::new().with_fault(StorageFault::BitFlip { op: 1, byte: 40 }),
        );
        store.put("mva:bb", b"supposedly durable bytes").unwrap(); // "succeeds"
        // Both read attempts see the same damaged file: quarantine.
        assert!(store.get("mva:bb").is_none());
        let s = store.stats();
        assert_eq!(s.quarantined, 1);
        assert_eq!(store.len(), 0);
        // The damaged file is kept for autopsy, not deleted.
        let quarantined: Vec<_> =
            std::fs::read_dir(dir.join("quarantine")).unwrap().collect();
        assert_eq!(quarantined.len(), 1);
        // The store still works.
        store.put("mva:bb", b"supposedly durable bytes").unwrap();
        assert_eq!(store.get("mva:bb").unwrap(), b"supposedly durable bytes");
    }

    #[test]
    fn transient_short_read_does_not_quarantine() {
        let dir = fresh("shortread");
        let store = faulty(
            &dir,
            // Read op 1 is the first get attempt; the in-place retry is
            // read op 2 and sees the intact file.
            StoragePlan::new().with_fault(StorageFault::ShortRead { op: 1, keep: 8 }),
        );
        store.put("k", b"intact on disk").unwrap();
        // First read is short, the retry decodes: served, not quarantined.
        assert_eq!(store.get("k").unwrap(), b"intact on disk");
        let s = store.stats();
        assert_eq!((s.hits, s.quarantined, s.transient_reads), (1, 0, 1));
    }

    #[test]
    fn persistent_truncation_quarantines_on_read() {
        let dir = fresh("truncate");
        let store = DiskStore::open(&dir).unwrap();
        store.put("k", b"0123456789").unwrap();
        // Truncate the entry on disk (what a torn write under rename-less
        // storage, or `truncate(1)`, would leave).
        let path = store.entry_path("k");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(store.get("k").is_none());
        assert_eq!(store.stats().quarantined, 1);
    }

    #[test]
    fn recover_scan_quarantines_only_the_damaged() {
        let dir = fresh("recover");
        let store = DiskStore::open(&dir).unwrap();
        for i in 0..6 {
            store.put(&format!("mva:{i:04x}"), format!("value {i}").as_bytes()).unwrap();
        }
        // Damage two entries on disk: flip a bit in one, truncate another.
        let flip_path = store.entry_path("mva:0001");
        let mut bytes = std::fs::read(&flip_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&flip_path, &bytes).unwrap();
        let trunc_path = store.entry_path("mva:0004");
        let bytes = std::fs::read(&trunc_path).unwrap();
        std::fs::write(&trunc_path, &bytes[..10]).unwrap();

        let reopened = DiskStore::open(&dir).unwrap();
        let report = reopened.recover();
        assert_eq!(report, RecoveryReport { scanned: 6, intact: 4, quarantined: 2 });
        assert_eq!(reopened.len(), 4);
        // Intact entries still serve; damaged read as misses.
        assert_eq!(reopened.get("mva:0000").unwrap(), b"value 0");
        assert!(reopened.get("mva:0001").is_none());
        assert!(reopened.get("mva:0004").is_none());
        // A second scan finds a fully intact store.
        assert_eq!(reopened.recover(), RecoveryReport { scanned: 4, intact: 4, quarantined: 0 });
    }

    #[test]
    fn claims_exclude_concurrent_workers_and_release_on_drop() {
        let dir = fresh("claims");
        let a = DiskStore::open(&dir).unwrap();
        let b = DiskStore::open(&dir).unwrap(); // a "second process"
        let claim = a.try_claim("family:1234").unwrap();
        assert!(b.try_claim("family:1234").is_none(), "held claims are refused");
        assert!(b.try_claim("family:5678").is_some(), "other tokens are free");
        drop(claim);
        assert!(b.try_claim("family:1234").is_some(), "dropped claims are free");
        assert_eq!(b.stats().claims_refused, 1);
    }

    #[test]
    fn stale_claims_are_stolen() {
        let dir = fresh("stale-claims");
        let dead = DiskStore::open(&dir).unwrap();
        let leaked = dead.try_claim("family:9").unwrap();
        std::mem::forget(leaked); // the worker "died" without releasing
        let config =
            StoreConfig { stale_claim: Duration::from_secs(0), ..StoreConfig::default() };
        let successor = DiskStore::open_with(&dir, config, Arc::new(RealFs)).unwrap();
        let stolen = successor.try_claim("family:9");
        assert!(stolen.is_some(), "zero-staleness claims steal immediately");
        assert_eq!(successor.stats().claims_stolen, 1);
    }

    #[test]
    fn eviction_enforces_the_entry_bound() {
        let dir = fresh("eviction");
        let config = StoreConfig { max_entries: Some(3), ..StoreConfig::default() };
        let store = DiskStore::open_with(&dir, config, Arc::new(RealFs)).unwrap();
        for i in 0..8 {
            store.put(&format!("k{i}"), b"v").unwrap();
        }
        assert!(store.len() <= 3, "len = {}", store.len());
        assert!(store.stats().evictions >= 5);
        // Reopen agrees with the on-disk population.
        assert!(DiskStore::open(&dir).unwrap().len() <= 3);
    }

    /// Delegates to [`RealFs`] but reports the same mtime for every
    /// file, modelling coarse filesystem timestamps where a whole batch
    /// of writes lands in one tick.
    struct ConstantMtimeFs;

    impl StoreFs for ConstantMtimeFs {
        fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
            RealFs.read(path)
        }
        fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            RealFs.write(path, bytes)
        }
        fn create_new(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            RealFs.create_new(path, bytes)
        }
        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            RealFs.rename(from, to)
        }
        fn remove_file(&self, path: &Path) -> std::io::Result<()> {
            RealFs.remove_file(path)
        }
        fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
            RealFs.create_dir_all(path)
        }
        fn read_dir_sorted(&self, path: &Path) -> std::io::Result<Vec<PathBuf>> {
            RealFs.read_dir_sorted(path)
        }
        fn modified(&self, _path: &Path) -> std::io::Result<SystemTime> {
            Ok(SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000))
        }
        fn exists(&self, path: &Path) -> bool {
            RealFs.exists(path)
        }
    }

    /// Every `.entry` file name under `root/shards`, sorted.
    fn entry_names(root: &Path) -> Vec<String> {
        let mut names = Vec::new();
        for shard in std::fs::read_dir(root.join("shards")).unwrap() {
            for file in std::fs::read_dir(shard.unwrap().path()).unwrap() {
                let name = file.unwrap().file_name().to_string_lossy().into_owned();
                if name.ends_with(".entry") {
                    names.push(name);
                }
            }
        }
        names.sort();
        names
    }

    #[test]
    fn same_mtime_eviction_is_deterministic_by_key_not_shard_layout() {
        // The differing character leads the key: FNV's high bits (the
        // shard) barely change for trailing-character differences, and
        // same-shard entries cannot distinguish name order from path
        // order.
        let keys: Vec<String> = (0..12).map(|i| format!("k{i}:mva")).collect();

        // Reference pass, unbounded: learn every entry's file name and
        // derive the expected survivors — the 3 largest *names* (the
        // name embeds the sanitized key + key hash, so this order is a
        // pure function of the keys; the old full-path sort ordered by
        // shard directory instead).
        let reference = fresh("eviction-tie-reference");
        let unbounded =
            DiskStore::open_with(&reference, StoreConfig::default(), Arc::new(ConstantMtimeFs))
                .unwrap();
        for key in &keys {
            unbounded.put(key, b"v").unwrap();
        }
        let all_names = entry_names(&reference);
        assert_eq!(all_names.len(), keys.len());
        let expected: Vec<String> = all_names[all_names.len() - 3..].to_vec();

        // Bounded passes: forward and reverse insertion orders must
        // evict down to exactly those survivors.
        for (label, order) in [
            ("forward", keys.clone()),
            ("reverse", keys.iter().rev().cloned().collect::<Vec<_>>()),
        ] {
            let dir = fresh(&format!("eviction-tie-{label}"));
            let config = StoreConfig { max_entries: Some(3), ..StoreConfig::default() };
            let store =
                DiskStore::open_with(&dir, config, Arc::new(ConstantMtimeFs)).unwrap();
            for key in &order {
                store.put(key, b"v").unwrap();
            }
            assert_eq!(entry_names(&dir), expected, "{label} insertion order");
        }
    }

    #[test]
    fn concurrent_readers_and_writers_stay_coherent() {
        let dir = fresh("concurrent");
        let store = Arc::new(DiskStore::open(&dir).unwrap());
        store.put("shared", b"warm").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        let key = format!("t{t}:{i}");
                        store.put(&key, key.as_bytes()).unwrap();
                        assert_eq!(store.get(&key).unwrap(), key.as_bytes());
                        assert_eq!(store.get("shared").unwrap(), b"warm");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 101);
        assert_eq!(store.stats().write_errors, 0);
    }

    #[test]
    fn foreign_marker_is_rejected() {
        let dir = fresh("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(STORE_MARKER), "some-other-format-v9\n").unwrap();
        let err = DiskStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::NotAStore { .. }), "{err}");
        assert!(err.to_string().contains("some-other-format-v9"));
    }

    #[test]
    fn stats_are_coherent_after_mixed_traffic() {
        let dir = fresh("stats");
        let store = DiskStore::open(&dir).unwrap();
        store.put("a", b"1").unwrap();
        store.put("b", b"2").unwrap();
        store.get("a");
        store.get("missing");
        let s = store.stats();
        assert_eq!((s.writes, s.hits, s.misses), (2, 1, 1));
        assert_eq!(s.write_errors + s.quarantined + s.evictions, 0);
    }
}
