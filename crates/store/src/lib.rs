//! `snoop-store` — a durable, sharded, crash-safe on-disk result store.
//!
//! The evaluation engine's in-memory [`ResultCache`] spills to a single
//! JSON blob: one torn write loses the whole result set, and a killed
//! sweep restarts from zero. This crate replaces that spill with real
//! storage infrastructure, sized for million-scenario design-space
//! exploration:
//!
//! * **Sharded layout** — entries live under `shards/<hh>/`, where `hh`
//!   is the first byte of the key's FNV-1a hash in hex, so no directory
//!   ever holds more than ~1/256 of the store and listing stays cheap;
//! * **Crash-safe writes** — every entry is written to `tmp/`, then
//!   atomically `rename(2)`d into its shard. A reader never observes a
//!   half-written entry under its final name; a crash leaves only `tmp/`
//!   debris, which the next open sweeps away;
//! * **Per-entry checksums** — each entry file carries its payload
//!   length and FNV-1a checksum. Torn writes, truncation and bit flips
//!   are detected on read and the damaged file is **quarantined** (moved
//!   to `quarantine/`), never served and never fatal: a corrupt entry
//!   costs recomputation of that entry, not the store;
//! * **Advisory claims** — cooperating worker processes take per-group
//!   claim files (`claims/`) before computing, so N processes sharing
//!   one store divide a sweep instead of duplicating it. Claims are
//!   advisory and self-healing: a claim older than the configured
//!   staleness window is presumed dead and stolen;
//! * **Size-bounded eviction** — an optional `max_entries` bound evicts
//!   the oldest entries (by modification time) after inserts;
//! * **Fault injection** — all filesystem access goes through the
//!   [`StoreFs`] trait. [`RealFs`] is the production implementation;
//!   [`FaultyFs`] is the adversary, injecting the deterministic
//!   [`snoop_numeric::fault::StoragePlan`] failure modes (torn write,
//!   ENOSPC, short read, bit flip) so every robustness claim above is
//!   proven by a test, the same discipline `snoop-numeric::fault`
//!   applies to the solve pipeline.
//!
//! The store is a plain byte-oriented key-value map — it knows nothing
//! about `Evaluation`s. The engine layers its content-addressed keys and
//! JSON payloads on top, which keeps the dependency graph acyclic
//! (`snoop-numeric` ← `snoop-store` ← `snoop-mva`).
//!
//! [`ResultCache`]: https://example.invalid/snoop-mva
//!
//! # Example
//!
//! ```
//! use snoop_store::DiskStore;
//!
//! let dir = std::env::temp_dir().join("snoop-store-doc-example");
//! let _ = std::fs::remove_dir_all(&dir);
//! let store = DiskStore::open(&dir).unwrap();
//! store.put("mva:00000000deadbeef", b"{\"speedup\":5.3}").unwrap();
//! assert_eq!(store.get("mva:00000000deadbeef").unwrap(), b"{\"speedup\":5.3}");
//! assert!(store.get("mva:0000000000000000").is_none());
//!
//! // A second open (another process) sees the same entry.
//! let other = DiskStore::open(&dir).unwrap();
//! assert!(other.contains("mva:00000000deadbeef"));
//! ```

mod entry;
mod fs;
mod store;

pub use entry::{decode_entry, encode_entry, fnv1a64, DecodeError, ENTRY_MAGIC};
pub use fs::{FaultyFs, RealFs, StoreFs};
pub use store::{
    Claim, DiskStore, RecoveryReport, StoreConfig, StoreError, StoreStats, KILL_AFTER_PUTS_ENV,
    STORE_MARKER, STORE_VERSION,
};
