//! Filesystem access behind a trait, so the adversary can sit where the
//! kernel would.
//!
//! [`RealFs`] forwards to `std::fs`. [`FaultyFs`] wraps any other
//! [`StoreFs`] and injects the deterministic storage failure modes of a
//! [`snoop_numeric::fault::StoragePlan`]: torn writes, `ENOSPC`, short
//! reads and silent bit flips, scheduled purely by operation count so
//! every failure is reproducible.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use snoop_numeric::fault::{StorageFault, StoragePlan};

/// The filesystem operations the store needs. Implementations must be
/// thread-safe: the engine persists entries from worker threads.
pub trait StoreFs: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes a whole file (create or truncate). **Not** atomic — the
    /// store only ever calls this on `tmp/` paths and publishes with
    /// [`StoreFs::rename`].
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Creates a file that must not already exist (used for claim
    /// files; `O_CREAT | O_EXCL` semantics).
    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file (missing files are an error, as in `std::fs`).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Recursively creates a directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists a directory's entries, **sorted by file name** so scans are
    /// deterministic. A missing directory lists as empty.
    fn read_dir_sorted(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// A file's last-modification time.
    fn modified(&self, path: &Path) -> io::Result<SystemTime>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production implementation: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl StoreFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().write(true).create_new(true).open(path)?;
        f.write_all(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir_sorted(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries = Vec::new();
        match std::fs::read_dir(path) {
            Ok(dir) => {
                for entry in dir {
                    entries.push(entry?.path());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        entries.sort();
        Ok(entries)
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        std::fs::metadata(path)?.modified()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The storage adversary: wraps an inner [`StoreFs`] and injects the
/// faults of a [`StoragePlan`], scheduled deterministically by operation
/// count (reads and writes counted independently).
///
/// * [`StorageFault::TornWrite`] — the inner write persists only a
///   prefix, then the call fails with [`io::ErrorKind::Interrupted`]
///   (the caller believes nothing landed — exactly what a crash
///   mid-`write(2)` looks like after restart);
/// * [`StorageFault::Enospc`] — the write fails with an ENOSPC-style
///   error and persists nothing;
/// * [`StorageFault::ShortRead`] — the read silently returns a prefix;
/// * [`StorageFault::BitFlip`] — the write silently persists one flipped
///   bit and reports success.
///
/// Only `read` and `write` are faultable: `rename` is atomic by
/// contract, and claim/removal faults are not part of the matrix the
/// store promises to survive (a lost claim file only costs duplicated
/// work, never correctness).
pub struct FaultyFs<F = RealFs> {
    inner: F,
    plan: Mutex<StoragePlan>,
}

impl<F: StoreFs> FaultyFs<F> {
    /// Wraps `inner`, injecting `plan`'s faults.
    pub fn new(inner: F, plan: StoragePlan) -> Self {
        FaultyFs { inner, plan: Mutex::new(plan) }
    }

    /// `(reads, writes)` the adversary has seen.
    pub fn ops(&self) -> (usize, usize) {
        self.plan.lock().expect("fault plan lock").ops()
    }
}

impl FaultyFs<RealFs> {
    /// An adversary over the real filesystem.
    pub fn real(plan: StoragePlan) -> Arc<Self> {
        Arc::new(FaultyFs::new(RealFs, plan))
    }
}

impl<F: StoreFs> StoreFs for FaultyFs<F> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let fault = self.plan.lock().expect("fault plan lock").begin_read();
        let mut bytes = self.inner.read(path)?;
        if let Some(StorageFault::ShortRead { keep, .. }) = fault {
            bytes.truncate(keep);
        }
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let fault = self.plan.lock().expect("fault plan lock").begin_write();
        match fault {
            Some(StorageFault::TornWrite { keep, .. }) => {
                let keep = keep.min(bytes.len());
                self.inner.write(path, &bytes[..keep])?;
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected torn write after {keep} bytes"),
                ))
            }
            Some(StorageFault::Enospc { .. }) => {
                Err(io::Error::other("injected ENOSPC: no space left on device"))
            }
            Some(StorageFault::BitFlip { byte, .. }) if !bytes.is_empty() => {
                let mut damaged = bytes.to_vec();
                let index = byte % damaged.len();
                damaged[index] ^= 1;
                self.inner.write(path, &damaged)
            }
            _ => self.inner.write(path, bytes),
        }
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.inner.create_new(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read_dir_sorted(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir_sorted(path)
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        self.inner.modified(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("snoop-store-fs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn real_fs_round_trips_and_lists_sorted() {
        let dir = tmp("realfs");
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        fs.write(&dir.join("b.x"), b"bee").unwrap();
        fs.write(&dir.join("a.x"), b"ay").unwrap();
        assert_eq!(fs.read(&dir.join("a.x")).unwrap(), b"ay");
        let listed = fs.read_dir_sorted(&dir).unwrap();
        assert_eq!(
            listed.iter().map(|p| p.file_name().unwrap().to_str().unwrap()).collect::<Vec<_>>(),
            vec!["a.x", "b.x"]
        );
        // Missing directories list empty, matching scan semantics.
        assert!(fs.read_dir_sorted(&dir.join("missing")).unwrap().is_empty());
    }

    #[test]
    fn torn_write_persists_a_prefix_and_errors() {
        let path = tmp("torn.bin");
        let _ = std::fs::remove_file(&path);
        let fs = FaultyFs::new(
            RealFs,
            StoragePlan::new().with_fault(StorageFault::TornWrite { op: 1, keep: 4 }),
        );
        let err = fs.write(&path, b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
        // The next write is clean.
        fs.write(&path, b"0123456789").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");
    }

    #[test]
    fn enospc_persists_nothing() {
        let path = tmp("enospc.bin");
        let _ = std::fs::remove_file(&path);
        let fs = FaultyFs::new(
            RealFs,
            StoragePlan::new().with_fault(StorageFault::Enospc { op: 1 }),
        );
        assert!(fs.write(&path, b"data").is_err());
        assert!(!path.exists());
    }

    #[test]
    fn short_read_truncates_silently() {
        let path = tmp("short.bin");
        std::fs::write(&path, b"full contents").unwrap();
        let fs = FaultyFs::new(
            RealFs,
            StoragePlan::new().with_fault(StorageFault::ShortRead { op: 2, keep: 4 }),
        );
        assert_eq!(fs.read(&path).unwrap(), b"full contents");
        assert_eq!(fs.read(&path).unwrap(), b"full");
        assert_eq!(fs.read(&path).unwrap(), b"full contents");
    }

    #[test]
    fn bit_flip_reports_success_with_damaged_bytes() {
        let path = tmp("flip.bin");
        let fs = FaultyFs::new(
            RealFs,
            StoragePlan::new().with_fault(StorageFault::BitFlip { op: 1, byte: 2 }),
        );
        fs.write(&path, b"abcd").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"ab\x62d"); // 'c' ^ 1 = 'b'
    }
}
