//! Embedded Markov chain construction from the state graph.

use snoop_numeric::sparse::CsrMatrix;

use crate::reachability::StateGraph;
use crate::GtpnError;

/// Builds the one-step transition-probability matrix of the state graph.
///
/// Every state of a [`StateGraph`] is settled and every edge spans exactly
/// one time unit, so the chain's stationary distribution is directly the
/// time-average state distribution.
///
/// The graph's adjacency rows *are* the matrix rows, so the CSR form is
/// assembled directly from them — no intermediate triplet list, which
/// matters at GTPN state-space sizes (the matrix is the solve's dominant
/// allocation).
///
/// # Errors
///
/// Propagates sparse-assembly errors (should not occur for a well-formed
/// graph).
pub fn transition_matrix(graph: &StateGraph) -> Result<CsrMatrix, GtpnError> {
    Ok(CsrMatrix::from_adjacency(graph.len(), &graph.edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Firing, NetBuilder};
    use crate::reachability::{explore, ReachabilityOptions};
    use snoop_numeric::markov::check_stochastic;

    #[test]
    fn matrix_is_stochastic() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        b.timed("go", Firing::Geometric(0.3), &[(a, 1)], &[(z, 1)]);
        b.timed("back", Firing::Deterministic(2), &[(z, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        let g = explore(&net, &ReachabilityOptions::default()).unwrap();
        let p = transition_matrix(&g).unwrap();
        assert_eq!(p.rows(), g.len());
        check_stochastic(&p, 1e-9).unwrap();
    }
}
