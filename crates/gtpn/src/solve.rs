//! Steady-state solution and performance measures.

use snoop_numeric::markov::{steady_state_sparse, SparseOptions};

use crate::chain::transition_matrix;
use crate::net::{Net, PlaceId, TransitionId};
use crate::reachability::{explore, ReachabilityOptions, StateGraph};
use crate::GtpnError;

/// Performance measures accumulated in a single pass over the stationary
/// distribution at solve time, so the per-query accessors on
/// [`GtpnSolution`] are O(1) lookups instead of O(states) walks.
#[derive(Debug, Clone, PartialEq)]
struct Measures {
    /// Per-place time-averaged token population.
    mean_tokens: Vec<f64>,
    /// Per-place probability of being non-empty.
    p_nonempty: Vec<f64>,
    /// Per-transition time-averaged in-flight firing count.
    utilization: Vec<f64>,
    /// Per-transition long-run firings per time unit.
    throughput: Vec<f64>,
}

impl Measures {
    fn accumulate(graph: &StateGraph, pi: &[f64]) -> Measures {
        let places = graph.states.first().map_or(0, |s| s.marking.len());
        let transitions = graph.firing_rates.first().map_or(0, Vec::len);
        let mut m = Measures {
            mean_tokens: vec![0.0; places],
            p_nonempty: vec![0.0; places],
            utilization: vec![0.0; transitions],
            throughput: vec![0.0; transitions],
        };
        for ((state, counts), &p) in
            graph.states.iter().zip(&graph.firing_rates).zip(pi)
        {
            for (place, &tokens) in state.marking.iter().enumerate() {
                if tokens > 0 {
                    m.mean_tokens[place] += p * f64::from(tokens);
                    m.p_nonempty[place] += p;
                }
            }
            for firing in &state.active {
                m.utilization[firing.transition] += p;
            }
            for (t, &count) in counts.iter().enumerate() {
                if count != 0.0 {
                    m.throughput[t] += p * count;
                }
            }
        }
        m
    }
}

/// A solved GTPN: stationary state distribution plus the expanded graph
/// and the performance measures accumulated from it.
#[derive(Debug, Clone)]
pub struct GtpnSolution {
    graph: StateGraph,
    pi: Vec<f64>,
    measures: Measures,
    iterations: usize,
    used_dense: bool,
}

impl GtpnSolution {
    /// Number of states in the expanded graph (the paper's cost driver).
    pub fn state_count(&self) -> usize {
        self.graph.len()
    }

    /// The stationary state distribution.
    pub fn stationary(&self) -> &[f64] {
        &self.pi
    }

    /// Power-method iterations spent on the stationary distribution
    /// (0 when the direct dense path was used).
    pub fn solve_iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the stationary distribution came from the dense LU path.
    pub fn used_dense(&self) -> bool {
        self.used_dense
    }

    /// Time-averaged token population of a place (tokens held by in-flight
    /// firings are not in any place).
    pub fn mean_tokens(&self, place: PlaceId) -> f64 {
        self.measures.mean_tokens[place.index()]
    }

    /// Time-averaged number of in-flight firings of a timed transition —
    /// the utilization of the resource it models (can exceed 1 when the
    /// transition fires concurrently).
    pub fn utilization(&self, transition: TransitionId) -> f64 {
        self.measures.utilization[transition.index()]
    }

    /// Long-run firings of a transition per time unit (completions for
    /// timed transitions, fires for immediate ones).
    pub fn throughput(&self, transition: TransitionId) -> f64 {
        self.measures.throughput[transition.index()]
    }

    /// Probability that a place is non-empty.
    pub fn p_nonempty(&self, place: PlaceId) -> f64 {
        self.measures.p_nonempty[place.index()]
    }
}

/// Explores and solves a net with the given budgets.
///
/// The stationary distribution comes from
/// [`steady_state_sparse`]: direct dense LU for small chains, sparse
/// Aitken-accelerated power iteration — started from the settled initial
/// distribution, so a reducible chain converges to the recurrent class the
/// net actually reaches — for large ones.
///
/// # Errors
///
/// Propagates exploration budget violations and steady-state failures.
pub fn solve_with_options(
    net: &Net,
    options: &ReachabilityOptions,
) -> Result<GtpnSolution, GtpnError> {
    let graph = explore(net, options)?;
    let p = transition_matrix(&graph)?;

    let mut initial = vec![0.0; graph.len()];
    for &(s, prob) in &graph.initial {
        initial[s] += prob;
    }
    let solve = steady_state_sparse(&p, Some(&initial), &SparseOptions::default())?;
    let measures = Measures::accumulate(&graph, &solve.pi);
    Ok(GtpnSolution {
        graph,
        pi: solve.pi,
        measures,
        iterations: solve.iterations,
        used_dense: solve.used_dense,
    })
}

/// Explores and solves with default budgets.
///
/// # Errors
///
/// See [`solve_with_options`].
pub fn solve_net(net: &Net) -> Result<GtpnSolution, GtpnError> {
    solve_with_options(net, &ReachabilityOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Firing, NetBuilder};

    #[test]
    fn deterministic_cycle_measures() {
        let mut b = NetBuilder::new();
        let w = b.place("working", 1);
        let r = b.place("resting", 0);
        let finish = b.timed("finish", Firing::Deterministic(2), &[(w, 1)], &[(r, 1)]);
        let restart = b.timed("restart", Firing::Deterministic(1), &[(r, 1)], &[(w, 1)]);
        let net = b.build().unwrap();
        let sol = solve_net(&net).unwrap();
        assert_eq!(sol.state_count(), 3);
        // The token is inside `finish` 2/3 of the time, `restart` 1/3.
        assert!((sol.utilization(finish) - 2.0 / 3.0).abs() < 1e-9);
        assert!((sol.utilization(restart) - 1.0 / 3.0).abs() < 1e-9);
        // One full cycle every 3 ticks.
        assert!((sol.throughput(finish) - 1.0 / 3.0).abs() < 1e-9);
        assert!((sol.throughput(restart) - 1.0 / 3.0).abs() < 1e-9);
        // Places are always empty (the token is always held by a firing).
        assert!(sol.mean_tokens(w) < 1e-9);
        assert!(sol.mean_tokens(r) < 1e-9);
    }

    #[test]
    fn geometric_cycle_matches_closed_form() {
        // Token alternates: geometric(p) phase then geometric(q) phase.
        // Expected fraction of time in phase A = (1/p)/((1/p) + (1/q)).
        let (p, q) = (0.25, 0.5);
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        let go = b.timed("go", Firing::Geometric(p), &[(a, 1)], &[(z, 1)]);
        let back = b.timed("back", Firing::Geometric(q), &[(z, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        let sol = solve_net(&net).unwrap();
        let expected_a = (1.0 / p) / (1.0 / p + 1.0 / q);
        assert!(
            (sol.utilization(go) - expected_a).abs() < 1e-9,
            "utilization {} vs {expected_a}",
            sol.utilization(go)
        );
        // Throughput: one completion of each per full cycle of mean length
        // 1/p + 1/q.
        let cycle = 1.0 / p + 1.0 / q;
        assert!((sol.throughput(go) - 1.0 / cycle).abs() < 1e-9);
        assert!((sol.throughput(back) - 1.0 / cycle).abs() < 1e-9);
    }

    #[test]
    fn mm1_like_queue_has_geometric_queue_lengths() {
        // Discrete M/M/1 analogue: arrivals Geometric(λ) from a source
        // that immediately re-arms, service Geometric(μ) at a single
        // server. With λ = 0.2, μ = 0.4 the queue is stable.
        let (lambda, mu) = (0.2, 0.4);
        let mut b = NetBuilder::new();
        let armed = b.place("armed", 1);
        let queue = b.place("queue", 0);
        let server_free = b.place("server-free", 1);
        let arrive =
            b.timed("arrive", Firing::Geometric(lambda), &[(armed, 1)], &[(armed, 1), (queue, 1)]);
        let serve = b.timed(
            "serve",
            Firing::Geometric(mu),
            &[(queue, 1), (server_free, 1)],
            &[(server_free, 1)],
        );
        let net = b.build().unwrap();
        // The queue is unbounded in principle; the token bound truncates it
        // (error) unless we give enough room — bound high enough that the
        // truncated tail is negligible was not implemented, so instead use
        // a moderate bound and accept the UnboundedPlace signal as the
        // documented behaviour for open nets... but with probability floor,
        // deep queue states carry vanishing probability and are pruned
        // before the bound in practice. Use a generous floor.
        let sol = solve_with_options(
            &net,
            &ReachabilityOptions {
                token_bound: 60,
                probability_floor: 1e-10,
                ..ReachabilityOptions::default()
            },
        );
        match sol {
            Ok(sol) => {
                // Utilization of the server ≈ λ/μ.
                let rho = lambda / mu;
                assert!(
                    (sol.utilization(serve) - rho).abs() < 0.05,
                    "server utilization {} vs {rho}",
                    sol.utilization(serve)
                );
                assert!((sol.throughput(arrive) - lambda).abs() < 0.02);
            }
            Err(GtpnError::UnboundedPlace { .. }) | Err(GtpnError::StateSpaceExplosion { .. }) => {
                // Acceptable: open nets may exceed budgets by design.
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn absorbed_net_concentrates_probability() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        b.timed("end", Firing::Deterministic(3), &[(a, 1)], &[(z, 1)]);
        let net = b.build().unwrap();
        let sol = solve_net(&net).unwrap();
        // All stationary mass sits on the absorbed state.
        assert!((sol.mean_tokens(z) - 1.0).abs() < 1e-6);
        assert!(sol.p_nonempty(z) > 1.0 - 1e-6);
    }

    #[test]
    fn stationary_sums_to_one() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 2);
        let z = b.place("z", 0);
        b.timed("go", Firing::Geometric(0.3), &[(a, 1)], &[(z, 1)]);
        b.timed("back", Firing::Deterministic(2), &[(z, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        let sol = solve_net(&net).unwrap();
        let total: f64 = sol.stationary().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(sol.stationary().iter().all(|&p| p >= -1e-12));
    }
}
