//! Steady-state solution and performance measures.

use snoop_numeric::markov::steady_state_dense;

use crate::chain::transition_matrix;
use crate::net::{Net, PlaceId, TransitionId};
use crate::reachability::{explore, ReachabilityOptions, StateGraph};
use crate::GtpnError;

/// A solved GTPN: stationary state distribution plus the expanded graph,
/// from which the performance measures are computed.
#[derive(Debug, Clone)]
pub struct GtpnSolution {
    graph: StateGraph,
    pi: Vec<f64>,
}

impl GtpnSolution {
    /// Number of states in the expanded graph (the paper's cost driver).
    pub fn state_count(&self) -> usize {
        self.graph.len()
    }

    /// The stationary state distribution.
    pub fn stationary(&self) -> &[f64] {
        &self.pi
    }

    /// Time-averaged token population of a place (tokens held by in-flight
    /// firings are not in any place).
    pub fn mean_tokens(&self, place: PlaceId) -> f64 {
        self.graph
            .states
            .iter()
            .zip(&self.pi)
            .map(|(s, &p)| p * f64::from(s.marking[place.index()]))
            .sum()
    }

    /// Time-averaged number of in-flight firings of a timed transition —
    /// the utilization of the resource it models (can exceed 1 when the
    /// transition fires concurrently).
    pub fn utilization(&self, transition: TransitionId) -> f64 {
        self.graph
            .states
            .iter()
            .zip(&self.pi)
            .map(|(s, &p)| p * f64::from(s.active_count(transition.index())))
            .sum()
    }

    /// Long-run firings of a transition per time unit (completions for
    /// timed transitions, fires for immediate ones).
    pub fn throughput(&self, transition: TransitionId) -> f64 {
        self.graph
            .firing_rates
            .iter()
            .zip(&self.pi)
            .map(|(counts, &p)| p * counts[transition.index()])
            .sum()
    }

    /// Probability that a place is non-empty.
    pub fn p_nonempty(&self, place: PlaceId) -> f64 {
        self.graph
            .states
            .iter()
            .zip(&self.pi)
            .filter(|(s, _)| s.marking[place.index()] > 0)
            .map(|(_, &p)| p)
            .sum()
    }
}

/// Explores and solves a net with the given budgets.
///
/// Solution strategy: the chain is solved directly (dense LU) when small;
/// larger or reducible chains fall back to damped power iteration started
/// from the settled initial distribution, which converges to the stationary
/// distribution of the recurrent class the net actually reaches.
///
/// # Errors
///
/// Propagates exploration budget violations and steady-state failures.
pub fn solve_with_options(
    net: &Net,
    options: &ReachabilityOptions,
) -> Result<GtpnSolution, GtpnError> {
    let graph = explore(net, options)?;
    let p = transition_matrix(&graph)?;

    let pi = if graph.len() <= 512 {
        match steady_state_dense(&p) {
            Ok(pi) => pi,
            // Reducible chain (transient initial states): fall back.
            Err(_) => power_from_initial(&graph, &p)?,
        }
    } else {
        power_from_initial(&graph, &p)?
    };

    Ok(GtpnSolution { graph, pi })
}

fn power_from_initial(
    graph: &StateGraph,
    p: &snoop_numeric::sparse::CsrMatrix,
) -> Result<Vec<f64>, GtpnError> {
    // Start from the settled initial distribution so a reducible chain
    // converges to the class the net actually enters; mix with uniform to
    // avoid pathological zero patterns.
    let n = graph.len();
    let mut pi = vec![1e-9; n];
    for &(s, prob) in &graph.initial {
        pi[s] += prob;
    }
    let total: f64 = pi.iter().sum();
    for v in &mut pi {
        *v /= total;
    }
    // Reuse the library's damped power iteration by warm-starting manually:
    // iterate π ← 0.9·πP + 0.1·π until stable.
    let mut residual = f64::INFINITY;
    for _ in 0..200_000 {
        let next = p.vec_mul(&pi)?;
        residual = 0.0;
        for i in 0..n {
            let updated = 0.9 * next[i] + 0.1 * pi[i];
            residual = residual.max((updated - pi[i]).abs());
            pi[i] = updated;
        }
        let total: f64 = pi.iter().sum();
        for v in &mut pi {
            *v /= total;
        }
        if residual < 1e-13 {
            return Ok(pi);
        }
    }
    Err(GtpnError::Numeric(snoop_numeric::NumericError::NoConvergence {
        iterations: 200_000,
        residual,
    }))
}

/// Explores and solves with default budgets.
///
/// # Errors
///
/// See [`solve_with_options`].
pub fn solve_net(net: &Net) -> Result<GtpnSolution, GtpnError> {
    solve_with_options(net, &ReachabilityOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Firing, NetBuilder};

    #[test]
    fn deterministic_cycle_measures() {
        let mut b = NetBuilder::new();
        let w = b.place("working", 1);
        let r = b.place("resting", 0);
        let finish = b.timed("finish", Firing::Deterministic(2), &[(w, 1)], &[(r, 1)]);
        let restart = b.timed("restart", Firing::Deterministic(1), &[(r, 1)], &[(w, 1)]);
        let net = b.build().unwrap();
        let sol = solve_net(&net).unwrap();
        assert_eq!(sol.state_count(), 3);
        // The token is inside `finish` 2/3 of the time, `restart` 1/3.
        assert!((sol.utilization(finish) - 2.0 / 3.0).abs() < 1e-9);
        assert!((sol.utilization(restart) - 1.0 / 3.0).abs() < 1e-9);
        // One full cycle every 3 ticks.
        assert!((sol.throughput(finish) - 1.0 / 3.0).abs() < 1e-9);
        assert!((sol.throughput(restart) - 1.0 / 3.0).abs() < 1e-9);
        // Places are always empty (the token is always held by a firing).
        assert!(sol.mean_tokens(w) < 1e-9);
        assert!(sol.mean_tokens(r) < 1e-9);
    }

    #[test]
    fn geometric_cycle_matches_closed_form() {
        // Token alternates: geometric(p) phase then geometric(q) phase.
        // Expected fraction of time in phase A = (1/p)/((1/p) + (1/q)).
        let (p, q) = (0.25, 0.5);
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        let go = b.timed("go", Firing::Geometric(p), &[(a, 1)], &[(z, 1)]);
        let back = b.timed("back", Firing::Geometric(q), &[(z, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        let sol = solve_net(&net).unwrap();
        let expected_a = (1.0 / p) / (1.0 / p + 1.0 / q);
        assert!(
            (sol.utilization(go) - expected_a).abs() < 1e-9,
            "utilization {} vs {expected_a}",
            sol.utilization(go)
        );
        // Throughput: one completion of each per full cycle of mean length
        // 1/p + 1/q.
        let cycle = 1.0 / p + 1.0 / q;
        assert!((sol.throughput(go) - 1.0 / cycle).abs() < 1e-9);
        assert!((sol.throughput(back) - 1.0 / cycle).abs() < 1e-9);
    }

    #[test]
    fn mm1_like_queue_has_geometric_queue_lengths() {
        // Discrete M/M/1 analogue: arrivals Geometric(λ) from a source
        // that immediately re-arms, service Geometric(μ) at a single
        // server. With λ = 0.2, μ = 0.4 the queue is stable.
        let (lambda, mu) = (0.2, 0.4);
        let mut b = NetBuilder::new();
        let armed = b.place("armed", 1);
        let queue = b.place("queue", 0);
        let server_free = b.place("server-free", 1);
        let arrive =
            b.timed("arrive", Firing::Geometric(lambda), &[(armed, 1)], &[(armed, 1), (queue, 1)]);
        let serve = b.timed(
            "serve",
            Firing::Geometric(mu),
            &[(queue, 1), (server_free, 1)],
            &[(server_free, 1)],
        );
        let net = b.build().unwrap();
        // The queue is unbounded in principle; the token bound truncates it
        // (error) unless we give enough room — bound high enough that the
        // truncated tail is negligible was not implemented, so instead use
        // a moderate bound and accept the UnboundedPlace signal as the
        // documented behaviour for open nets... but with probability floor,
        // deep queue states carry vanishing probability and are pruned
        // before the bound in practice. Use a generous floor.
        let sol = solve_with_options(
            &net,
            &ReachabilityOptions {
                token_bound: 60,
                probability_floor: 1e-10,
                ..ReachabilityOptions::default()
            },
        );
        match sol {
            Ok(sol) => {
                // Utilization of the server ≈ λ/μ.
                let rho = lambda / mu;
                assert!(
                    (sol.utilization(serve) - rho).abs() < 0.05,
                    "server utilization {} vs {rho}",
                    sol.utilization(serve)
                );
                assert!((sol.throughput(arrive) - lambda).abs() < 0.02);
            }
            Err(GtpnError::UnboundedPlace { .. }) | Err(GtpnError::StateSpaceExplosion { .. }) => {
                // Acceptable: open nets may exceed budgets by design.
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn absorbed_net_concentrates_probability() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        b.timed("end", Firing::Deterministic(3), &[(a, 1)], &[(z, 1)]);
        let net = b.build().unwrap();
        let sol = solve_net(&net).unwrap();
        // All stationary mass sits on the absorbed state.
        assert!((sol.mean_tokens(z) - 1.0).abs() < 1e-6);
        assert!(sol.p_nonempty(z) > 1.0 - 1e-6);
    }

    #[test]
    fn stationary_sums_to_one() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 2);
        let z = b.place("z", 0);
        b.timed("go", Firing::Geometric(0.3), &[(a, 1)], &[(z, 1)]);
        b.timed("back", Firing::Deterministic(2), &[(z, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        let sol = solve_net(&net).unwrap();
        let total: f64 = sol.stationary().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(sol.stationary().iter().all(|&p| p >= -1e-12));
    }
}
