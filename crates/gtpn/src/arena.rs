//! Bump-allocated storage and FNV-indexed interning for timed states.
//!
//! The reachability expansion interns every settled successor it sees —
//! for the N = 3 Write-Once net that is thousands of lookups against a
//! thousand-plus distinct states, and the intern table *is* the
//! expansion's inner loop once stepping is cheap. The previous
//! `HashMap<TimedState, usize>` paid for that layout three times over:
//! SipHash over each state on every lookup, a full `TimedState` clone
//! (two heap allocations) per inserted key on top of the copy kept in
//! `states`, and pointer-chasing equality checks between scattered
//! allocations.
//!
//! [`StateArena`] keeps exactly one copy of every state in two bump
//! buffers — markings are fixed-width (`n_places` words per state) so
//! they pack into one contiguous `Vec<u32>` addressed by id, active
//! firings into a shared `Vec<ActiveFiring>` with per-state spans — and
//! indexes them with an open-addressed table keyed by a word-wise
//! FNV-1a hash that is cached per state, so a probe is one `u64`
//! compare before any slice comparison happens.

use crate::marking::{ActiveFiring, Remaining, TimedState};

/// FNV-1a offset basis / prime, applied word-wise (the inputs are small
/// integer words, not bytes; word-wise keeps the hash cheap while mixing
/// every input word through the full 64-bit state).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_mix(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

/// Packs an active firing into one hashable/comparable word:
/// transition index in the high bits, a tag separating the countdown
/// and memoryless variants, and the countdown itself in the low bits.
#[inline]
fn encode_firing(f: &ActiveFiring) -> u64 {
    let (tag, ticks) = match f.remaining {
        Remaining::Ticks(k) => (1u64, u64::from(k)),
        Remaining::Memoryless => (2u64, 0),
    };
    ((f.transition as u64) << 35) | (tag << 33) | ticks
}

/// Word-wise FNV-1a over a state's marking and (sorted) active firings.
#[inline]
fn hash_state(marking: &[u32], active: &[ActiveFiring]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &tokens in marking {
        hash = fnv_mix(hash, u64::from(tokens));
    }
    // Length separator: (marking, active) concatenations must not alias.
    hash = fnv_mix(hash, 0x9e37_79b9_7f4a_7c15);
    for firing in active {
        hash = fnv_mix(hash, encode_firing(firing));
    }
    hash
}

/// The interned state store: bump buffers plus the open-addressed index.
pub(crate) struct StateArena {
    /// Marking width — every state stores exactly this many words.
    n_places: usize,
    /// All markings, `n_places` words per state, addressed by id.
    markings: Vec<u32>,
    /// All active firings, bump-allocated; spans index into this.
    active: Vec<ActiveFiring>,
    /// Per-state `(start, len)` into `active`.
    active_spans: Vec<(usize, usize)>,
    /// Cached state hashes, parallel to `active_spans`.
    hashes: Vec<u64>,
    /// Open-addressed (linear probing) table of `id + 1`; `0` is empty.
    /// Length is always a power of two.
    table: Vec<u32>,
}

/// Initial index size; doubles whenever occupancy crosses 70%.
const INITIAL_TABLE: usize = 1024;

impl StateArena {
    pub(crate) fn new(n_places: usize) -> Self {
        StateArena {
            n_places,
            markings: Vec::new(),
            active: Vec::new(),
            active_spans: Vec::new(),
            hashes: Vec::new(),
            table: vec![0; INITIAL_TABLE],
        }
    }

    /// Number of interned states.
    pub(crate) fn len(&self) -> usize {
        self.active_spans.len()
    }

    /// The marking of state `id`.
    #[inline]
    pub(crate) fn marking(&self, id: usize) -> &[u32] {
        &self.markings[id * self.n_places..(id + 1) * self.n_places]
    }

    /// The active firings of state `id` (in the normalized sorted order).
    #[inline]
    pub(crate) fn active(&self, id: usize) -> &[ActiveFiring] {
        let (start, len) = self.active_spans[id];
        &self.active[start..start + len]
    }

    /// Looks `state` up, returning its hash (for a subsequent
    /// [`StateArena::insert`]) and its id when already interned.
    pub(crate) fn lookup(&self, state: &TimedState) -> (u64, Option<usize>) {
        let hash = hash_state(&state.marking, &state.active);
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.table[slot];
            if entry == 0 {
                return (hash, None);
            }
            let id = (entry - 1) as usize;
            if self.hashes[id] == hash
                && self.marking(id) == &state.marking[..]
                && self.active(id) == &state.active[..]
            {
                return (hash, Some(id));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns a state known (via [`StateArena::lookup`]) to be absent,
    /// returning its new id. `state.marking` must be `n_places` wide and
    /// `state.active` normalized (sorted) — both hold for every state
    /// the explorer settles.
    pub(crate) fn insert(&mut self, hash: u64, state: &TimedState) -> usize {
        debug_assert_eq!(state.marking.len(), self.n_places);
        let id = self.active_spans.len();
        self.markings.extend_from_slice(&state.marking);
        let start = self.active.len();
        self.active.extend_from_slice(&state.active);
        self.active_spans.push((start, state.active.len()));
        self.hashes.push(hash);

        // Keep occupancy below 70% so probe chains stay short.
        if (id + 1) * 10 >= self.table.len() * 7 {
            self.grow_table();
        }
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        while self.table[slot] != 0 {
            slot = (slot + 1) & mask;
        }
        self.table[slot] = u32::try_from(id + 1).expect("state count exceeds u32 index range");
        id
    }

    fn grow_table(&mut self) {
        let new_len = self.table.len() * 2;
        let mask = new_len - 1;
        let mut table = vec![0u32; new_len];
        for id in 0..self.hashes.len() {
            let mut slot = (self.hashes[id] as usize) & mask;
            while table[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            table[slot] = (id + 1) as u32;
        }
        self.table = table;
    }

    /// Materializes the owned per-state representation the public
    /// [`crate::reachability::StateGraph`] exposes.
    pub(crate) fn into_states(self) -> Vec<TimedState> {
        let mut states = Vec::with_capacity(self.len());
        for id in 0..self.len() {
            // Active firings were stored in normalized order, so the
            // struct literal (which skips `TimedState::new`'s re-sort)
            // reproduces the canonical state exactly.
            states.push(TimedState {
                marking: self.marking(id).to_vec(),
                active: self.active(id).to_vec(),
            });
        }
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(marking: &[u32], active: &[(usize, Remaining)]) -> TimedState {
        TimedState::new(
            marking.to_vec(),
            active
                .iter()
                .map(|&(transition, remaining)| ActiveFiring { transition, remaining })
                .collect(),
        )
    }

    #[test]
    fn intern_is_idempotent() {
        let mut arena = StateArena::new(3);
        let a = state(&[1, 0, 2], &[(0, Remaining::Ticks(2))]);
        let (hash, found) = arena.lookup(&a);
        assert!(found.is_none());
        let id = arena.insert(hash, &a);
        assert_eq!(arena.lookup(&a), (hash, Some(id)));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.marking(id), &[1, 0, 2]);
        assert_eq!(arena.active(id), &a.active[..]);
    }

    #[test]
    fn distinguishes_remaining_variants_and_markings() {
        let mut arena = StateArena::new(2);
        let variants = [
            state(&[1, 0], &[(0, Remaining::Ticks(1))]),
            state(&[1, 0], &[(0, Remaining::Ticks(2))]),
            state(&[1, 0], &[(0, Remaining::Memoryless)]),
            state(&[0, 1], &[(0, Remaining::Ticks(1))]),
            state(&[1, 0], &[]),
            state(&[1, 0], &[(1, Remaining::Ticks(1))]),
        ];
        for s in &variants {
            let (hash, found) = arena.lookup(s);
            assert!(found.is_none(), "{s:?} collided");
            arena.insert(hash, s);
        }
        assert_eq!(arena.len(), variants.len());
        for (i, s) in variants.iter().enumerate() {
            assert_eq!(arena.lookup(s).1, Some(i), "{s:?}");
        }
    }

    #[test]
    fn survives_table_growth() {
        let mut arena = StateArena::new(2);
        let states: Vec<TimedState> = (0..5000u32)
            .map(|i| state(&[i, i / 3], &[(i as usize % 7, Remaining::Ticks(i % 5 + 1))]))
            .collect();
        for s in &states {
            let (hash, found) = arena.lookup(s);
            assert!(found.is_none());
            arena.insert(hash, s);
        }
        for (i, s) in states.iter().enumerate() {
            assert_eq!(arena.lookup(s).1, Some(i));
        }
        let materialized = arena.into_states();
        assert_eq!(materialized, states);
    }
}
